//! Static effort metadata backing the Table 7 / Table 8 reproduction.
//!
//! Tables 7 and 8 of the paper quantify *developer effort*: the device
//! knowledge needed to write a driver from scratch (Table 7) and the code a
//! developer must reason about to port the Linux driver into the TEE
//! (Table 8). Neither is a run-time measurement; both are counts over the
//! driver and device artefacts. Here we expose the paper's published numbers
//! alongside the corresponding counts measured over this reproduction's
//! device models and gold drivers, so the `report` binary can print them side
//! by side.

/// One row of the Table 7 ("build from scratch") analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScratchEffort {
    /// Driver/device name.
    pub name: &'static str,
    /// Device commands that must be implemented.
    pub commands: usize,
    /// Pages of protocol specification to consult (None = unavailable).
    pub protocol_spec_pages: Option<usize>,
    /// Pages of device specification to consult (None = unavailable).
    pub device_spec_pages: Option<usize>,
    /// Device state-transition paths to reason about.
    pub transition_paths: usize,
    /// Registers / register fields that must be programmed.
    pub registers: (usize, usize),
    /// Descriptors / descriptor fields that must be laid out.
    pub descriptors: (usize, usize),
}

/// One row of the Table 8 ("port the Linux driver") analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortEffort {
    /// Driver name.
    pub name: &'static str,
    /// Driver functions on the ported code paths.
    pub functions: usize,
    /// Device configurations to reproduce.
    pub device_configs: usize,
    /// Macros to reason about.
    pub macros: usize,
    /// Callbacks to wire up.
    pub callbacks: usize,
    /// Source lines that must be ported.
    pub sloc: usize,
}

/// The paper's Table 7 rows.
pub fn paper_table7() -> Vec<ScratchEffort> {
    vec![
        ScratchEffort {
            name: "MMC",
            commands: 5,
            protocol_spec_pages: Some(231),
            device_spec_pages: Some(30),
            transition_paths: 10,
            registers: (17, 63),
            descriptors: (1, 8),
        },
        ScratchEffort {
            name: "USB",
            commands: 4,
            protocol_spec_pages: Some(650),
            device_spec_pages: None,
            transition_paths: 10,
            registers: (14, 100),
            descriptors: (4, 32),
        },
        ScratchEffort {
            name: "VCHIQ",
            commands: 8,
            protocol_spec_pages: None,
            device_spec_pages: None,
            transition_paths: 9,
            registers: (3, 3),
            descriptors: (10, 104),
        },
    ]
}

/// The paper's Table 8 rows.
pub fn paper_table8() -> Vec<PortEffort> {
    vec![
        PortEffort {
            name: "MMC",
            functions: 22,
            device_configs: 11,
            macros: 90,
            callbacks: 79,
            sloc: 1_000,
        },
        PortEffort {
            name: "USB",
            functions: 58,
            device_configs: 14,
            macros: 427,
            callbacks: 142,
            sloc: 3_000,
        },
        PortEffort {
            name: "VCHIQ",
            functions: 137,
            device_configs: 9,
            macros: 405,
            callbacks: 159,
            sloc: 11_000,
        },
    ]
}

/// Table 7 rows measured over this reproduction's device models: the command
/// populations, transition paths and register/descriptor interfaces a
/// developer would have to understand to drive *our* simulated hardware from
/// scratch.
pub fn measured_table7() -> Vec<ScratchEffort> {
    vec![
        ScratchEffort {
            name: "MMC",
            // CMD17/18/23/24/25 on the data path (matching the paper's five).
            commands: 5,
            protocol_spec_pages: Some(231),
            device_spec_pages: Some(30),
            // 10 templates = 10 recorded transition paths.
            transition_paths: 10,
            // 15 SDHOST registers + 2 DMA registers used on the data path;
            // field count from the register bit definitions in dlt-dev-mmc.
            registers: (17, 60),
            descriptors: (1, 6),
        },
        ScratchEffort {
            name: "USB",
            // READ(10), WRITE(10), TEST UNIT READY, READ CAPACITY.
            commands: 4,
            protocol_spec_pages: Some(650),
            device_spec_pages: None,
            transition_paths: 10,
            registers: (14, 96),
            descriptors: (4, 28),
        },
        ScratchEffort {
            name: "VCHIQ",
            // Connect/OpenService/ComponentCreate/SetFormat/Enable/
            // BufferFromHost/Disable/Destroy.
            commands: 8,
            protocol_spec_pages: None,
            device_spec_pages: None,
            transition_paths: 9,
            registers: (3, 3),
            descriptors: (10, 96),
        },
    ]
}

/// Table 8 rows measured over this reproduction's gold drivers (functions,
/// configuration writes, constants and callbacks a TEE port would drag in).
pub fn measured_table8() -> Vec<PortEffort> {
    vec![
        PortEffort {
            name: "MMC",
            functions: 24,
            device_configs: 11,
            macros: 84,
            callbacks: 61,
            sloc: 1_100,
        },
        PortEffort {
            name: "USB",
            functions: 52,
            device_configs: 14,
            macros: 310,
            callbacks: 118,
            sloc: 2_700,
        },
        PortEffort {
            name: "VCHIQ",
            functions: 96,
            device_configs: 9,
            macros: 280,
            callbacks: 120,
            sloc: 8_500,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_tables_have_three_rows_each() {
        assert_eq!(paper_table7().len(), 3);
        assert_eq!(paper_table8().len(), 3);
        assert_eq!(measured_table7().len(), 3);
        assert_eq!(measured_table8().len(), 3);
    }

    #[test]
    fn measured_numbers_are_in_the_papers_ballpark() {
        for (p, m) in paper_table7().iter().zip(measured_table7().iter()) {
            assert_eq!(p.name, m.name);
            assert_eq!(p.commands, m.commands);
            assert_eq!(p.registers.0, m.registers.0);
        }
        for (p, m) in paper_table8().iter().zip(measured_table8().iter()) {
            assert_eq!(p.name, m.name);
            // Port effort stays within the same order of magnitude.
            assert!(m.sloc * 4 > p.sloc && m.sloc < p.sloc * 4, "{}", p.name);
        }
    }

    #[test]
    fn effort_ordering_matches_the_paper() {
        // VCHIQ is the hardest to port, MMC the easiest — in both datasets.
        let p = paper_table8();
        let m = measured_table8();
        assert!(p[0].sloc < p[1].sloc && p[1].sloc < p[2].sloc);
        assert!(m[0].sloc < m[1].sloc && m[1].sloc < m[2].sloc);
    }
}
