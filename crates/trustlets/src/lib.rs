//! # dlt-trustlets — example trusted applications built on driverlets
//!
//! The paper's motivation (§2.1) and end-to-end use case (§8.4): trustlets
//! that perform secure IO without ever leaving the TEE. Each trustlet here is
//! deliberately tiny — the surveillance TA of Figure 8 is ~50 lines in the
//! paper and stays in that ballpark here — because the driverlet replayer
//! does all the device work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use dlt_core::{replay_cam, replay_mmc, Replayer, SecureBlockIo};
use dlt_dev_vchiq::msg::is_valid_jpeg;

/// Errors surfaced by the example trustlets.
#[derive(Debug, Clone)]
pub enum TrustletError {
    /// The driverlet replay failed.
    Replay(String),
    /// The requested item does not exist.
    NotFound,
    /// The stored data failed an integrity check.
    Corrupt(String),
}

impl std::fmt::Display for TrustletError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrustletError::Replay(s) => write!(f, "replay failed: {s}"),
            TrustletError::NotFound => write!(f, "not found"),
            TrustletError::Corrupt(s) => write!(f, "stored data corrupt: {s}"),
        }
    }
}

impl std::error::Error for TrustletError {}

/// A secure credential store: fixed-size slots on the TEE-owned SD card.
///
/// Each credential occupies one 512-byte block: a 16-byte header (magic,
/// length, checksum) followed by the secret. The OS never sees the data —
/// it cannot even reach the controller (TZASC).
///
/// The store is written against [`SecureBlockIo`], so it runs identically
/// over an exclusively-owned [`Replayer`] (the paper's deployment) or a
/// `dlt-serve` session handle sharing the device with other trustlets.
pub struct CredentialStore {
    /// First block of the store's on-card region.
    pub base_block: u32,
    /// Number of credential slots.
    pub slots: u32,
}

const CRED_MAGIC: u32 = 0x4352_4544; // "CRED"

fn checksum(data: &[u8]) -> u32 {
    data.iter().fold(0x811c_9dc5u32, |h, b| (h ^ u32::from(*b)).wrapping_mul(0x0100_0193))
}

impl CredentialStore {
    /// Create a store descriptor.
    pub fn new(base_block: u32, slots: u32) -> Self {
        CredentialStore { base_block, slots }
    }

    /// Store a credential in `slot` through any secure block handle.
    pub fn store<B: SecureBlockIo>(
        &self,
        io: &mut B,
        slot: u32,
        secret: &[u8],
    ) -> Result<(), TrustletError> {
        assert!(slot < self.slots, "slot out of range");
        let mut block = vec![0u8; 512];
        let len = secret.len().min(512 - 16);
        block[0..4].copy_from_slice(&CRED_MAGIC.to_le_bytes());
        block[4..8].copy_from_slice(&(len as u32).to_le_bytes());
        block[8..12].copy_from_slice(&checksum(&secret[..len]).to_le_bytes());
        block[16..16 + len].copy_from_slice(&secret[..len]);
        io.write_blocks(self.base_block + slot, &block)
            .map_err(|e| TrustletError::Replay(e.to_string()))?;
        Ok(())
    }

    /// Load the credential from `slot` through any secure block handle.
    pub fn load<B: SecureBlockIo>(&self, io: &mut B, slot: u32) -> Result<Vec<u8>, TrustletError> {
        assert!(slot < self.slots, "slot out of range");
        let mut block = vec![0u8; 512];
        io.read_blocks(self.base_block + slot, 1, &mut block)
            .map_err(|e| TrustletError::Replay(e.to_string()))?;
        if u32::from_le_bytes([block[0], block[1], block[2], block[3]]) != CRED_MAGIC {
            return Err(TrustletError::NotFound);
        }
        let len = u32::from_le_bytes([block[4], block[5], block[6], block[7]]) as usize;
        let stored_sum = u32::from_le_bytes([block[8], block[9], block[10], block[11]]);
        let secret = block[16..16 + len.min(512 - 16)].to_vec();
        if checksum(&secret) != stored_sum {
            return Err(TrustletError::Corrupt("credential checksum mismatch".into()));
        }
        Ok(secret)
    }
}

/// The trusted-perception trustlet of Figure 8: periodically capture a frame
/// from the TEE-owned camera and store it on the TEE-owned SD card in
/// 256-block chunks.
pub struct SurveillanceTrustlet {
    /// Resolution code to capture at.
    pub resolution: u32,
    /// First block of the on-card frame log.
    pub log_base_block: u32,
    frames_stored: u32,
}

/// Result of storing one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredFrame {
    /// First block of the frame on the card.
    pub first_block: u32,
    /// Image size in bytes.
    pub img_size: u32,
    /// Blocks occupied (rounded up to 256-block chunks).
    pub blocks: u32,
}

impl SurveillanceTrustlet {
    /// Create the trustlet.
    pub fn new(resolution: u32, log_base_block: u32) -> Self {
        SurveillanceTrustlet { resolution, log_base_block, frames_stored: 0 }
    }

    /// Number of frames stored so far.
    pub fn frames_stored(&self) -> u32 {
        self.frames_stored
    }

    /// Capture one frame and store it (the paper's Figure 8 loop body:
    /// `replay_cam` then `replay_mmc` in 256-block chunks).
    pub fn capture_and_store(
        &mut self,
        replayer: &mut Replayer,
    ) -> Result<StoredFrame, TrustletError> {
        let buf_size = 2 << 20;
        let mut img = vec![0u8; buf_size];
        // Capture one image at the configured resolution.
        let size = replay_cam(replayer, 1, self.resolution, &mut img)
            .map_err(|e| TrustletError::Replay(e.to_string()))?;
        if !is_valid_jpeg(&img[..size as usize]) {
            return Err(TrustletError::Corrupt("captured frame is not a valid JPEG".into()));
        }
        // Store the image in 256-block chunks starting at the next free slot.
        const CHUNK_BLOCKS: u32 = 256;
        const CHUNK_BYTES: usize = CHUNK_BLOCKS as usize * 512;
        let chunks = (size as usize).div_ceil(CHUNK_BYTES) as u32;
        let first_block = self.log_base_block + self.frames_stored * chunks.max(1) * CHUNK_BLOCKS;
        for i in 0..chunks {
            let start = (i as usize) * CHUNK_BYTES;
            let mut chunk = vec![0u8; CHUNK_BYTES];
            let n = (size as usize - start).min(CHUNK_BYTES);
            chunk[..n].copy_from_slice(&img[start..start + n]);
            replay_mmc(replayer, 0x10, CHUNK_BLOCKS, first_block + i * CHUNK_BLOCKS, 0, &mut chunk)
                .map_err(|e| TrustletError::Replay(e.to_string()))?;
        }
        self.frames_stored += 1;
        Ok(StoredFrame { first_block, img_size: size, blocks: chunks * CHUNK_BLOCKS })
    }

    /// Read a stored frame back from the card and verify it is a JPEG.
    pub fn verify_stored(
        &self,
        replayer: &mut Replayer,
        frame: StoredFrame,
    ) -> Result<Vec<u8>, TrustletError> {
        let mut out = vec![0u8; frame.blocks as usize * 512];
        let mut read = 0u32;
        while read < frame.blocks {
            let chunk = 256.min(frame.blocks - read);
            let start = read as usize * 512;
            let end = (read + chunk) as usize * 512;
            replay_mmc(replayer, 0x1, chunk, frame.first_block + read, 0, &mut out[start..end])
                .map_err(|e| TrustletError::Replay(e.to_string()))?;
            read += chunk;
        }
        out.truncate(frame.img_size as usize);
        if !is_valid_jpeg(&out) {
            return Err(TrustletError::Corrupt("stored frame is not a valid JPEG".into()));
        }
        Ok(out)
    }
}

/// A secure key/value database trustlet: microdb running entirely in the TEE
/// over the driverlet block path.
pub struct SecureDbTrustlet;

impl SecureDbTrustlet {
    /// Run a batch of put/get operations over a driverlet-backed database and
    /// return how many round-tripped correctly.
    pub fn run_batch(
        db: &mut dlt_workloads::MicroDb<dlt_workloads::DriverletDev>,
        pairs: &HashMap<u64, Vec<u8>>,
    ) -> Result<usize, TrustletError> {
        for (k, v) in pairs {
            db.put(*k, v).map_err(|e| TrustletError::Replay(e.to_string()))?;
        }
        let mut ok = 0;
        for (k, v) in pairs {
            let got = db.get(*k).map_err(|e| TrustletError::Replay(e.to_string()))?;
            if let Some(got) = got {
                if got.starts_with(&v[..v.len().min(48)]) {
                    ok += 1;
                }
            }
        }
        Ok(ok)
    }
}
