//! # dlt-template — the interaction-template intermediate representation
//!
//! This crate defines the artefact the paper's recorder produces and the
//! replayer consumes: the **interaction template** (§4.1) and the signed
//! bundle of templates that constitutes a **driverlet**.
//!
//! A template is a linear sequence of events in the vocabulary of Table 1:
//!
//! | kind   | events |
//! |--------|--------|
//! | input  | `read(I, C, A)`, `dma_alloc(A)`, `get_rand_bytes(A)`, `get_ts(A)`, `wait_for_irq(A)` |
//! | output | `write(I, V)` |
//! | meta   | `delay(A)`, `poll(I, E, Cond)` |
//!
//! Inputs carry [`constraint::Constraint`]s (the path conditions the recorder
//! discovered); output values are [`expr::SymExpr`]s over the replay-entry
//! parameters, earlier captured inputs and DMA base addresses (the taint
//! sinks of Tables 4 and 6). The bundle serialises two ways: to the
//! human-readable JSON document the paper's recorder emits for review
//! (§8.3.4), and to the compact varint/string-table [`codec`] binary used
//! for deployment, which the developer signature binds (§5).
//!
//! For execution, [`program`] lowers a vetted template into a flat
//! [`program::ReplayProgram`] — interned slots, postfix expression ops, and
//! pre-resolved interfaces — which the replayer runs with zero heap
//! allocation on the divergence-free path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod constraint;
pub mod event;
pub mod expr;
pub mod introspect;
pub mod package;
pub mod program;
pub mod template;

pub use constraint::Constraint;
pub use event::{
    DataDirection, DmaRole, EnvApi, Event, Iface, ReadSink, RecordedEvent, SourceSite,
};
pub use expr::{EvalEnv, SymExpr};
pub use introspect::{ConstraintSite, SiteKind, Violation};
pub use package::{CoverageReport, Driverlet, SignError, Signature};
pub use program::{compile, CompileError, EvalScratch, Op, OpMeta, ReplayProgram};
pub use template::{DmaSpec, EventBreakdown, ParamSpec, Template, TemplateMeta};
