//! System bus, TZASC-style security filtering, and the [`Platform`] bundle.
//!
//! The bus maps device register windows and RAM into one physical address
//! space, charges virtual-time costs for every access, and enforces the
//! secure-world device assignment that a TZASC provides on real TrustZone
//! silicon (the paper modifies the Arm trusted firmware to assign the MMC and
//! VC4 instances to the TEE, §8.3.1).

use crate::clock::VirtualClock;
use crate::cost::CostModel;
use crate::device::MmioDevice;
use crate::error::HwError;
use crate::irq::IrqController;
use crate::mem::{DmaRegion, PhysMem};
use crate::{shared, HwResult, Shared};

/// Which world issued a bus access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum World {
    /// The untrusted rich OS (Linux in the paper).
    NonSecure,
    /// The TrustZone TEE (OP-TEE in the paper).
    Secure,
}

/// Mapping attribute for MMIO accesses. The replayer maps device memory
/// uncached (§6.2) which is slightly slower than the cached normal-world
/// mapping; the cost model charges accordingly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmioAttr {
    /// Normal-world cacheable device mapping.
    Cached,
    /// TEE strongly-ordered / uncached device mapping.
    Uncached,
}

struct DeviceSlot {
    dev: Box<dyn MmioDevice>,
    name: &'static str,
    base: u64,
    len: u64,
    irq_line: Option<u32>,
    secure_only: bool,
}

/// The system interconnect.
pub struct SystemBus {
    clock: Shared<VirtualClock>,
    mem: Shared<PhysMem>,
    irqs: Shared<IrqController>,
    devices: Vec<DeviceSlot>,
    secure_ram: Vec<DmaRegion>,
    access_count: u64,
}

impl SystemBus {
    /// Create a bus over the given clock, memory and interrupt controller.
    pub fn new(
        clock: Shared<VirtualClock>,
        mem: Shared<PhysMem>,
        irqs: Shared<IrqController>,
    ) -> Self {
        SystemBus { clock, mem, irqs, devices: Vec::new(), secure_ram: Vec::new(), access_count: 0 }
    }

    /// Attach a device. Its register window must not overlap an existing one.
    pub fn attach(&mut self, dev: Box<dyn MmioDevice>) -> HwResult<()> {
        let (name, base, len, irq_line) =
            (dev.name(), dev.mmio_base(), dev.mmio_len(), dev.irq_line());
        for slot in &self.devices {
            let overlaps = base < slot.base + slot.len && slot.base < base + len;
            if overlaps {
                return Err(HwError::DeviceError {
                    device: name.to_string(),
                    reason: format!("register window overlaps {}", slot.name),
                });
            }
        }
        self.devices.push(DeviceSlot { dev, name, base, len, irq_line, secure_only: false });
        Ok(())
    }

    /// Assign a device exclusively to the secure world (TZASC programming).
    pub fn set_device_secure(&mut self, name: &str, secure_only: bool) -> HwResult<()> {
        for slot in &mut self.devices {
            if slot.name == name {
                slot.secure_only = secure_only;
                return Ok(());
            }
        }
        Err(HwError::NoSuchDevice { name: name.to_string() })
    }

    /// Mark a RAM window as secure-world-only (the TEE's reserved CMA pool).
    pub fn protect_ram(&mut self, region: DmaRegion) {
        self.secure_ram.push(region);
    }

    /// Remove all secure RAM windows (tests only).
    pub fn clear_ram_protection(&mut self) {
        self.secure_ram.clear();
    }

    /// Whether `name` is currently assigned to the secure world.
    pub fn is_device_secure(&self, name: &str) -> bool {
        self.devices.iter().any(|s| s.name == name && s.secure_only)
    }

    /// Names of all attached devices.
    pub fn device_names(&self) -> Vec<&'static str> {
        self.devices.iter().map(|s| s.name).collect()
    }

    /// The secure-world device whose register window fully contains
    /// `addr..addr+len`, if any. Used by the replayer's load-time hardening:
    /// a template may touch a second secure device (e.g. the system DMA
    /// engine next to the MMC host) and any secure window qualifies.
    pub fn secure_device_containing(&self, addr: u64, len: u64) -> Option<&'static str> {
        self.devices
            .iter()
            .find(|s| s.secure_only && addr >= s.base && addr.saturating_add(len) <= s.base + s.len)
            .map(|s| s.name)
    }

    /// MMIO register window of an attached device.
    pub fn device_window(&self, name: &str) -> HwResult<DmaRegion> {
        self.devices
            .iter()
            .find(|s| s.name == name)
            .map(|s| DmaRegion::new(s.base, s.len as usize))
            .ok_or_else(|| HwError::NoSuchDevice { name: name.to_string() })
    }

    /// Total number of MMIO accesses routed so far.
    pub fn access_count(&self) -> u64 {
        self.access_count
    }

    /// Shared clock handle.
    pub fn clock(&self) -> Shared<VirtualClock> {
        self.clock.clone()
    }

    /// Shared physical memory handle.
    pub fn mem(&self) -> Shared<PhysMem> {
        self.mem.clone()
    }

    /// Shared interrupt controller handle.
    pub fn irqs(&self) -> Shared<IrqController> {
        self.irqs.clone()
    }

    fn slot_for(&self, addr: u64) -> Option<usize> {
        self.devices.iter().position(|s| addr >= s.base && addr < s.base + s.len)
    }

    fn check_device_access(&self, idx: usize, addr: u64, world: World) -> HwResult<()> {
        if self.devices[idx].secure_only && world == World::NonSecure {
            return Err(HwError::PermissionDenied { addr, world });
        }
        Ok(())
    }

    fn check_ram_access(&self, addr: u64, len: usize, world: World) -> HwResult<()> {
        if world == World::Secure {
            return Ok(());
        }
        for r in &self.secure_ram {
            let end = addr.saturating_add(len as u64);
            if addr < r.end() && r.base < end {
                return Err(HwError::PermissionDenied { addr, world });
            }
        }
        Ok(())
    }

    /// Read a 32-bit device register.
    pub fn mmio_read32(&mut self, addr: u64, world: World, attr: MmioAttr) -> HwResult<u32> {
        if !addr.is_multiple_of(4) {
            return Err(HwError::Misaligned { addr, align: 4 });
        }
        let idx = self.slot_for(addr).ok_or(HwError::Unmapped { addr })?;
        self.check_device_access(idx, addr, world)?;
        let now = {
            let mut c = self.clock.lock();
            c.charge_mmio(attr == MmioAttr::Uncached);
            c.now_ns()
        };
        self.access_count += 1;
        let off = addr - self.devices[idx].base;
        let val = self.devices[idx].dev.read32(off, now);
        Ok(val)
    }

    /// Write a 32-bit device register.
    pub fn mmio_write32(
        &mut self,
        addr: u64,
        val: u32,
        world: World,
        attr: MmioAttr,
    ) -> HwResult<()> {
        if !addr.is_multiple_of(4) {
            return Err(HwError::Misaligned { addr, align: 4 });
        }
        let idx = self.slot_for(addr).ok_or(HwError::Unmapped { addr })?;
        self.check_device_access(idx, addr, world)?;
        let now = {
            let mut c = self.clock.lock();
            c.charge_mmio(attr == MmioAttr::Uncached);
            c.now_ns()
        };
        self.access_count += 1;
        let off = addr - self.devices[idx].base;
        self.devices[idx].dev.write32(off, val, now);
        Ok(())
    }

    /// Read bytes from RAM (charged as word copies).
    pub fn ram_read(&mut self, addr: u64, out: &mut [u8], world: World) -> HwResult<()> {
        self.check_ram_access(addr, out.len(), world)?;
        self.clock.lock().charge_pio_words((out.len() as u64).div_ceil(4));
        self.mem.lock().read_bytes(addr, out)
    }

    /// Write bytes to RAM (charged as word copies).
    pub fn ram_write(&mut self, addr: u64, src: &[u8], world: World) -> HwResult<()> {
        self.check_ram_access(addr, src.len(), world)?;
        self.clock.lock().charge_pio_words((src.len() as u64).div_ceil(4));
        self.mem.lock().write_bytes(addr, src)
    }

    /// Read a 32-bit little-endian word from RAM.
    pub fn ram_read32(&mut self, addr: u64, world: World) -> HwResult<u32> {
        self.check_ram_access(addr, 4, world)?;
        self.clock.lock().charge_pio_words(1);
        self.mem.lock().read32(addr)
    }

    /// Write a 32-bit little-endian word to RAM.
    pub fn ram_write32(&mut self, addr: u64, val: u32, world: World) -> HwResult<()> {
        self.check_ram_access(addr, 4, world)?;
        self.clock.lock().charge_pio_words(1);
        self.mem.lock().write32(addr, val)
    }

    /// Tick every attached device up to the current time.
    pub fn tick_all(&mut self) {
        let now = self.clock.lock().now_ns();
        self.irqs.lock().tick(now);
        for slot in &mut self.devices {
            slot.dev.tick(now);
        }
    }

    /// Busy-wait (advancing virtual time) for `us` microseconds, ticking
    /// devices as time passes. Models `udelay`.
    pub fn delay_us(&mut self, us: u64) {
        self.clock.lock().advance_us(us);
        self.tick_all();
    }

    /// The earliest scheduled event on this bus — an IRQ assertion deadline
    /// or a device-internal completion deadline — if any. `wait_for_irq`
    /// jumps straight to it instead of polling. (The serve layer's
    /// event loop does *not* read this: its next-event times come from
    /// queued arrival stamps and hold deadlines, because a lane's devices
    /// only make progress while a replay drives them.)
    pub fn next_event_ns(&self) -> Option<u64> {
        let next_irq = self.irqs.lock().earliest_deadline();
        let next_dev = self.devices.iter().filter_map(|s| s.dev.next_deadline_ns()).min();
        match (next_irq, next_dev) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Wait for interrupt `line` to become pending, advancing virtual time.
    ///
    /// Returns the number of virtual microseconds waited. Fails with
    /// [`HwError::Timeout`] after `timeout_us`.
    pub fn wait_for_irq(&mut self, line: u32, timeout_us: u64, _world: World) -> HwResult<u64> {
        let start = self.clock.lock().now_ns();
        let deadline = start + timeout_us * 1_000;
        let quantum_ns = self.clock.lock().cost().poll_delay_ns.max(1);
        loop {
            self.tick_all();
            let now = self.clock.lock().now_ns();
            if self.irqs.lock().is_pending(line, now) {
                // Charge the delivery latency once.
                let delivery = self.clock.lock().cost().irq_delivery_ns;
                self.clock.lock().advance_ns(delivery);
                return Ok((self.clock.lock().now_ns() - start) / 1_000);
            }
            if now >= deadline {
                return Err(HwError::Timeout {
                    what: format!("irq {line}"),
                    waited_us: (now - start) / 1_000,
                });
            }
            // Jump straight to the next scheduled event when one exists,
            // otherwise advance by the polling quantum.
            let next = self.next_event_ns();
            let mut clock = self.clock.lock();
            match next {
                Some(d) if d > now && d <= deadline => clock.advance_to(d),
                _ => clock.advance_ns(quantum_ns),
            }
        }
    }

    /// Acknowledge (clear) an interrupt line.
    pub fn ack_irq(&mut self, line: u32) {
        self.irqs.lock().clear(line);
    }

    /// Whether an interrupt line is pending right now.
    pub fn irq_pending(&mut self, line: u32) -> bool {
        let now = self.clock.lock().now_ns();
        self.irqs.lock().is_pending(line, now)
    }

    /// Soft-reset a device by name and clear its interrupt line.
    pub fn soft_reset_device(&mut self, name: &str) -> HwResult<()> {
        let now = {
            let mut c = self.clock.lock();
            let cost = c.cost().soft_reset_ns;
            c.advance_ns(cost);
            c.now_ns()
        };
        let mut found = None;
        for slot in &mut self.devices {
            if slot.name == name {
                slot.dev.soft_reset(now);
                found = slot.irq_line;
                if found.is_none() {
                    return Ok(());
                }
                break;
            }
        }
        match found {
            Some(line) => {
                self.irqs.lock().reset_line(line);
                Ok(())
            }
            None => Err(HwError::NoSuchDevice { name: name.to_string() }),
        }
    }

    /// Names and register maps of all devices (Table 7 effort analysis).
    pub fn register_maps(&self) -> Vec<(&'static str, Vec<(u64, &'static str)>)> {
        self.devices.iter().map(|s| (s.name, s.dev.register_map())).collect()
    }
}

/// Convenience bundle that wires a clock, RAM, the interrupt controller and a
/// bus together with the standard memory map of the simulated SoC.
///
/// One `Platform` models **one TEE core**: everything attached to it shares
/// its clock, and its timeline advances independently of every other
/// platform. Single-core experiments build one; the `dlt-serve` multi-core
/// service builds one per device lane (all starting from epoch zero) and
/// merges their timelines with a pointwise-max rule.
pub struct Platform {
    /// Shared virtual clock.
    pub clock: Shared<VirtualClock>,
    /// Shared physical memory.
    pub mem: Shared<PhysMem>,
    /// Shared interrupt controller.
    pub irqs: Shared<IrqController>,
    /// Shared system bus.
    pub bus: Shared<SystemBus>,
}

impl Platform {
    /// Physical base address of system RAM.
    pub const RAM_BASE: u64 = 0x0000_0000;
    /// Size of system RAM (64 MiB is plenty for descriptors, data pages and
    /// the VCHIQ queue).
    pub const RAM_SIZE: usize = 64 * 1024 * 1024;
    /// Base of the MMIO peripheral window (BCM2835-style).
    pub const PERIPH_BASE: u64 = 0x3f00_0000;

    /// Create a platform with the default cost model.
    pub fn new() -> Self {
        Self::with_cost(CostModel::default())
    }

    /// Create a platform with a custom cost model.
    pub fn with_cost(cost: CostModel) -> Self {
        let clock = shared(VirtualClock::new(cost));
        let mem = shared(PhysMem::new(Self::RAM_BASE, Self::RAM_SIZE));
        let irqs = shared(IrqController::new());
        let bus = shared(SystemBus::new(clock.clone(), mem.clone(), irqs.clone()));
        Platform { clock, mem, irqs, bus }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.lock().now_ns()
    }

    /// The cost model in use.
    pub fn cost(&self) -> CostModel {
        self.clock.lock().cost().clone()
    }
}

impl Default for Platform {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial device: one status register at +0x0 that reads back the last
    /// written value, and a "completion" register at +0x4 that schedules an
    /// IRQ 100 us after being written.
    struct ToyDevice {
        irqs: Shared<IrqController>,
        last: u32,
        resets: u32,
    }

    impl MmioDevice for ToyDevice {
        fn name(&self) -> &'static str {
            "toy"
        }
        fn mmio_base(&self) -> u64 {
            0x3f00_1000
        }
        fn mmio_len(&self) -> u64 {
            0x100
        }
        fn read32(&mut self, offset: u64, _now: u64) -> u32 {
            match offset {
                0x0 => self.last,
                0x8 => self.resets,
                _ => 0,
            }
        }
        fn write32(&mut self, offset: u64, val: u32, now: u64) {
            match offset {
                0x0 => self.last = val,
                0x4 => self.irqs.lock().assert_at(crate::irq::lines::MMC, now + 100_000),
                _ => {}
            }
        }
        fn tick(&mut self, _now: u64) {}
        fn soft_reset(&mut self, _now: u64) {
            self.last = 0;
            self.resets += 1;
        }
        fn irq_line(&self) -> Option<u32> {
            Some(crate::irq::lines::MMC)
        }
    }

    fn toy_platform() -> Platform {
        let p = Platform::new();
        let dev = Box::new(ToyDevice { irqs: p.irqs.clone(), last: 0, resets: 0 });
        p.bus.lock().attach(dev).unwrap();
        p
    }

    #[test]
    fn mmio_round_trip_and_cost() {
        let p = toy_platform();
        let mut bus = p.bus.lock();
        bus.mmio_write32(0x3f00_1000, 0xabcd, World::NonSecure, MmioAttr::Cached).unwrap();
        let v = bus.mmio_read32(0x3f00_1000, World::NonSecure, MmioAttr::Cached).unwrap();
        assert_eq!(v, 0xabcd);
        drop(bus);
        let cost = p.cost();
        assert_eq!(p.now_ns(), 2 * cost.mmio_access_ns);
    }

    #[test]
    fn uncached_access_costs_more() {
        let p = toy_platform();
        let cost = p.cost();
        p.bus.lock().mmio_read32(0x3f00_1000, World::Secure, MmioAttr::Uncached).unwrap();
        assert_eq!(p.now_ns(), cost.mmio_uncached_ns);
    }

    #[test]
    fn unmapped_and_misaligned_accesses_fault() {
        let p = toy_platform();
        let mut bus = p.bus.lock();
        assert!(matches!(
            bus.mmio_read32(0x3f99_0000, World::Secure, MmioAttr::Cached),
            Err(HwError::Unmapped { .. })
        ));
        assert!(matches!(
            bus.mmio_read32(0x3f00_1002, World::Secure, MmioAttr::Cached),
            Err(HwError::Misaligned { .. })
        ));
    }

    #[test]
    fn tzasc_blocks_normal_world_on_secure_device() {
        let p = toy_platform();
        let mut bus = p.bus.lock();
        bus.set_device_secure("toy", true).unwrap();
        assert!(matches!(
            bus.mmio_read32(0x3f00_1000, World::NonSecure, MmioAttr::Cached),
            Err(HwError::PermissionDenied { .. })
        ));
        assert!(bus.mmio_read32(0x3f00_1000, World::Secure, MmioAttr::Uncached).is_ok());
        assert!(bus.is_device_secure("toy"));
    }

    #[test]
    fn secure_ram_window_is_protected() {
        let p = toy_platform();
        let mut bus = p.bus.lock();
        bus.protect_ram(DmaRegion::new(0x10_0000, 0x30_0000));
        assert!(bus.ram_write32(0x10_0040, 7, World::Secure).is_ok());
        assert!(matches!(
            bus.ram_write32(0x10_0040, 7, World::NonSecure),
            Err(HwError::PermissionDenied { .. })
        ));
        // Outside the window the normal world is fine.
        assert!(bus.ram_write32(0x40_0000, 7, World::NonSecure).is_ok());
    }

    #[test]
    fn wait_for_irq_advances_time_to_the_assertion() {
        let p = toy_platform();
        let mut bus = p.bus.lock();
        bus.mmio_write32(0x3f00_1004, 1, World::Secure, MmioAttr::Uncached).unwrap();
        let waited = bus.wait_for_irq(crate::irq::lines::MMC, 10_000, World::Secure).unwrap();
        assert!(waited >= 99, "should have waited about 100 us, got {waited}");
        bus.ack_irq(crate::irq::lines::MMC);
        assert!(!bus.irq_pending(crate::irq::lines::MMC));
    }

    #[test]
    fn wait_for_irq_times_out() {
        let p = toy_platform();
        let mut bus = p.bus.lock();
        let err = bus.wait_for_irq(crate::irq::lines::USB, 500, World::Secure).unwrap_err();
        assert!(matches!(err, HwError::Timeout { .. }));
    }

    #[test]
    fn soft_reset_reaches_the_device_and_charges_time() {
        let p = toy_platform();
        let before = p.now_ns();
        {
            let mut bus = p.bus.lock();
            bus.mmio_write32(0x3f00_1000, 5, World::Secure, MmioAttr::Uncached).unwrap();
            bus.soft_reset_device("toy").unwrap();
            let v = bus.mmio_read32(0x3f00_1000, World::Secure, MmioAttr::Uncached).unwrap();
            assert_eq!(v, 0);
            let resets = bus.mmio_read32(0x3f00_1008, World::Secure, MmioAttr::Uncached).unwrap();
            assert_eq!(resets, 1);
        }
        assert!(p.now_ns() > before + p.cost().soft_reset_ns);
    }

    #[test]
    fn overlapping_windows_are_rejected() {
        let p = toy_platform();
        let dup = Box::new(ToyDevice { irqs: p.irqs.clone(), last: 0, resets: 0 });
        let err = p.bus.lock().attach(dup).unwrap_err();
        assert!(matches!(err, HwError::DeviceError { .. }));
    }

    #[test]
    fn ram_round_trip_through_bus() {
        let p = toy_platform();
        let mut bus = p.bus.lock();
        bus.ram_write(0x1000, &[1, 2, 3, 4, 5], World::NonSecure).unwrap();
        let mut out = [0u8; 5];
        bus.ram_read(0x1000, &mut out, World::NonSecure).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn device_window_lookup() {
        let p = toy_platform();
        let w = p.bus.lock().device_window("toy").unwrap();
        assert_eq!(w.base, 0x3f00_1000);
        assert_eq!(w.len, 0x100);
        assert!(p.bus.lock().device_window("nope").is_err());
    }
}
