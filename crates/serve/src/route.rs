//! Shard routing across replica lanes.
//!
//! The threaded-lane refactor made replica fleets real — N independent
//! simulated devices of the same class, each on its own TEE core — but
//! the front-end still sent every [`DriverletService::submit`] to the
//! *first* lane of a device class, so an N-replica fleet served traffic
//! at 1-replica throughput. This module is the routing layer in front of
//! the fleet:
//!
//! * [`LaneId`] — fleet addressing beyond the closed [`Device`] enum: a
//!   `(device class, replica ordinal)` pair.
//! * [`RoutePolicy`] — pluggable placement over fixed-size block
//!   *chunks*: hash sharding (the default — deterministic, same block →
//!   same replica), RAID0-style striping (round-robin chunks, so one hot
//!   tenant's large span fans out across the whole fleet), or pinning to
//!   the first replica (the pre-router behaviour).
//! * Replica-aware **spill** admission: when a home lane is saturated, a
//!   *clean* read sheds to its least-loaded sibling instead of failing
//!   with `QueueFull` — the power-of-two-choices idea, generalised to
//!   d-choices because scanning a ≤16-replica fleet is cheaper than
//!   sampling it.
//!
//! ## Why placement must be deterministic
//!
//! Replicas are not views of one datastore: each lane owns an
//! independent simulated device initialised from the same recorded
//! bundle. Blocks that were never written read byte-identically on every
//! replica, but a write exists only on the lane that executed it. Serial
//! equivalence therefore requires every request touching a block to land
//! on that block's *home* lane, where per-lane FIFO admission preserves
//! the block's write/read order. Both shipping policies are pure
//! functions of the block's chunk id, so the home is identical across
//! runs, submit modes and execution modes.
//!
//! ## Why spilling is restricted to clean reads
//!
//! A read may legally execute on *any* replica iff every chunk it
//! touches is **clean** — no write was ever routed into it — because
//! clean chunks are byte-identical fleet-wide (same bundle, fresh
//! platform) and a read of them commutes with every legal serial order.
//! The router tracks dirtied chunks at routing time, which is submission
//! order (the front-end is single-threaded), so the check is exact, and
//! marking is conservative: a staged write that is later rejected at the
//! doorbell leaves its chunks marked dirty, which only forfeits future
//! spill opportunities, never correctness. Writes never spill.
//!
//! [`DriverletService::submit`]: crate::DriverletService::submit

use std::collections::HashSet;

use crate::{Device, Request, SessionId, BLOCK};

/// One replica lane of a device class — fleet addressing beyond the
/// closed [`Device`] enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneId {
    /// Device class the lane serves.
    pub device: Device,
    /// Replica ordinal within the class (0-based, in construction
    /// order).
    pub replica: usize,
}

impl std::fmt::Display for LaneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.device, self.replica)
    }
}

/// Placement policy: which replica owns each fixed-size chunk of the
/// block address space. All variants are pure functions of the chunk id,
/// so placement is deterministic across runs and submit modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Everything to replica 0 — the pre-router behaviour, kept for
    /// callers that micromanage lanes themselves.
    Pinned,
    /// Hash sharding: chunk `k` lives on replica `hash(k) % n`. Large
    /// chunks keep a tenant's working set on one lane (coalescing still
    /// merges inside a chunk) while distinct extents spread fleet-wide.
    HashShard {
        /// Chunk size in blocks (placement granularity).
        chunk_blocks: u32,
    },
    /// RAID0-style striping: chunk `k` lives on replica `k % n`, so one
    /// hot tenant's large span fans out across every replica and its
    /// completions are reassembled in offset order.
    Stripe {
        /// Stripe unit in blocks.
        stripe_blocks: u32,
    },
}

impl RoutePolicy {
    /// Placement granularity in blocks (`None` = never split: the whole
    /// address space is one chunk).
    fn chunk_blocks(&self) -> Option<u32> {
        match self {
            RoutePolicy::Pinned => None,
            RoutePolicy::HashShard { chunk_blocks } => Some((*chunk_blocks).max(1)),
            RoutePolicy::Stripe { stripe_blocks } => Some((*stripe_blocks).max(1)),
        }
    }

    /// Home replica of chunk `chunk` in an `replicas`-wide fleet.
    fn replica_for_chunk(&self, chunk: u64, replicas: usize) -> usize {
        let n = replicas.max(1) as u64;
        match self {
            RoutePolicy::Pinned => 0,
            RoutePolicy::HashShard { .. } => (splitmix64(chunk) % n) as usize,
            RoutePolicy::Stripe { .. } => (chunk % n) as usize,
        }
    }

    /// Home replica of block `blkid` in an `replicas`-wide fleet — the
    /// pure placement function (what "same block → same replica" means).
    pub fn replica_for(&self, blkid: u32, replicas: usize) -> usize {
        let chunk = match self.chunk_blocks() {
            Some(cb) => u64::from(blkid) / u64::from(cb),
            None => 0,
        };
        self.replica_for_chunk(chunk, replicas)
    }
}

/// Router configuration ([`ServeConfig::route`]).
///
/// [`ServeConfig::route`]: crate::ServeConfig::route
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteConfig {
    /// Placement policy.
    pub policy: RoutePolicy,
    /// Shed clean reads from a saturated home lane to its least-loaded
    /// sibling instead of returning `QueueFull`.
    pub spill: bool,
}

impl Default for RouteConfig {
    fn default() -> Self {
        // 256-block (128 KiB) chunks: big enough that the coalescer's
        // merge window stays on one lane, small enough that distinct
        // tenant extents spread across the fleet. With one replica every
        // chunk maps to lane 0 and the router is an identity.
        RouteConfig { policy: RoutePolicy::HashShard { chunk_blocks: 256 }, spill: true }
    }
}

/// One replica lane's queue depth in a fleet backpressure snapshot
/// (carried by `ServeError::QueueFull` from routed submits, so callers
/// can tell "one hot shard" from "fleet saturated").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaDepth {
    /// Replica ordinal within the device class.
    pub replica: usize,
    /// Queue occupancy at rejection time (lane queue per-call, SQ ring
    /// in ring mode).
    pub depth: usize,
    /// The replica's configured bound.
    pub capacity: usize,
}

/// One replica's occupancy as the planner sees it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaneLoad {
    /// Current queue depth (admitted in-flight per-call; staged SQ
    /// entries in ring mode).
    pub depth: usize,
    /// The bound the depth is admitted against.
    pub capacity: usize,
    /// Whether the supervisor considers the lane healthy. An unavailable
    /// home sheds its *clean reads* to available siblings exactly like a
    /// saturated one; writes and dirty reads still go home (placement
    /// determinism outranks avoidance — the lane keeps executing through
    /// quarantine, and failover catches what still diverges).
    pub available: bool,
}

/// One contiguous piece of a routed request. A plan with a single part
/// spanning the whole request routes unsplit; two or more parts fan out
/// and reassemble.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RoutePart {
    /// Replica ordinal (index into the device's lane table).
    pub replica: usize,
    /// First block of the part (equals the request's `blkid` for
    /// captures, which carry no span).
    pub blkid: u32,
    /// Blocks in the part (0 for captures).
    pub blkcnt: u32,
    /// Whether the part was shed off its saturated home lane.
    pub spilled: bool,
}

/// Rejection: some part could not be admitted on its home lane nor
/// legally spilled. Carries the fleet-wide depth snapshot.
#[derive(Debug, Clone)]
pub(crate) struct RouteReject {
    /// The saturated home replica of the unroutable part.
    pub home: usize,
    /// Per-replica depth snapshot at rejection time.
    pub fleet: Vec<ReplicaDepth>,
}

/// The front-end's routing state: the placement policy plus the dirtied
/// chunk set that gates spilling. Lives behind `&mut DriverletService`,
/// so updates happen in submission order.
pub(crate) struct Router {
    policy: RoutePolicy,
    spill: bool,
    /// Chunks a write was ever routed into, per device class.
    dirty: HashSet<(Device, u64)>,
}

impl Router {
    pub(crate) fn new(config: RouteConfig) -> Self {
        Router { policy: config.policy, spill: config.spill, dirty: HashSet::new() }
    }

    /// Plan `req` across a fleet of `loads.len()` replicas. Returns the
    /// parts to submit (all-or-nothing: on `Err` nothing was planned and
    /// no chunk was dirtied), accounting for the parts' own occupancy so
    /// a fan-out cannot overcommit one lane.
    pub(crate) fn plan(
        &mut self,
        session: SessionId,
        req: &Request,
        loads: &[LaneLoad],
    ) -> Result<Vec<RoutePart>, RouteReject> {
        let n = loads.len().max(1);
        let device = req.device();
        let (blkid, blkcnt, is_write) = match req {
            Request::Read { blkid, blkcnt, .. } => (*blkid, *blkcnt, false),
            Request::Write { blkid, data, .. } => (*blkid, (data.len() / BLOCK) as u32, true),
            Request::Capture { .. } => {
                // Captures carry no block span: place by session hash
                // (deterministic, keeps one tenant's frames — and their
                // lane-local capture history — on one camera). Never
                // spilled: frame content may depend on that history.
                let replica = (splitmix64(u64::from(session)) % n as u64) as usize;
                if loads[replica].depth >= loads[replica].capacity {
                    return Err(self.reject(replica, loads, &[]));
                }
                return Ok(vec![RoutePart { replica, blkid: 0, blkcnt: 0, spilled: false }]);
            }
        };

        // Split the span at chunk boundaries, merging adjacent chunks
        // that share a home into one part.
        let mut parts: Vec<RoutePart> = Vec::with_capacity(1);
        let end = u64::from(blkid) + u64::from(blkcnt.max(1)) - 1;
        match self.policy.chunk_blocks() {
            None => {
                parts.push(RoutePart { replica: 0, blkid, blkcnt, spilled: false });
            }
            Some(cb) => {
                let cb = u64::from(cb);
                let (first, last) = (u64::from(blkid) / cb, end / cb);
                for chunk in first..=last {
                    let home = self.policy.replica_for_chunk(chunk, n);
                    let lo = (chunk * cb).max(u64::from(blkid));
                    let hi = ((chunk + 1) * cb - 1).min(end);
                    match parts.last_mut() {
                        Some(prev) if prev.replica == home => {
                            prev.blkcnt += (hi - lo + 1) as u32;
                        }
                        _ => parts.push(RoutePart {
                            replica: home,
                            blkid: lo as u32,
                            blkcnt: (hi - lo + 1) as u32,
                            spilled: false,
                        }),
                    }
                }
            }
        }

        // Admission with spill: each part goes home unless home is
        // saturated — or quarantined — in which case a clean read sheds
        // to the least-loaded *available* sibling with room (d-choices
        // over the whole fleet — at ≤16 replicas the scan is cheaper
        // than sampling).
        let mut planned = vec![0usize; n];
        for part in &mut parts {
            let fits =
                |r: usize, planned: &[usize]| loads[r].depth + planned[r] < loads[r].capacity;
            let spillable = self.spill && !is_write && n > 1 && self.part_is_clean(device, part);
            let home_fits = fits(part.replica, &planned);
            if home_fits && (loads[part.replica].available || !spillable) {
                planned[part.replica] += 1;
                continue;
            }
            let sibling = if spillable {
                (0..n)
                    .filter(|&r| r != part.replica && loads[r].available && fits(r, &planned))
                    .min_by_key(|&r| loads[r].depth + planned[r])
            } else {
                None
            };
            match sibling {
                Some(alt) => {
                    planned[alt] += 1;
                    part.spilled = true;
                    part.replica = alt;
                }
                // No available sibling has room: fall back to the home
                // lane if only its availability (not its depth) was the
                // problem — a quarantined lane still executes, and the
                // failover path covers what diverges there.
                None if home_fits => {
                    planned[part.replica] += 1;
                }
                None => return Err(self.reject(part.replica, loads, &planned)),
            }
        }

        if is_write {
            if let Some(cb) = self.policy.chunk_blocks() {
                let cb = u64::from(cb);
                for chunk in (u64::from(blkid) / cb)..=(end / cb) {
                    self.dirty.insert((device, chunk));
                }
            }
        }
        Ok(parts)
    }

    /// Whether a read span's bytes are replica-independent: no chunk it
    /// touches was ever dirtied by a routed write. This is the failover
    /// and eviction precondition — only such reads may re-execute on a
    /// sibling replica without silently changing their bytes.
    pub fn span_is_clean(&self, device: Device, blkid: u32, blkcnt: u32) -> bool {
        self.part_is_clean(device, &RoutePart { replica: 0, blkid, blkcnt, spilled: false })
    }

    /// Whether every chunk the part touches is clean (never dirtied by a
    /// routed write) — the condition under which the part's bytes are
    /// identical on every replica.
    fn part_is_clean(&self, device: Device, part: &RoutePart) -> bool {
        let Some(cb) = self.policy.chunk_blocks() else {
            return self.dirty.is_empty();
        };
        let cb = u64::from(cb);
        let end = u64::from(part.blkid) + u64::from(part.blkcnt.max(1)) - 1;
        ((u64::from(part.blkid) / cb)..=(end / cb))
            .all(|chunk| !self.dirty.contains(&(device, chunk)))
    }

    fn reject(&self, home: usize, loads: &[LaneLoad], planned: &[usize]) -> RouteReject {
        let fleet = loads
            .iter()
            .enumerate()
            .map(|(replica, l)| ReplicaDepth {
                replica,
                depth: l.depth + planned.get(replica).copied().unwrap_or(0),
                capacity: l.capacity,
            })
            .collect();
        RouteReject { home, fleet }
    }
}

/// SplitMix64 — the avalanche permutation behind the hash shard. Chosen
/// over a modulo of the raw chunk id so sequential extents spread
/// instead of landing on consecutive replicas in lockstep with stripe
/// placement.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loads(depths: &[usize], capacity: usize) -> Vec<LaneLoad> {
        depths.iter().map(|&depth| LaneLoad { depth, capacity, available: true }).collect()
    }

    fn rd(blkid: u32, blkcnt: u32) -> Request {
        Request::Read { device: Device::Mmc, blkid, blkcnt }
    }

    fn wr(blkid: u32, blocks: usize) -> Request {
        Request::Write { device: Device::Mmc, blkid, data: vec![0xa5; blocks * BLOCK] }
    }

    #[test]
    fn placement_is_deterministic_and_chunk_granular() {
        for policy in
            [RoutePolicy::HashShard { chunk_blocks: 64 }, RoutePolicy::Stripe { stripe_blocks: 64 }]
        {
            for blkid in 0..512u32 {
                let a = policy.replica_for(blkid, 4);
                let b = policy.replica_for(blkid, 4);
                assert_eq!(a, b, "same block must always land on the same replica");
                assert!(a < 4);
                // Every block of a chunk shares the chunk's home.
                assert_eq!(a, policy.replica_for(blkid / 64 * 64, 4));
            }
        }
        // Stripe is round-robin by construction.
        let stripe = RoutePolicy::Stripe { stripe_blocks: 8 };
        for chunk in 0..16u32 {
            assert_eq!(stripe.replica_for(chunk * 8, 4), (chunk % 4) as usize);
        }
        assert_eq!(RoutePolicy::Pinned.replica_for(12345, 4), 0);
    }

    #[test]
    fn hash_shard_spreads_distinct_extents() {
        let policy = RoutePolicy::HashShard { chunk_blocks: 64 };
        let homes: std::collections::HashSet<usize> =
            (0..32u32).map(|extent| policy.replica_for(extent * 64, 4)).collect();
        assert!(homes.len() >= 3, "32 extents over 4 replicas must hit most of the fleet");
    }

    #[test]
    fn spans_split_at_chunk_boundaries_and_reassemble_contiguously() {
        let mut router = Router::new(RouteConfig {
            policy: RoutePolicy::Stripe { stripe_blocks: 4 },
            spill: false,
        });
        let parts = router.plan(1, &rd(6, 10), &loads(&[0, 0, 0], 8)).unwrap();
        // Blocks 6..=15 over 4-block stripes: [6,7] -> chunk 1, [8..=11]
        // -> chunk 2, [12..=15] -> chunk 3; chunk k -> replica k % 3.
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts,
            vec![
                RoutePart { replica: 1, blkid: 6, blkcnt: 2, spilled: false },
                RoutePart { replica: 2, blkid: 8, blkcnt: 4, spilled: false },
                RoutePart { replica: 0, blkid: 12, blkcnt: 4, spilled: false },
            ]
        );
        // The parts partition the span in offset order.
        let total: u32 = parts.iter().map(|p| p.blkcnt).sum();
        assert_eq!(total, 10);
        assert_eq!(parts[0].blkid, 6);
        for w in parts.windows(2) {
            assert_eq!(w[0].blkid + w[0].blkcnt, w[1].blkid);
        }
    }

    #[test]
    fn adjacent_chunks_with_one_home_stay_one_part() {
        let mut router = Router::new(RouteConfig {
            policy: RoutePolicy::Stripe { stripe_blocks: 4 },
            spill: false,
        });
        // One replica: every chunk homes on 0, so nothing ever splits.
        let parts = router.plan(1, &rd(0, 64), &loads(&[0], 128)).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!((parts[0].blkid, parts[0].blkcnt), (0, 64));
    }

    #[test]
    fn clean_reads_spill_to_the_least_loaded_sibling() {
        let mut router = Router::new(RouteConfig {
            policy: RoutePolicy::Stripe { stripe_blocks: 64 },
            spill: true,
        });
        // Chunk 0 homes on replica 0, which is saturated; replica 2 is
        // the least loaded sibling.
        let parts = router.plan(1, &rd(0, 8), &loads(&[4, 2, 1, 3], 4)).unwrap();
        assert_eq!(parts.len(), 1);
        assert!(parts[0].spilled);
        assert_eq!(parts[0].replica, 2);

        // A write to the same saturated home never spills: fleet view.
        let err = router.plan(1, &wr(0, 1), &loads(&[4, 2, 1, 3], 4)).unwrap_err();
        assert_eq!(err.home, 0);
        assert_eq!(err.fleet.len(), 4);
        assert_eq!(err.fleet[0], ReplicaDepth { replica: 0, depth: 4, capacity: 4 });
        assert_eq!(err.fleet[2].depth, 1);
    }

    #[test]
    fn dirty_chunks_pin_reads_to_their_home() {
        let mut router = Router::new(RouteConfig {
            policy: RoutePolicy::Stripe { stripe_blocks: 64 },
            spill: true,
        });
        // Route a write through chunk 0 (home replica 0) while there is
        // room, dirtying it.
        router.plan(1, &wr(8, 2), &loads(&[0, 0], 4)).unwrap();
        // Now saturate the home: the read of the dirtied chunk must NOT
        // spill (the sibling never saw the write) — fleet-view reject.
        let err = router.plan(1, &rd(8, 2), &loads(&[4, 0], 4)).unwrap_err();
        assert_eq!(err.home, 0);
        // A read of a *different, clean* chunk still spills fine.
        let parts = router.plan(1, &rd(64, 2), &loads(&[4, 0], 4)).unwrap();
        assert!(parts[0].spilled || parts[0].replica == 1);
    }

    #[test]
    fn fanout_accounts_for_its_own_occupancy() {
        let mut router = Router::new(RouteConfig {
            policy: RoutePolicy::Stripe { stripe_blocks: 1 },
            spill: false,
        });
        // 4 single-block chunks round-robin over 2 replicas: 2 parts per
        // replica... but each lane has room for only 1 more entry, and
        // the merged parts (2 chunks each... stripe_blocks 1 alternates,
        // so 4 chunks -> 4 parts) overcommit: the plan must reject
        // rather than plan two parts into one slot.
        let err = router.plan(1, &rd(0, 4), &loads(&[3, 3], 4)).unwrap_err();
        assert_eq!(err.fleet.iter().map(|f| f.depth).max(), Some(4));
    }

    #[test]
    fn quarantined_homes_shed_clean_reads_but_keep_writes() {
        let mut router = Router::new(RouteConfig {
            policy: RoutePolicy::Stripe { stripe_blocks: 64 },
            spill: true,
        });
        let mut fleet = loads(&[0, 2, 1], 4);
        fleet[0].available = false;
        // Chunk 0 homes on the (empty but quarantined) replica 0: a clean
        // read sheds to the least-loaded available sibling.
        let parts = router.plan(1, &rd(0, 8), &fleet).unwrap();
        assert!(parts[0].spilled);
        assert_eq!(parts[0].replica, 2);
        // A write still goes home — placement determinism outranks
        // avoidance, and the quarantined lane keeps executing.
        let parts = router.plan(1, &wr(0, 1), &fleet).unwrap();
        assert!(!parts[0].spilled);
        assert_eq!(parts[0].replica, 0);
        // Now the dirty chunk pins reads home too, quarantine or not.
        let parts = router.plan(1, &rd(0, 8), &fleet).unwrap();
        assert!(!parts[0].spilled);
        assert_eq!(parts[0].replica, 0);
        // With every sibling also unavailable, a clean read of another
        // chunk falls back to its home rather than rejecting.
        let mut all_down = loads(&[0, 0, 0], 4);
        for l in &mut all_down {
            l.available = false;
        }
        let parts = router.plan(1, &rd(64, 8), &all_down).unwrap();
        assert!(!parts[0].spilled);
        assert_eq!(parts[0].replica, RoutePolicy::Stripe { stripe_blocks: 64 }.replica_for(64, 3));
    }

    #[test]
    fn captures_place_by_session_and_never_split() {
        let mut router = Router::new(RouteConfig::default());
        let cap = Request::Capture { frames: 1, resolution: 720 };
        let a = router.plan(7, &cap, &loads(&[0, 0, 0], 4)).unwrap();
        let b = router.plan(7, &cap, &loads(&[1, 1, 1], 4)).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].replica, b[0].replica, "a session's captures stay on one camera");
    }

    #[test]
    fn lane_ids_render_class_and_ordinal() {
        let id = LaneId { device: Device::Mmc, replica: 2 };
        assert_eq!(id.to_string(), "mmc/2");
    }
}
