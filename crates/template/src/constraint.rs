//! Input-event and parameter constraints.
//!
//! A constraint is the replay-time form of a path condition the recorder
//! discovered: it tells the replayer which input values keep the device on
//! the recorded state-transition path (§4.2). An input event whose observed
//! value violates its constraint is a **state divergence** and triggers the
//! reset/re-execute recovery (§3.3, §5). Parameter constraints additionally
//! drive template selection and the coverage report.

use serde::{Deserialize, Serialize};

use crate::expr::{EvalEnv, SymExpr};

/// A constraint on an observed input value or a replay-entry parameter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Constraint {
    /// No constraint: the input is not state-changing (e.g. a FIFO occupancy
    /// field, the HFNUM frame counter, a CBW serial number).
    Any,
    /// The value must equal the expression.
    Eq(SymExpr),
    /// The value must differ from the expression.
    Ne(SymExpr),
    /// The value must lie in `[min, max]` (inclusive).
    InRange {
        /// Inclusive lower bound.
        min: u64,
        /// Inclusive upper bound.
        max: u64,
    },
    /// The value must be one of the listed constants.
    OneOf(Vec<u64>),
    /// `(value & mask) == expected`.
    MaskEq {
        /// Bits to test.
        mask: u64,
        /// Required value of the masked bits.
        expected: u64,
    },
    /// `(value & mask) == 0`.
    MaskClear {
        /// Bits that must all be clear.
        mask: u64,
    },
    /// All sub-constraints must hold.
    All(Vec<Constraint>),
    /// At least one sub-constraint must hold.
    AnyOf(Vec<Constraint>),
}

impl Constraint {
    /// Check a value against the constraint.
    pub fn check(&self, value: u64, env: &EvalEnv) -> bool {
        match self {
            Constraint::Any => true,
            Constraint::Eq(e) => e.eval(env).map(|v| v == value).unwrap_or(false),
            Constraint::Ne(e) => e.eval(env).map(|v| v != value).unwrap_or(false),
            Constraint::InRange { min, max } => value >= *min && value <= *max,
            Constraint::OneOf(vals) => vals.contains(&value),
            Constraint::MaskEq { mask, expected } => value & mask == *expected,
            Constraint::MaskClear { mask } => value & mask == 0,
            Constraint::All(cs) => cs.iter().all(|c| c.check(value, env)),
            Constraint::AnyOf(cs) => cs.iter().any(|c| c.check(value, env)),
        }
    }

    /// Shorthand: equal to a constant.
    pub fn eq_const(v: u64) -> Constraint {
        Constraint::Eq(SymExpr::Const(v))
    }

    /// Shorthand: equal to a parameter.
    pub fn eq_param(name: &str) -> Constraint {
        Constraint::Eq(SymExpr::Param(name.to_string()))
    }

    /// Whether this constraint restricts anything at all.
    pub fn is_constraining(&self) -> bool {
        match self {
            Constraint::Any => false,
            Constraint::All(cs) | Constraint::AnyOf(cs) => cs.iter().any(|c| c.is_constraining()),
            _ => true,
        }
    }

    /// Human-readable rendering, e.g. `">=0 && <=0x8"` style strings like the
    /// paper's Table 4.
    pub fn describe(&self) -> String {
        match self {
            Constraint::Any => "*".to_string(),
            Constraint::Eq(e) => format!("== {}", e.describe()),
            Constraint::Ne(e) => format!("!= {}", e.describe()),
            Constraint::InRange { min, max } => format!(">= {min:#x} && <= {max:#x}"),
            Constraint::OneOf(vals) => {
                let parts: Vec<String> = vals.iter().map(|v| format!("{v:#x}")).collect();
                parts.join(" || ")
            }
            Constraint::MaskEq { mask, expected } => format!("(v & {mask:#x}) == {expected:#x}"),
            Constraint::MaskClear { mask } => format!("(v & {mask:#x}) == 0"),
            Constraint::All(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.describe()).collect();
                format!("({})", parts.join(" && "))
            }
            Constraint::AnyOf(cs) => {
                let parts: Vec<String> = cs.iter().map(|c| c.describe()).collect();
                format!("({})", parts.join(" || "))
            }
        }
    }

    /// Merge two constraints covering the *same* parameter from different
    /// record runs into the loosest constraint consistent with both — used by
    /// the campaign's coverage report (e.g. runs with `blkcnt=1` and
    /// `blkcnt=8` merge to `OneOf([1, 8])`, ranges union).
    pub fn union(&self, other: &Constraint) -> Constraint {
        use Constraint::*;
        match (self, other) {
            (Any, _) | (_, Any) => Any,
            (OneOf(a), OneOf(b)) => {
                let mut v = a.clone();
                for x in b {
                    if !v.contains(x) {
                        v.push(*x);
                    }
                }
                v.sort_unstable();
                OneOf(v)
            }
            (InRange { min: a1, max: a2 }, InRange { min: b1, max: b2 }) => {
                InRange { min: *a1.min(b1), max: *a2.max(b2) }
            }
            (Eq(SymExpr::Const(a)), Eq(SymExpr::Const(b))) => {
                if a == b {
                    Eq(SymExpr::Const(*a))
                } else {
                    let mut v = vec![*a, *b];
                    v.sort_unstable();
                    OneOf(v)
                }
            }
            (OneOf(a), Eq(SymExpr::Const(b))) | (Eq(SymExpr::Const(b)), OneOf(a)) => {
                let mut v = a.clone();
                if !v.contains(b) {
                    v.push(*b);
                }
                v.sort_unstable();
                OneOf(v)
            }
            (a, b) if a == b => a.clone(),
            (a, b) => AnyOf(vec![a.clone(), b.clone()]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_checks() {
        let env = EvalEnv::default();
        assert!(Constraint::Any.check(123, &env));
        assert!(Constraint::eq_const(5).check(5, &env));
        assert!(!Constraint::eq_const(5).check(6, &env));
        assert!(Constraint::InRange { min: 1, max: 8 }.check(8, &env));
        assert!(!Constraint::InRange { min: 1, max: 8 }.check(9, &env));
        assert!(Constraint::OneOf(vec![1, 16]).check(16, &env));
        assert!(!Constraint::OneOf(vec![1, 16]).check(2, &env));
        assert!(Constraint::MaskEq { mask: 0xf0, expected: 0x20 }.check(0x2a, &env));
        assert!(Constraint::MaskClear { mask: 0x3 }.check(0x8, &env));
        assert!(!Constraint::MaskClear { mask: 0x3 }.check(0x9, &env));
    }

    #[test]
    fn table4_blkcnt_constraint() {
        // blkcnt: >= 0 && <= 0x8 && <= 0x400 (the RW_1 template path).
        let c = Constraint::All(vec![
            Constraint::InRange { min: 0, max: 0x8 },
            Constraint::InRange { min: 0, max: 0x400 },
        ]);
        let env = EvalEnv::default();
        assert!(c.check(1, &env));
        assert!(c.check(8, &env));
        assert!(!c.check(9, &env));
        assert!(c.describe().contains("&&"));
    }

    #[test]
    fn symbolic_equality_against_captured_values() {
        // Table 6: img_size must equal the value VC4 assigned earlier.
        let mut env = EvalEnv::default();
        env.captured.insert("vc4_img_size".into(), 622_592);
        let c = Constraint::Eq(SymExpr::Captured("vc4_img_size".into()));
        assert!(c.check(622_592, &env));
        assert!(!c.check(622_593, &env));
        // Unbound capture: conservatively reject (sound, not silent).
        let c = Constraint::Eq(SymExpr::Captured("missing".into()));
        assert!(!c.check(0, &env));
    }

    #[test]
    fn anyof_and_all_compose() {
        let env = EvalEnv::default();
        let c = Constraint::AnyOf(vec![Constraint::eq_const(1), Constraint::eq_const(0x10)]);
        assert!(c.check(1, &env));
        assert!(c.check(0x10, &env));
        assert!(!c.check(2, &env));
        assert!(c.is_constraining());
        assert!(!Constraint::Any.is_constraining());
        assert!(!Constraint::All(vec![Constraint::Any]).is_constraining());
    }

    #[test]
    fn union_merges_coverage() {
        let a = Constraint::eq_const(1);
        let b = Constraint::eq_const(8);
        assert_eq!(a.union(&b), Constraint::OneOf(vec![1, 8]));
        let r1 = Constraint::InRange { min: 0, max: 100 };
        let r2 = Constraint::InRange { min: 50, max: 500 };
        assert_eq!(r1.union(&r2), Constraint::InRange { min: 0, max: 500 });
        let o = Constraint::OneOf(vec![1, 8]);
        assert_eq!(o.union(&Constraint::eq_const(32)), Constraint::OneOf(vec![1, 8, 32]));
        assert_eq!(Constraint::Any.union(&a), Constraint::Any);
        // Identical constraints stay put.
        assert_eq!(a.union(&Constraint::eq_const(1)), Constraint::eq_const(1));
    }

    #[test]
    fn describe_matches_paper_style() {
        let c = Constraint::InRange { min: 0, max: 0x1df77f8 };
        assert_eq!(c.describe(), ">= 0x0 && <= 0x1df77f8");
        let c = Constraint::OneOf(vec![0x1, 0x10]);
        assert_eq!(c.describe(), "0x1 || 0x10");
    }

    #[test]
    fn serde_round_trip() {
        let c = Constraint::All(vec![
            Constraint::InRange { min: 0, max: 8 },
            Constraint::Ne(SymExpr::Const(3)),
        ]);
        let json = serde_json::to_string(&c).unwrap();
        let back: Constraint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
