//! USB mass-storage device: control endpoint plus bulk-only transport (BOT).
//!
//! The device speaks the standard enumeration protocol on endpoint 0 and the
//! mass-storage bulk-only transport on the bulk endpoint pair: the host sends
//! a 31-byte command block wrapper (CBW), optionally exchanges a data phase,
//! then reads a 13-byte command status wrapper (CSW). These are exactly the
//! two descriptors the paper highlights as the primary driver/device
//! communication vehicle for USB (§7.2.3).

use crate::scsi::{Cdb, ScsiDisk, ScsiResponse};
use crate::USB_FTL_PAGE;

/// CBW signature ("USBC").
pub const CBW_SIGNATURE: u32 = 0x4342_5355;
/// CSW signature ("USBS").
pub const CSW_SIGNATURE: u32 = 0x5342_5355;
/// CBW length in bytes.
pub const CBW_LEN: usize = 31;
/// CSW length in bytes.
pub const CSW_LEN: usize = 13;

/// Bulk OUT endpoint number (host -> device).
pub const BULK_OUT_EP: u32 = 2;
/// Bulk IN endpoint number (device -> host).
pub const BULK_IN_EP: u32 = 1;

/// Standard USB request codes (subset).
mod request {
    pub const GET_DESCRIPTOR: u8 = 6;
    pub const SET_ADDRESS: u8 = 5;
    pub const SET_CONFIGURATION: u8 = 9;
    /// Mass-storage class: get max LUN.
    pub const GET_MAX_LUN: u8 = 0xfe;
    /// Mass-storage class: bulk-only reset.
    pub const BOT_RESET: u8 = 0xff;
}

/// Descriptor types.
mod desc {
    pub const DEVICE: u8 = 1;
    pub const CONFIGURATION: u8 = 2;
    pub const STRING: u8 = 3;
}

/// Bulk-only transport state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BotState {
    /// Waiting for a CBW.
    Idle,
    /// Data-in phase pending: the host will read `data`, then the CSW.
    DataIn { data: Vec<u8>, tag: u32, residue: u32 },
    /// Data-out phase pending: expecting `expect` bytes for a WRITE at `lba`.
    DataOut { lba: u64, expect: usize, received: Vec<u8>, tag: u32 },
    /// Command finished; CSW waiting to be read.
    CswReady { csw: [u8; CSW_LEN] },
}

/// A parsed command block wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cbw {
    /// Host-assigned tag, echoed in the CSW.
    pub tag: u32,
    /// Expected data-transfer length.
    pub data_len: u32,
    /// Direction flag: true if data flows device -> host.
    pub dir_in: bool,
    /// Logical unit number.
    pub lun: u8,
    /// The SCSI CDB bytes.
    pub cdb: Vec<u8>,
}

impl Cbw {
    /// Parse a raw 31-byte CBW.
    pub fn parse(raw: &[u8]) -> Option<Cbw> {
        if raw.len() < CBW_LEN {
            return None;
        }
        let sig = u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]);
        if sig != CBW_SIGNATURE {
            return None;
        }
        let tag = u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]);
        let data_len = u32::from_le_bytes([raw[8], raw[9], raw[10], raw[11]]);
        let dir_in = raw[12] & 0x80 != 0;
        let lun = raw[13] & 0xf;
        let cb_len = (raw[14] & 0x1f) as usize;
        // The CDB is carried word-aligned at offset 16 in this model (the gold
        // driver emits the CBW as 32-bit shared-memory writes).
        Some(Cbw { tag, data_len, dir_in, lun, cdb: raw[16..16 + cb_len.min(15)].to_vec() })
    }

    /// Encode a CBW (used by the gold driver).
    pub fn encode(tag: u32, data_len: u32, dir_in: bool, cdb: &[u8]) -> [u8; CBW_LEN] {
        let mut raw = [0u8; CBW_LEN];
        raw[0..4].copy_from_slice(&CBW_SIGNATURE.to_le_bytes());
        raw[4..8].copy_from_slice(&tag.to_le_bytes());
        raw[8..12].copy_from_slice(&data_len.to_le_bytes());
        raw[12] = if dir_in { 0x80 } else { 0x00 };
        raw[13] = 0;
        raw[14] = cdb.len().min(15) as u8;
        raw[16..16 + cdb.len().min(15)].copy_from_slice(&cdb[..cdb.len().min(15)]);
        raw
    }
}

fn make_csw(tag: u32, residue: u32, status: u8) -> [u8; CSW_LEN] {
    let mut csw = [0u8; CSW_LEN];
    csw[0..4].copy_from_slice(&CSW_SIGNATURE.to_le_bytes());
    csw[4..8].copy_from_slice(&tag.to_le_bytes());
    csw[8..12].copy_from_slice(&residue.to_le_bytes());
    csw[12] = status;
    csw
}

/// The USB flash drive.
pub struct UsbMassStorage {
    disk: ScsiDisk,
    address: u8,
    configured: bool,
    bot: BotState,
    cbws_processed: u64,
    stalls: u64,
}

impl UsbMassStorage {
    /// Create a device around `disk`.
    pub fn new(disk: ScsiDisk) -> Self {
        UsbMassStorage {
            disk,
            address: 0,
            configured: false,
            bot: BotState::Idle,
            cbws_processed: 0,
            stalls: 0,
        }
    }

    /// Backing disk (validation / fault injection).
    pub fn disk(&self) -> &ScsiDisk {
        &self.disk
    }

    /// Mutable backing disk.
    pub fn disk_mut(&mut self) -> &mut ScsiDisk {
        &mut self.disk
    }

    /// Whether the device has been addressed and configured.
    pub fn is_configured(&self) -> bool {
        self.configured
    }

    /// Assigned USB address.
    pub fn address(&self) -> u8 {
        self.address
    }

    /// Number of CBWs processed.
    pub fn cbws_processed(&self) -> u64 {
        self.cbws_processed
    }

    /// Number of protocol stalls (malformed CBWs etc.).
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Skip enumeration: as-if-just-initialised state used by the host
    /// controller's soft reset (§5: soft reset returns the device to its
    /// post-boot-initialisation state).
    pub fn fast_init(&mut self) {
        self.address = 1;
        self.configured = true;
        self.bot = BotState::Idle;
    }

    fn device_descriptor() -> Vec<u8> {
        vec![
            18,
            desc::DEVICE,
            0x00,
            0x02, // USB 2.0
            0x00,
            0x00,
            0x00,
            64, // class/sub/proto, max packet 64
            0x44,
            0x86,
            0x03,
            0x80, // VID 0x8644 PID 0x8003 (the paper's stick)
            0x00,
            0x01,
            1,
            2,
            3,
            1, // bcdDevice, strings, 1 config
        ]
    }

    fn config_descriptor() -> Vec<u8> {
        // Configuration + interface (mass storage, SCSI, BOT) + 2 bulk EPs.
        let mut v = vec![
            9,
            desc::CONFIGURATION,
            32,
            0,
            1,
            1,
            0,
            0x80,
            50, // config
            9,
            4,
            0,
            0,
            2,
            0x08,
            0x06,
            0x50,
            0, // interface: MSC/SCSI/BOT
            7,
            5,
            0x80 | BULK_IN_EP as u8,
            2,
            0x00,
            0x02,
            0, // EP IN, bulk, 512
            7,
            5,
            BULK_OUT_EP as u8,
            2,
            0x00,
            0x02,
            0, // EP OUT, bulk, 512
        ];
        v[2] = v.len() as u8;
        v
    }

    /// Handle a SETUP packet on endpoint 0. Returns the data-in stage bytes
    /// (possibly empty for OUT/status-only requests).
    pub fn handle_control(&mut self, setup: &[u8; 8]) -> Vec<u8> {
        let bm_request_type = setup[0];
        let b_request = setup[1];
        let w_value = u16::from_le_bytes([setup[2], setup[3]]);
        let w_length = u16::from_le_bytes([setup[6], setup[7]]) as usize;

        match b_request {
            request::SET_ADDRESS => {
                self.address = (w_value & 0x7f) as u8;
                Vec::new()
            }
            request::SET_CONFIGURATION => {
                self.configured = w_value != 0;
                Vec::new()
            }
            request::GET_DESCRIPTOR => {
                let dtype = (w_value >> 8) as u8;
                let mut data = match dtype {
                    desc::DEVICE => Self::device_descriptor(),
                    desc::CONFIGURATION => Self::config_descriptor(),
                    desc::STRING => vec![4, desc::STRING, 0x09, 0x04],
                    _ => Vec::new(),
                };
                data.truncate(w_length);
                data
            }
            request::GET_MAX_LUN if bm_request_type & 0x60 == 0x20 => vec![0],
            request::BOT_RESET if bm_request_type & 0x60 == 0x20 => {
                self.bot = BotState::Idle;
                Vec::new()
            }
            _ => {
                self.stalls += 1;
                Vec::new()
            }
        }
    }

    /// Receive a bulk OUT transfer (CBW or data-out payload).
    ///
    /// Returns extra processing latency in nanoseconds that the host
    /// controller should add before completing the transaction (flash
    /// programming time for writes).
    pub fn bulk_out(&mut self, data: &[u8], lba_program_ns: u64) -> u64 {
        match std::mem::replace(&mut self.bot, BotState::Idle) {
            BotState::Idle | BotState::CswReady { .. } => {
                let Some(cbw) = Cbw::parse(data) else {
                    self.stalls += 1;
                    self.bot = BotState::Idle;
                    return 0;
                };
                self.cbws_processed += 1;
                let Some(cdb) = Cdb::parse(&cbw.cdb) else {
                    self.bot = BotState::CswReady { csw: make_csw(cbw.tag, cbw.data_len, 1) };
                    return 0;
                };
                match self.disk.execute(&cdb) {
                    ScsiResponse::DataIn(mut d) => {
                        d.truncate(cbw.data_len as usize);
                        let residue = cbw.data_len - d.len() as u32;
                        self.bot = BotState::DataIn { data: d, tag: cbw.tag, residue };
                    }
                    ScsiResponse::NeedsDataOut(expect) => {
                        self.bot = BotState::DataOut {
                            lba: cdb.lba,
                            expect,
                            received: Vec::with_capacity(expect),
                            tag: cbw.tag,
                        };
                    }
                    ScsiResponse::Good => {
                        self.bot = BotState::CswReady { csw: make_csw(cbw.tag, 0, 0) };
                    }
                    ScsiResponse::CheckCondition { .. } => {
                        self.bot = BotState::CswReady { csw: make_csw(cbw.tag, cbw.data_len, 1) };
                    }
                }
                0
            }
            BotState::DataOut { lba, expect, mut received, tag } => {
                received.extend_from_slice(data);
                if received.len() >= expect {
                    received.truncate(expect);
                    let ok = self.disk.write_data(lba, &received);
                    let pages = (expect.div_ceil(USB_FTL_PAGE)) as u64;
                    self.bot = BotState::CswReady { csw: make_csw(tag, 0, if ok { 0 } else { 1 }) };
                    pages * lba_program_ns
                } else {
                    self.bot = BotState::DataOut { lba, expect, received, tag };
                    0
                }
            }
            BotState::DataIn { .. } => {
                // Host violated the protocol: sending OUT during a data-in
                // phase. Stall and resynchronise.
                self.stalls += 1;
                self.bot = BotState::Idle;
                0
            }
        }
    }

    /// Serve a bulk IN transfer (data-in payload or CSW), up to `maxlen`.
    pub fn bulk_in(&mut self, maxlen: usize) -> Vec<u8> {
        match std::mem::replace(&mut self.bot, BotState::Idle) {
            BotState::DataIn { mut data, tag, residue } => {
                if data.len() <= maxlen {
                    self.bot = BotState::CswReady { csw: make_csw(tag, residue, 0) };
                    data
                } else {
                    let rest = data.split_off(maxlen);
                    self.bot = BotState::DataIn { data: rest, tag, residue };
                    data
                }
            }
            BotState::CswReady { csw } => {
                self.bot = BotState::Idle;
                csw[..maxlen.min(CSW_LEN)].to_vec()
            }
            other => {
                // Nothing to send: NAK equivalent (empty).
                self.stalls += 1;
                self.bot = other;
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scsi::opcode;

    fn configured_device(blocks: u64) -> UsbMassStorage {
        let mut d = UsbMassStorage::new(ScsiDisk::new(blocks));
        // Enumerate the long way to exercise the control path.
        let get_dev = [0x80, request::GET_DESCRIPTOR, 0, desc::DEVICE, 0, 0, 18, 0];
        assert_eq!(d.handle_control(&get_dev).len(), 18);
        let set_addr = [0x00, request::SET_ADDRESS, 3, 0, 0, 0, 0, 0];
        d.handle_control(&set_addr);
        assert_eq!(d.address(), 3);
        let get_cfg = [0x80, request::GET_DESCRIPTOR, 0, desc::CONFIGURATION, 0, 0, 64, 0];
        let cfg = d.handle_control(&get_cfg);
        assert!(cfg.len() >= 32);
        let set_cfg = [0x00, request::SET_CONFIGURATION, 1, 0, 0, 0, 0, 0];
        d.handle_control(&set_cfg);
        assert!(d.is_configured());
        d
    }

    fn do_read(d: &mut UsbMassStorage, lba: u32, blocks: u16, tag: u32) -> Vec<u8> {
        let cdb = Cdb::encode_rw10(false, lba, blocks);
        let cbw = Cbw::encode(tag, u32::from(blocks) * 512, true, &cdb);
        d.bulk_out(&cbw, 0);
        let data = d.bulk_in(blocks as usize * 512);
        let csw = d.bulk_in(CSW_LEN);
        assert_eq!(csw.len(), CSW_LEN);
        assert_eq!(u32::from_le_bytes([csw[4], csw[5], csw[6], csw[7]]), tag);
        assert_eq!(csw[12], 0, "CSW status must be GOOD");
        data
    }

    fn do_write(d: &mut UsbMassStorage, lba: u32, payload: &[u8], tag: u32) -> u8 {
        let blocks = (payload.len() / 512) as u16;
        let cdb = Cdb::encode_rw10(true, lba, blocks);
        let cbw = Cbw::encode(tag, payload.len() as u32, false, &cdb);
        d.bulk_out(&cbw, 0);
        d.bulk_out(payload, 1_000);
        let csw = d.bulk_in(CSW_LEN);
        csw[12]
    }

    #[test]
    fn enumeration_produces_mass_storage_descriptors() {
        let d = configured_device(100);
        assert_eq!(d.address(), 3);
        assert!(d.is_configured());
    }

    #[test]
    fn cbw_encode_parse_round_trip() {
        let cdb = Cdb::encode_rw10(false, 42, 8);
        let raw = Cbw::encode(0xdead, 4096, true, &cdb);
        let cbw = Cbw::parse(&raw).unwrap();
        assert_eq!(cbw.tag, 0xdead);
        assert_eq!(cbw.data_len, 4096);
        assert!(cbw.dir_in);
        assert_eq!(cbw.cdb, cdb.to_vec());
    }

    #[test]
    fn bot_read_write_round_trip() {
        let mut d = configured_device(1000);
        let payload: Vec<u8> = (0..1024).map(|i| (i * 3 % 255) as u8).collect();
        assert_eq!(do_write(&mut d, 5, &payload, 1), 0);
        let back = do_read(&mut d, 5, 2, 2);
        assert_eq!(back, payload);
        assert_eq!(d.cbws_processed(), 2);
    }

    #[test]
    fn csw_echoes_the_tag_monotonically() {
        let mut d = configured_device(100);
        for tag in [7u32, 8, 9, 100] {
            let _ = do_read(&mut d, 0, 1, tag);
        }
    }

    #[test]
    fn write_returns_flash_programming_latency() {
        let mut d = configured_device(1000);
        let cdb = Cdb::encode_rw10(true, 0, 16);
        let cbw = Cbw::encode(1, 8192, false, &cdb);
        assert_eq!(d.bulk_out(&cbw, 123), 0);
        let extra = d.bulk_out(&vec![0u8; 8192], 1_000_000);
        assert_eq!(extra, 2_000_000, "two 4 KiB pages at 1 ms each");
    }

    #[test]
    fn malformed_cbw_stalls() {
        let mut d = configured_device(100);
        d.bulk_out(&[0u8; 31], 0);
        assert_eq!(d.stalls(), 1);
        // A NAK (empty read) follows since there is nothing queued.
        assert!(d.bulk_in(512).is_empty());
    }

    #[test]
    fn failed_command_reports_in_csw_status() {
        let mut d = configured_device(10);
        // Read far out of range.
        let cdb = Cdb::encode_rw10(false, 1000, 1);
        let cbw = Cbw::encode(9, 512, true, &cdb);
        d.bulk_out(&cbw, 0);
        let csw = d.bulk_in(CSW_LEN);
        assert_eq!(csw[12], 1, "CHECK CONDITION maps to CSW status 1");
        // REQUEST SENSE explains it.
        let cdb = [opcode::REQUEST_SENSE, 0, 0, 0, 18, 0];
        let cbw = Cbw::encode(10, 18, true, &cdb);
        d.bulk_out(&cbw, 0);
        let sense = d.bulk_in(18);
        assert_eq!(sense[2] & 0xf, crate::scsi::sense::ILLEGAL_REQUEST);
    }

    #[test]
    fn partial_data_in_reads_are_supported() {
        let mut d = configured_device(100);
        d.disk_mut().poke_block(0, &[0xaa; 512]);
        let cdb = Cdb::encode_rw10(false, 0, 1);
        let cbw = Cbw::encode(3, 512, true, &cdb);
        d.bulk_out(&cbw, 0);
        let first = d.bulk_in(256);
        let second = d.bulk_in(256);
        assert_eq!(first.len(), 256);
        assert_eq!(second.len(), 256);
        assert!(first.iter().chain(second.iter()).all(|b| *b == 0xaa));
        let csw = d.bulk_in(CSW_LEN);
        assert_eq!(csw[12], 0);
    }

    #[test]
    fn bot_reset_class_request_resets_the_state_machine() {
        let mut d = configured_device(100);
        let cdb = Cdb::encode_rw10(false, 0, 1);
        let cbw = Cbw::encode(3, 512, true, &cdb);
        d.bulk_out(&cbw, 0);
        // Abandon mid-transfer, then class-reset.
        let reset = [0x21, request::BOT_RESET, 0, 0, 0, 0, 0, 0];
        d.handle_control(&reset);
        assert!(d.bulk_in(512).is_empty(), "after reset nothing is queued");
    }

    #[test]
    fn fast_init_skips_enumeration() {
        let mut d = UsbMassStorage::new(ScsiDisk::new(10));
        assert!(!d.is_configured());
        d.fast_init();
        assert!(d.is_configured());
        let _ = do_read(&mut d, 0, 1, 1);
    }
}
