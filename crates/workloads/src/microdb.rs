//! microdb — a small page-based embedded database over a block device.
//!
//! SQLite is not available in the reproduction environment, so the Figure-5
//! workloads run on this stand-in: keyed 48-byte records stored in 4 KiB
//! bucket pages (8 blocks each) with a superblock, per-page headers and a
//! deterministic hash layout. The important property for the experiment is
//! that queries generate realistic mixes of 4 KiB-aligned block reads and
//! writes over the [`crate::block::BlockDev`] API.

use crate::block::{BlockDev, BLOCK};

/// Bytes per database page.
pub const PAGE_BYTES: usize = 4096;
/// Blocks per page.
pub const BLOCKS_PER_PAGE: u32 = (PAGE_BYTES / BLOCK) as u32;
/// Bytes of a record's value.
pub const VALUE_BYTES: usize = 48;
/// Records per bucket page (header of 16 bytes, 56 bytes per slot).
pub const SLOTS_PER_PAGE: usize = (PAGE_BYTES - 16) / (8 + VALUE_BYTES + 1);

const MAGIC: u32 = 0x6d64_6231; // "mdb1"

/// Errors from the database layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// The underlying block device failed.
    Io(String),
    /// The bucket page for this key is full.
    PageFull,
    /// The database has not been formatted.
    NotFormatted,
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(s) => write!(f, "io: {s}"),
            DbError::PageFull => write!(f, "bucket page full"),
            DbError::NotFormatted => write!(f, "database not formatted"),
        }
    }
}

impl std::error::Error for DbError {}

/// The database handle.
pub struct MicroDb<D: BlockDev> {
    dev: D,
    buckets: u32,
    base_block: u32,
    /// Statistics: page reads / page writes issued.
    page_reads: u64,
    page_writes: u64,
}

impl<D: BlockDev> MicroDb<D> {
    /// Format a new database with `buckets` bucket pages starting at
    /// `base_block` on the device.
    pub fn format(mut dev: D, base_block: u32, buckets: u32) -> Result<Self, DbError> {
        let mut superblock = vec![0u8; PAGE_BYTES];
        superblock[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        superblock[4..8].copy_from_slice(&buckets.to_le_bytes());
        dev.write_blocks(base_block, &superblock).map_err(DbError::Io)?;
        // Zero every bucket page so record counts start at zero.
        let empty = vec![0u8; PAGE_BYTES];
        for b in 0..buckets {
            dev.write_blocks(base_block + (b + 1) * BLOCKS_PER_PAGE, &empty)
                .map_err(DbError::Io)?;
        }
        dev.flush().map_err(DbError::Io)?;
        Ok(MicroDb { dev, buckets, base_block, page_reads: 0, page_writes: 0 })
    }

    /// Open an existing database (reads the superblock).
    pub fn open(mut dev: D, base_block: u32) -> Result<Self, DbError> {
        let mut superblock = vec![0u8; PAGE_BYTES];
        dev.read_blocks(base_block, BLOCKS_PER_PAGE, &mut superblock).map_err(DbError::Io)?;
        if u32::from_le_bytes([superblock[0], superblock[1], superblock[2], superblock[3]]) != MAGIC
        {
            return Err(DbError::NotFormatted);
        }
        let buckets =
            u32::from_le_bytes([superblock[4], superblock[5], superblock[6], superblock[7]]);
        Ok(MicroDb { dev, buckets, base_block, page_reads: 0, page_writes: 0 })
    }

    /// The underlying device (to read the virtual clock / breakdowns).
    pub fn dev(&self) -> &D {
        &self.dev
    }

    /// Mutable access to the underlying device.
    pub fn dev_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// (page reads, page writes) issued so far.
    pub fn io_counts(&self) -> (u64, u64) {
        (self.page_reads, self.page_writes)
    }

    fn bucket_of(&self, key: u64) -> u32 {
        (key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 33) as u32 % self.buckets
    }

    fn page_block(&self, bucket: u32) -> u32 {
        self.base_block + (bucket + 1) * BLOCKS_PER_PAGE
    }

    fn load_page(&mut self, bucket: u32) -> Result<Vec<u8>, DbError> {
        let mut page = vec![0u8; PAGE_BYTES];
        self.page_reads += 1;
        self.dev
            .read_blocks(self.page_block(bucket), BLOCKS_PER_PAGE, &mut page)
            .map_err(DbError::Io)?;
        Ok(page)
    }

    fn store_page(&mut self, bucket: u32, page: &[u8]) -> Result<(), DbError> {
        self.page_writes += 1;
        self.dev.write_blocks(self.page_block(bucket), page).map_err(DbError::Io)
    }

    fn slot_range(slot: usize) -> (usize, usize) {
        let start = 16 + slot * (8 + VALUE_BYTES + 1);
        (start, start + 8 + VALUE_BYTES + 1)
    }

    fn find_slot(page: &[u8], key: u64) -> Option<usize> {
        for slot in 0..SLOTS_PER_PAGE {
            let (start, _) = Self::slot_range(slot);
            let occupied = page[start + 8 + VALUE_BYTES] == 1;
            if occupied {
                let k = u64::from_le_bytes(page[start..start + 8].try_into().unwrap());
                if k == key {
                    return Some(slot);
                }
            }
        }
        None
    }

    fn free_slot(page: &[u8]) -> Option<usize> {
        (0..SLOTS_PER_PAGE).find(|slot| {
            let (start, _) = Self::slot_range(*slot);
            page[start + 8 + VALUE_BYTES] == 0
        })
    }

    /// Insert or update a record.
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<(), DbError> {
        let bucket = self.bucket_of(key);
        let mut page = self.load_page(bucket)?;
        let slot = match Self::find_slot(&page, key) {
            Some(s) => s,
            None => Self::free_slot(&page).ok_or(DbError::PageFull)?,
        };
        let (start, _) = Self::slot_range(slot);
        page[start..start + 8].copy_from_slice(&key.to_le_bytes());
        let mut v = [0u8; VALUE_BYTES];
        let n = value.len().min(VALUE_BYTES);
        v[..n].copy_from_slice(&value[..n]);
        page[start + 8..start + 8 + VALUE_BYTES].copy_from_slice(&v);
        page[start + 8 + VALUE_BYTES] = 1;
        self.store_page(bucket, &page)
    }

    /// Fetch a record.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, DbError> {
        let bucket = self.bucket_of(key);
        let page = self.load_page(bucket)?;
        Ok(Self::find_slot(&page, key).map(|slot| {
            let (start, _) = Self::slot_range(slot);
            page[start + 8..start + 8 + VALUE_BYTES].to_vec()
        }))
    }

    /// Delete a record. Returns whether it existed.
    pub fn delete(&mut self, key: u64) -> Result<bool, DbError> {
        let bucket = self.bucket_of(key);
        let mut page = self.load_page(bucket)?;
        match Self::find_slot(&page, key) {
            Some(slot) => {
                let (start, _) = Self::slot_range(slot);
                page[start + 8 + VALUE_BYTES] = 0;
                self.store_page(bucket, &page)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Scan every bucket, folding record values (the `selectG` / group-by
    /// style workload). Returns the number of live records visited.
    pub fn scan<F: FnMut(u64, &[u8])>(&mut self, mut f: F) -> Result<u64, DbError> {
        let mut visited = 0;
        for bucket in 0..self.buckets {
            let page = self.load_page(bucket)?;
            for slot in 0..SLOTS_PER_PAGE {
                let (start, _) = Self::slot_range(slot);
                if page[start + 8 + VALUE_BYTES] == 1 {
                    let k = u64::from_le_bytes(page[start..start + 8].try_into().unwrap());
                    f(k, &page[start + 8..start + 8 + VALUE_BYTES]);
                    visited += 1;
                }
            }
        }
        Ok(visited)
    }

    /// Flush deferred writes on the underlying device.
    pub fn flush(&mut self) -> Result<(), DbError> {
        self.dev.flush().map_err(DbError::Io)
    }
}

// Allow `&mut MemDev`-style borrowed devices in tests and harnesses.
impl<D: BlockDev + ?Sized> BlockDev for &mut D {
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        (**self).read_blocks(blkid, blkcnt, buf)
    }
    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        (**self).write_blocks(blkid, data)
    }
    fn flush(&mut self) -> Result<(), String> {
        (**self).flush()
    }
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
    fn invocation_breakdown(&self) -> std::collections::HashMap<u32, u64> {
        (**self).invocation_breakdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// An in-memory block device for fast unit tests of the DB layer.
    #[derive(Default)]
    struct MemDev {
        blocks: HashMap<u32, Vec<u8>>,
        now: u64,
    }

    impl BlockDev for MemDev {
        fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
            for i in 0..blkcnt {
                let src =
                    self.blocks.get(&(blkid + i)).cloned().unwrap_or_else(|| vec![0u8; BLOCK]);
                buf[i as usize * BLOCK..(i as usize + 1) * BLOCK].copy_from_slice(&src);
            }
            self.now += 100;
            Ok(())
        }
        fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
            for (i, chunk) in data.chunks(BLOCK).enumerate() {
                self.blocks.insert(blkid + i as u32, chunk.to_vec());
            }
            self.now += 300;
            Ok(())
        }
        fn flush(&mut self) -> Result<(), String> {
            Ok(())
        }
        fn now_ns(&self) -> u64 {
            self.now
        }
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut db = MicroDb::format(MemDev::default(), 0, 16).unwrap();
        for k in 0..100u64 {
            db.put(k, format!("value-{k}").as_bytes()).unwrap();
        }
        for k in 0..100u64 {
            let v = db.get(k).unwrap().unwrap();
            assert!(v.starts_with(format!("value-{k}").as_bytes()));
        }
        assert!(db.delete(42).unwrap());
        assert!(db.get(42).unwrap().is_none());
        assert!(!db.delete(42).unwrap());
        assert!(db.get(41).unwrap().is_some());
    }

    #[test]
    fn updates_overwrite_in_place() {
        let mut db = MicroDb::format(MemDev::default(), 0, 4).unwrap();
        db.put(7, b"first").unwrap();
        db.put(7, b"second").unwrap();
        let v = db.get(7).unwrap().unwrap();
        assert!(v.starts_with(b"second"));
        // Only one live record exists.
        let count = db.scan(|_, _| {}).unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn scan_visits_all_records() {
        let mut db = MicroDb::format(MemDev::default(), 8, 32).unwrap();
        for k in 0..200u64 {
            db.put(k, &k.to_le_bytes()).unwrap();
        }
        let mut sum = 0u64;
        let count = db.scan(|k, _| sum += k).unwrap();
        assert_eq!(count, 200);
        assert_eq!(sum, (0..200).sum::<u64>());
    }

    #[test]
    fn open_rejects_unformatted_devices_and_reopens_formatted_ones() {
        assert!(matches!(MicroDb::open(MemDev::default(), 0), Err(DbError::NotFormatted)));
        let mut dev = MemDev::default();
        {
            let db = MicroDb::format(&mut dev, 0, 8);
            let mut db = db.unwrap();
            db.put(1, b"x").unwrap();
        }
        let mut db = MicroDb::open(&mut dev, 0).unwrap();
        assert!(db.get(1).unwrap().is_some());
    }

    #[test]
    fn bucket_page_capacity_is_enforced() {
        let mut db = MicroDb::format(MemDev::default(), 0, 1).unwrap();
        let mut inserted = 0;
        let mut hit_full = false;
        for k in 0..200u64 {
            match db.put(k, b"v") {
                Ok(()) => inserted += 1,
                Err(DbError::PageFull) => {
                    hit_full = true;
                    break;
                }
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(hit_full);
        assert_eq!(inserted, SLOTS_PER_PAGE);
    }

    #[test]
    fn io_counters_track_page_accesses() {
        let mut db = MicroDb::format(MemDev::default(), 0, 4).unwrap();
        db.put(1, b"a").unwrap();
        db.get(1).unwrap();
        let (r, w) = db.io_counts();
        assert_eq!(r, 2, "one page read for put, one for get");
        assert_eq!(w, 1);
    }
}
