//! Block-device abstraction and the three execution paths of §8.3.1.

use std::collections::HashMap;

use dlt_core::{replay_mmc, replay_usb, Replayer};
use dlt_dev_mmc::MmcSubsystem;
use dlt_dev_usb::UsbSubsystem;
use dlt_gold_drivers::kenv::{BusIo, HwIo, IoFlags, Rw};
use dlt_gold_drivers::mmc::MmcHost;
use dlt_gold_drivers::usb::{UsbHcd, UsbStorageDriver};
use dlt_hw::{DmaRegion, Platform};
use dlt_recorder::campaign::{record_mmc_driverlet, record_usb_driverlet, DEV_KEY};
use dlt_tee::{SecureIo, TeeKernel};

/// Block size in bytes.
pub const BLOCK: usize = 512;
/// Block granularities the record campaigns cover (Table 3).
pub const GRANULARITIES: [u32; 5] = [256, 128, 32, 8, 1];

/// Which storage device a workload runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageKind {
    /// The MMC / SD card path.
    Mmc,
    /// The USB mass-storage path.
    Usb,
}

/// Which execution path serves the IO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoragePath {
    /// Full gold driver, asynchronous write-back behaviour ("native").
    Native,
    /// Full gold driver with O_SYNC semantics ("native-sync").
    NativeSync,
    /// The in-TEE driverlet replayer ("ours").
    Driverlet,
}

/// A block device a workload can talk to.
pub trait BlockDev {
    /// Read `blkcnt` blocks starting at `blkid`.
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String>;
    /// Write whole blocks starting at `blkid`.
    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String>;
    /// Flush any deferred writes.
    fn flush(&mut self) -> Result<(), String>;
    /// Current virtual time (for IOPS/latency measurement).
    fn now_ns(&self) -> u64;
    /// Device operations per recorded granularity (Table 9 breakdown); only
    /// meaningful for the driverlet path.
    fn invocation_breakdown(&self) -> HashMap<u32, u64> {
        HashMap::new()
    }
}

// ---------------------------------------------------------------------------
// Native paths
// ---------------------------------------------------------------------------

enum NativeInner {
    Mmc(MmcHost<BusIo>),
    Usb(UsbStorageDriver<BusIo>),
}

/// Page-cache capacity of the modelled kernel in blocks (44 pages of 4 KiB).
/// Clean extents are evicted LRU-first once the cache fills. The driverlet
/// path never sees this cache: replayed IO always reaches the device, which
/// is one of the paper's driverlet overheads on read-heavy workloads
/// (§8.3.2).
pub const PAGE_CACHE_BLOCKS: usize = 352;

/// One cached extent: `blkid..blkid + data.len()/BLOCK`, clean or dirty.
struct CacheEntry {
    blkid: u32,
    data: Vec<u8>,
    dirty: bool,
}

impl CacheEntry {
    fn blocks(&self) -> u32 {
        (self.data.len() / BLOCK) as u32
    }
    fn end(&self) -> u32 {
        self.blkid + self.blocks()
    }
    fn covers(&self, blkid: u32, blkcnt: u32) -> bool {
        self.blkid <= blkid && blkid + blkcnt <= self.end()
    }
    fn overlaps(&self, blkid: u32, blkcnt: u32) -> bool {
        blkid < self.end() && self.blkid < blkid + blkcnt
    }
}

/// The native / native-sync path: the gold driver behind a (modelled) kernel
/// block layer.
///
/// The asynchronous path models the kernel's page cache (clean extents in
/// LRU order plus dirty write-back extents) and write-behind: device time
/// spent draining queued background writes overlaps with subsequent
/// CPU-side kernel work. The sync path is the durability baseline — O_SYNC
/// semantics with direct IO, so every request pays the full device round
/// trip and nothing is cached.
pub struct NativeDev {
    platform: Platform,
    inner: NativeInner,
    sync: bool,
    /// Kernel per-request cost and per-page scheduling cost, cached off the
    /// platform cost model at construction (they sit on every request).
    kernel_ns: u64,
    sched_page_ns: u64,
    /// Unified page cache in LRU order (least recently used first).
    cache: Vec<CacheEntry>,
    max_dirty_extents: usize,
    /// Queued background-write device time the CPU may still overlap with.
    overlap_credit_ns: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl NativeDev {
    /// Build a native MMC or USB stack on a fresh platform.
    pub fn new(kind: StorageKind, path: StoragePath) -> Self {
        assert!(path != StoragePath::Driverlet, "use DriverletDev for the driverlet path");
        let platform = Platform::new();
        let io =
            BusIo::normal_world(platform.bus.clone(), DmaRegion::new(0x0200_0000, 0x0100_0000));
        let inner = match kind {
            StorageKind::Mmc => {
                MmcSubsystem::attach(&platform).expect("attach mmc");
                let mut host = MmcHost::new(io);
                host.probe().expect("probe mmc");
                NativeInner::Mmc(host)
            }
            StorageKind::Usb => {
                UsbSubsystem::attach(&platform).expect("attach usb");
                let mut drv = UsbStorageDriver::new(UsbHcd::new(io));
                drv.init().expect("init usb");
                NativeInner::Usb(drv)
            }
        };
        let cost = platform.cost();
        let sched_page_ns = match kind {
            StorageKind::Mmc => cost.native_sched_per_page_ns,
            // The USB stack runs transfer scheduling for every data page
            // (§8.3.3 explains the large-write gap with this cost).
            StorageKind::Usb => cost.usb_sched_per_page_ns,
        };
        NativeDev {
            platform,
            inner,
            sync: path == StoragePath::NativeSync,
            kernel_ns: cost.kernel_block_layer_ns,
            sched_page_ns,
            cache: Vec::new(),
            max_dirty_extents: 16,
            overlap_credit_ns: 0,
            cache_hits: 0,
            cache_misses: 0,
        }
    }

    /// (page-cache hits, misses) observed on the read path.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache_hits, self.cache_misses)
    }

    fn delay_ns(&mut self, ns: u64) {
        let us = ns.div_ceil(1000);
        match &mut self.inner {
            NativeInner::Mmc(h) => h.io_mut().delay_us(us),
            NativeInner::Usb(d) => d.hcd_mut().io_mut().delay_us(us),
        }
    }

    fn charge_kernel_path(&mut self, blkcnt: u32) {
        // Kernel block layer + filesystem + per-page scheduling, which the
        // driverlet path does not pay (§8.3.2). On the asynchronous path
        // this CPU work overlaps with device time spent draining queued
        // background writes (write-behind), so it consumes overlap credit
        // before advancing the clock.
        let pages = u64::from(blkcnt.div_ceil(8));
        let mut ns = self.kernel_ns + self.sched_page_ns * pages;
        if !self.sync {
            let overlapped = ns.min(self.overlap_credit_ns);
            self.overlap_credit_ns -= overlapped;
            ns -= overlapped;
        }
        self.delay_ns(ns);
    }

    /// Drop or demote every cached extent overlapping the range: dirty
    /// overlaps are written out first (they hold newer data than the
    /// device), clean overlaps are simply discarded.
    fn drop_overlapping(&mut self, blkid: u32, blkcnt: u32) -> Result<(), String> {
        if self.cache.iter().any(|e| e.dirty && e.overlaps(blkid, blkcnt)) {
            self.writeback(false)?;
        }
        self.cache.retain(|e| !e.overlaps(blkid, blkcnt));
        Ok(())
    }

    /// Insert a clean extent at the most-recently-used end and evict clean
    /// LRU extents beyond the page-cache capacity.
    fn insert_clean(&mut self, blkid: u32, data: Vec<u8>) {
        self.cache.push(CacheEntry { blkid, data, dirty: false });
        self.enforce_capacity();
    }

    fn enforce_capacity(&mut self) {
        let mut total: usize = self.cache.iter().map(|e| e.blocks() as usize).sum();
        let mut i = 0;
        while total > PAGE_CACHE_BLOCKS && i < self.cache.len() {
            if self.cache[i].dirty {
                i += 1;
                continue;
            }
            total -= self.cache[i].blocks() as usize;
            self.cache.remove(i);
        }
    }

    /// Write out every dirty extent (largest-run chunking as the block
    /// layer would), leaving the data cached clean. Background writebacks
    /// (`background = true`) bank the device time as overlap credit —
    /// write-behind lets the CPU keep working while the device drains;
    /// explicit flushes model fsync, which the caller waits out.
    fn writeback(&mut self, background: bool) -> Result<(), String> {
        let t0 = self.platform.now_ns();
        let mut dirty: Vec<(u32, Vec<u8>)> = Vec::new();
        for e in &mut self.cache {
            if e.dirty {
                dirty.push((e.blkid, e.data.clone()));
                e.dirty = false;
            }
        }
        for (blkid, data) in dirty {
            // Split big merged extents into device-sized chunks.
            let mut off = 0usize;
            let mut id = blkid;
            while off < data.len() {
                let blocks = (((data.len() - off) / BLOCK) as u32).min(256);
                self.device_write(id, &data[off..off + blocks as usize * BLOCK])?;
                off += blocks as usize * BLOCK;
                id += blocks;
            }
        }
        // A background writeback leaves the device draining this batch: the
        // CPU work that follows may hide behind it, up to the drain time
        // itself. Any older credit has lapsed — this writeback waited on
        // the device serially, closing the previous overlap window. An
        // explicit flush is an fsync: the caller waits for the full drain,
        // so no overlap remains at all.
        self.overlap_credit_ns =
            if background && !self.sync { self.platform.now_ns() - t0 } else { 0 };
        self.enforce_capacity();
        Ok(())
    }

    fn device_write(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        let blkcnt = (data.len() / BLOCK) as u32;
        let mut copy = data.to_vec();
        match &mut self.inner {
            NativeInner::Mmc(h) => h
                .do_io(Rw::Write, blkcnt, blkid, IoFlags::none(), &mut copy)
                .map_err(|e| e.to_string()),
            NativeInner::Usb(d) => d
                .do_io(Rw::Write, blkcnt, blkid, IoFlags::none(), &mut copy)
                .map_err(|e| e.to_string()),
        }
    }

    fn device_read(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        match &mut self.inner {
            NativeInner::Mmc(h) => {
                h.do_io(Rw::Read, blkcnt, blkid, IoFlags::none(), buf).map_err(|e| e.to_string())
            }
            NativeInner::Usb(d) => {
                d.do_io(Rw::Read, blkcnt, blkid, IoFlags::none(), buf).map_err(|e| e.to_string())
            }
        }
    }
}

impl BlockDev for NativeDev {
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        self.charge_kernel_path(blkcnt);
        if self.sync {
            // Direct IO: no page cache on the durability baseline.
            return self.device_read(blkid, blkcnt, buf);
        }
        // Serve fully-covering extents (clean or dirty) from the page
        // cache; extents never overlap, so a covering extent is unique.
        if let Some(i) = (0..self.cache.len()).rev().find(|i| self.cache[*i].covers(blkid, blkcnt))
        {
            let e = &self.cache[i];
            let off = (blkid - e.blkid) as usize * BLOCK;
            buf[..blkcnt as usize * BLOCK]
                .copy_from_slice(&e.data[off..off + blkcnt as usize * BLOCK]);
            // LRU touch: move the hit extent to the most-recently-used end.
            let e = self.cache.remove(i);
            self.cache.push(e);
            self.cache_hits += 1;
            return Ok(());
        }
        self.cache_misses += 1;
        // Partial overlaps: push newer dirty data out and drop stale clean
        // copies before going to the device.
        self.drop_overlapping(blkid, blkcnt)?;
        self.device_read(blkid, blkcnt, buf)?;
        self.insert_clean(blkid, buf[..blkcnt as usize * BLOCK].to_vec());
        Ok(())
    }

    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        let blkcnt = (data.len() / BLOCK) as u32;
        self.charge_kernel_path(blkcnt);
        if self.sync {
            return self.device_write(blkid, data);
        }
        // Invariant: cached extents never overlap one another, so lookups
        // and writeback order are independent of the LRU order. An update
        // fully inside one dirty extent is applied in place; any other
        // overlap is resolved by writing the dirty data out and dropping
        // the stale (then clean) copies before the new extent lands.
        if let Some(e) = self.cache.iter_mut().find(|e| e.dirty && e.covers(blkid, blkcnt)) {
            let off = (blkid - e.blkid) as usize * BLOCK;
            e.data[off..off + data.len()].copy_from_slice(data);
        } else {
            if self.cache.iter().any(|e| e.dirty && e.overlaps(blkid, blkcnt)) {
                self.writeback(true)?;
            }
            self.cache.retain(|e| !e.overlaps(blkid, blkcnt));
            // Extend an end-adjacent dirty extent (sequential writes merge
            // into one device transaction chain); the overlap purge above
            // guarantees the extension cannot collide with another extent.
            if let Some(e) = self.cache.iter_mut().find(|e| e.dirty && e.end() == blkid) {
                e.data.extend_from_slice(data);
            } else {
                self.cache.push(CacheEntry { blkid, data: data.to_vec(), dirty: true });
            }
        }
        if self.cache.iter().filter(|e| e.dirty).count() > self.max_dirty_extents {
            self.writeback(true)?;
        }
        self.enforce_capacity();
        Ok(())
    }

    fn flush(&mut self) -> Result<(), String> {
        self.writeback(false)
    }

    fn now_ns(&self) -> u64 {
        self.platform.now_ns()
    }
}

// ---------------------------------------------------------------------------
// Driverlet path
// ---------------------------------------------------------------------------

/// The driverlet path: a TEE-resident replayer serving block IO by composing
/// template invocations of the recorded granularities.
pub struct DriverletDev {
    platform: Platform,
    /// Typed handle kept for fault injection in tests.
    pub mmc: Option<dlt_hw::Shared<dlt_dev_mmc::SdHost>>,
    /// Typed handle for the USB stick.
    pub usb: Option<dlt_hw::Shared<dlt_dev_usb::UsbHostController>>,
    replayer: Replayer,
    kind: StorageKind,
    breakdown: HashMap<u32, u64>,
}

impl DriverletDev {
    /// Record the driverlet for `kind` and set up a TEE-owned device plus a
    /// replayer on a fresh platform.
    pub fn new(kind: StorageKind) -> Self {
        let platform = Platform::new();
        let (mmc, usb, driverlet, secure) = match kind {
            StorageKind::Mmc => {
                let sys = MmcSubsystem::attach(&platform).expect("attach mmc");
                (
                    Some(sys.sdhost),
                    None,
                    record_mmc_driverlet().expect("record mmc"),
                    vec!["sdhost", "dma"],
                )
            }
            StorageKind::Usb => {
                let sys = UsbSubsystem::attach(&platform).expect("attach usb");
                (
                    None,
                    Some(sys.hostctrl),
                    record_usb_driverlet().expect("record usb"),
                    vec!["dwc2"],
                )
            }
        };
        TeeKernel::install(&platform, &secure).expect("install tee");
        let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
        replayer.load_driverlet(driverlet, DEV_KEY).expect("load driverlet");
        DriverletDev { platform, mmc, usb, replayer, kind, breakdown: HashMap::new() }
    }

    /// Access the replayer (stats, additional driverlets).
    pub fn replayer_mut(&mut self) -> &mut Replayer {
        &mut self.replayer
    }

    /// Decompose an arbitrary request into recorded granularities (the
    /// driverlet "must access the data in ways specified by the recorded
    /// paths", §3.3).
    pub fn decompose(mut blkcnt: u32) -> Vec<u32> {
        let mut parts = Vec::new();
        while blkcnt > 0 {
            let g = GRANULARITIES.iter().copied().find(|g| *g <= blkcnt).unwrap_or(1);
            parts.push(g);
            blkcnt -= g;
        }
        parts
    }

    fn one(&mut self, rw: u64, blkcnt: u32, blkid: u32, buf: &mut [u8]) -> Result<(), String> {
        *self.breakdown.entry(blkcnt).or_insert(0) += 1;
        let r = match self.kind {
            StorageKind::Mmc => replay_mmc(&mut self.replayer, rw, blkcnt, blkid, 0, buf),
            StorageKind::Usb => replay_usb(&mut self.replayer, rw, blkcnt, blkid, 0, buf),
        };
        r.map(|_| ()).map_err(|e| e.to_string())
    }
}

impl BlockDev for DriverletDev {
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        let mut done = 0u32;
        for part in Self::decompose(blkcnt) {
            let start = done as usize * BLOCK;
            let end = (done + part) as usize * BLOCK;
            self.one(0x1, part, blkid + done, &mut buf[start..end])?;
            done += part;
        }
        Ok(())
    }

    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        let blkcnt = (data.len() / BLOCK) as u32;
        let mut done = 0u32;
        let mut scratch = data.to_vec();
        for part in Self::decompose(blkcnt) {
            let start = done as usize * BLOCK;
            let end = (done + part) as usize * BLOCK;
            self.one(0x10, part, blkid + done, &mut scratch[start..end])?;
            done += part;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), String> {
        // Driverlet IO is always synchronous (§8.3.2): nothing to flush.
        Ok(())
    }

    fn now_ns(&self) -> u64 {
        self.platform.now_ns()
    }

    fn invocation_breakdown(&self) -> HashMap<u32, u64> {
        self.breakdown.clone()
    }
}

impl BlockDev for Box<dyn BlockDev> {
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), String> {
        (**self).read_blocks(blkid, blkcnt, buf)
    }
    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), String> {
        (**self).write_blocks(blkid, data)
    }
    fn flush(&mut self) -> Result<(), String> {
        (**self).flush()
    }
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
    fn invocation_breakdown(&self) -> HashMap<u32, u64> {
        (**self).invocation_breakdown()
    }
}

/// Build a block device for the given kind and path.
pub fn make_storage(kind: StorageKind, path: StoragePath) -> Box<dyn BlockDev> {
    match path {
        StoragePath::Driverlet => Box::new(DriverletDev::new(kind)),
        _ => Box::new(NativeDev::new(kind, path)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_prefers_large_recorded_granularities() {
        assert_eq!(DriverletDev::decompose(256), vec![256]);
        assert_eq!(DriverletDev::decompose(40), vec![32, 8]);
        assert_eq!(DriverletDev::decompose(3), vec![1, 1, 1]);
        assert_eq!(DriverletDev::decompose(300), vec![256, 32, 8, 1, 1, 1, 1]);
        assert_eq!(DriverletDev::decompose(300).iter().sum::<u32>(), 300);
    }

    #[test]
    fn native_mmc_round_trip_and_sync_is_slower() {
        let mut native = NativeDev::new(StorageKind::Mmc, StoragePath::Native);
        let data = vec![7u8; 8 * BLOCK];
        let t0 = native.now_ns();
        native.write_blocks(0, &data).unwrap();
        let native_write = native.now_ns() - t0;
        let mut out = vec![0u8; 8 * BLOCK];
        native.read_blocks(0, 8, &mut out).unwrap();
        assert_eq!(out, data);

        let mut sync = NativeDev::new(StorageKind::Mmc, StoragePath::NativeSync);
        let t0 = sync.now_ns();
        sync.write_blocks(0, &data).unwrap();
        let sync_write = sync.now_ns() - t0;
        assert!(sync_write > native_write * 2, "sync {sync_write} vs native {native_write}");
    }

    #[test]
    fn overlapping_writes_with_interleaved_read_hits_stay_coherent() {
        // Regression: overlapping dirty extents plus an LRU-touching read
        // must not let a stale extent shadow newer data (in cache or on the
        // device after writeback).
        let mut dev = NativeDev::new(StorageKind::Mmc, StoragePath::Native);
        let a = vec![0xaau8; 4 * BLOCK];
        let b = vec![0xbbu8; 4 * BLOCK];
        dev.write_blocks(0, &a).unwrap(); // dirty [0..4)
        dev.write_blocks(2, &b).unwrap(); // overlaps: [2..6) supersedes
                                          // LRU-touch whatever covers block 0.
        let mut one = vec![0u8; BLOCK];
        dev.read_blocks(0, 1, &mut one).unwrap();
        assert_eq!(one, vec![0xaau8; BLOCK]);
        // Block 2 must be B's data, from cache...
        dev.read_blocks(2, 1, &mut one).unwrap();
        assert_eq!(one, vec![0xbbu8; BLOCK], "newest write must win in cache");
        // ...and from the device after an fsync plus cache-busting traffic.
        dev.flush().unwrap();
        let mut filler = vec![0u8; 8 * BLOCK];
        for i in 0..PAGE_CACHE_BLOCKS as u32 / 8 + 2 {
            dev.read_blocks(10_000 + i * 8, 8, &mut filler).unwrap();
        }
        let mut back = vec![0u8; 4 * BLOCK];
        dev.read_blocks(2, 4, &mut back).unwrap();
        assert_eq!(back, b, "newest write must win on the device");
    }

    #[test]
    fn native_usb_round_trip() {
        let mut dev = NativeDev::new(StorageKind::Usb, StoragePath::NativeSync);
        let data: Vec<u8> = (0..8 * BLOCK).map(|i| (i % 200) as u8).collect();
        dev.write_blocks(100, &data).unwrap();
        let mut out = vec![0u8; 8 * BLOCK];
        dev.read_blocks(100, 8, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn driverlet_mmc_round_trip_with_breakdown() {
        let mut dev = DriverletDev::new(StorageKind::Mmc);
        let data: Vec<u8> = (0..40 * BLOCK).map(|i| (i % 251) as u8).collect();
        dev.write_blocks(64, &data).unwrap();
        let mut out = vec![0u8; 40 * BLOCK];
        dev.read_blocks(64, 40, &mut out).unwrap();
        assert_eq!(out, data);
        let bd = dev.invocation_breakdown();
        assert_eq!(bd.get(&32), Some(&2), "one 32-block read and one 32-block write");
        assert_eq!(bd.get(&8), Some(&2));
    }
}
