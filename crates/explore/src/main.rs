//! `dlt-explore` — run the concolic divergence campaign and gate on it.
//!
//! Usage: `dlt-explore [--quick]`
//!
//! Records the three gold-driver bundles, synthesises a violating input for
//! every enumerated `ConsOp`, drives each one through the compiled replayer
//! and the serve layer, prints the coverage ledger, persists it as
//! `BENCH_explore.json` (honouring `BENCH_EXPLORE_OUT`), and exits nonzero
//! unless every falsifiable constraint was flipped and confirmed rejected
//! with a typed error — zero panics, zero hangs, every lane healthy.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = dlt_explore::run_explore(quick);
    print!("{}", dlt_explore::describe(&report));
    match dlt_explore::persist(&report) {
        Ok(path) => println!("ledger written to {path}"),
        Err(e) => eprintln!("could not persist ledger: {e}"),
    }
    if let Err(problems) = report.gate() {
        eprintln!("divergence-robustness gate FAILED:\n{problems}");
        std::process::exit(1);
    }
    println!(
        "divergence-robustness gate passed: every falsifiable constraint flipped and rejected typed."
    );
}
