//! # dlt-dev-vchiq — VC4 multimedia accelerator with VCHIQ message queue
//!
//! Substrate for the paper's camera driverlet case study (§7.3). The VC4
//! accelerator owns the CSI camera; the ARM cores talk to it almost entirely
//! through a shared-memory message queue (VCHIQ) plus three registers: a
//! mailbox register that publishes the queue's base address and a pair of
//! doorbells (§7.3.3). The MMAL camera service rides on top of VCHIQ.
//!
//! Model inventory:
//!
//! * [`queue`] — the slot-based shared-memory queue layout (slot 0 metadata,
//!   a CPU→VC4 slot area and a VC4→CPU slot area) used by both the device
//!   model and the gold driver.
//! * [`msg`] — MMAL-style message encoding: component create, port format
//!   (resolution), port enable, buffer-from-host (capture request) and
//!   buffer-to-host (capture completion), plus the camera resolutions and
//!   their frame sizes.
//! * [`vc4::Vc4Vchiq`] — the accelerator device model: parses messages on the
//!   CPU→VC4 doorbell, produces synthetic JPEG frames into the host-supplied
//!   page list after a per-resolution exposure+ISP latency, replies on the
//!   VC4→CPU slot area and raises the VCHIQ interrupt.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod msg;
pub mod queue;
pub mod vc4;

pub use msg::{CameraResolution, MmalMessage, MsgType};
pub use vc4::Vc4Vchiq;

/// Physical base address of the VCHIQ doorbell/mailbox register window.
pub const VCHIQ_BASE: u64 = 0x3f00_b800;
/// Size of the register window.
pub const VCHIQ_LEN: u64 = 0x100;

/// Register offsets inside the window (the paper's three registers).
pub mod regs {
    /// Mailbox write: the CPU publishes the queue base address here
    /// (`MBOX_WRITE = queue & !0x3fff`, Table 6).
    pub const MBOX_WRITE: u64 = 0x00;
    /// Doorbell 0: VC4 -> CPU notification (read to see, write 1 to ack).
    pub const BELL0: u64 = 0x40;
    /// Doorbell 2: CPU -> VC4 notification (write 1 to ring).
    pub const BELL2: u64 = 0x48;
    /// Firmware version (read-only, not used by templates).
    pub const VERSION: u64 = 0x50;

    /// Register names for the Table 7 analysis.
    pub const VCHIQ_REGISTERS: &[(u64, &str)] = &[
        (MBOX_WRITE, "MBOX_WRITE"),
        (BELL0, "BELL0"),
        (BELL2, "BELL2"),
        (VERSION, "VCHIQ_VERSION"),
    ];
}

use dlt_hw::{shared, Platform, Shared};

/// The VC4/VCHIQ subsystem wired onto a platform.
pub struct VchiqSubsystem {
    /// Typed handle to the accelerator.
    pub vc4: Shared<Vc4Vchiq>,
}

impl VchiqSubsystem {
    /// Build the accelerator and attach it to the platform's bus.
    pub fn attach(platform: &Platform) -> dlt_hw::HwResult<Self> {
        let vc4 =
            shared(Vc4Vchiq::new(platform.mem.clone(), platform.irqs.clone(), platform.cost()));
        platform.bus.lock().attach(dlt_hw::device::SharedDevice::boxed(vc4.clone()))?;
        Ok(VchiqSubsystem { vc4 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsystem_attaches() {
        let p = Platform::new();
        let _sys = VchiqSubsystem::attach(&p).unwrap();
        assert!(p.bus.lock().device_names().contains(&"vchiq"));
    }

    #[test]
    fn register_window_has_the_three_paper_registers() {
        assert_eq!(regs::VCHIQ_REGISTERS.len(), 4);
        assert!(regs::VCHIQ_REGISTERS.iter().any(|(_, n)| *n == "MBOX_WRITE"));
        assert!(regs::VCHIQ_REGISTERS.iter().any(|(_, n)| *n == "BELL0"));
        assert!(regs::VCHIQ_REGISTERS.iter().any(|(_, n)| *n == "BELL2"));
    }
}
