//! Trace interposition on the kernel-environment interface.

use std::collections::HashMap;

use dlt_gold_drivers::kenv::{DriverError, HwIo};
use dlt_hw::DmaRegion;

/// One logged interaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceOp {
    /// Register read and the value observed.
    ReadReg {
        /// Absolute register address.
        addr: u64,
        /// Observed value.
        value: u32,
    },
    /// Register write.
    WriteReg {
        /// Absolute register address.
        addr: u64,
        /// Written value.
        value: u32,
    },
    /// A `readl_poll`-style standard polling loop.
    PollReg {
        /// Polled register.
        addr: u64,
        /// Mask applied to the value.
        mask: u32,
        /// Value the masked register must reach.
        expect: u32,
        /// Delay between iterations (microseconds).
        delay_us: u64,
        /// Iterations executed in this run.
        iterations: u64,
    },
    /// Interrupt wait.
    WaitIrq {
        /// Interrupt line.
        line: u32,
        /// Timeout used by the driver.
        timeout_us: u64,
    },
    /// Shared-memory (DMA region) word read.
    ShmRead {
        /// Allocation index (in `dma_alloc` order).
        alloc: usize,
        /// Offset within the allocation.
        offset: u64,
        /// Observed value.
        value: u32,
    },
    /// Shared-memory word write.
    ShmWrite {
        /// Allocation index.
        alloc: usize,
        /// Offset within the allocation.
        offset: u64,
        /// Written value.
        value: u32,
    },
    /// DMA allocation.
    DmaAlloc {
        /// Requested length.
        len: usize,
        /// Base address returned in this run.
        base: u64,
    },
    /// Random bytes obtained from the environment.
    GetRand {
        /// Number of bytes.
        len: usize,
    },
    /// Timestamp obtained from the environment.
    GetTs {
        /// Value observed.
        value: u64,
    },
    /// Busy delay.
    Delay {
        /// Microseconds.
        us: u64,
    },
    /// Payload copied from the caller's buffer into DMA memory.
    CopyToDma {
        /// Destination allocation.
        alloc: usize,
        /// Destination offset.
        offset: u64,
        /// The copied bytes.
        data: Vec<u8>,
    },
    /// Payload copied from DMA memory into the caller's buffer.
    CopyFromDma {
        /// Source allocation.
        alloc: usize,
        /// Source offset.
        offset: u64,
        /// The copied bytes.
        data: Vec<u8>,
    },
}

impl TraceOp {
    /// A small integer identifying the operation kind, used for alignment.
    pub fn kind_id(&self) -> u8 {
        match self {
            TraceOp::ReadReg { .. } => 0,
            TraceOp::WriteReg { .. } => 1,
            TraceOp::PollReg { .. } => 2,
            TraceOp::WaitIrq { .. } => 3,
            TraceOp::ShmRead { .. } => 4,
            TraceOp::ShmWrite { .. } => 5,
            TraceOp::DmaAlloc { .. } => 6,
            TraceOp::GetRand { .. } => 7,
            TraceOp::GetTs { .. } => 8,
            TraceOp::Delay { .. } => 9,
            TraceOp::CopyToDma { .. } => 10,
            TraceOp::CopyFromDma { .. } => 11,
        }
    }

    /// The interface identity of the op (register address / alloc+offset),
    /// used for alignment: two runs are on the same path only if each
    /// position touches the same interface.
    pub fn iface_id(&self) -> (u8, u64, u64) {
        match self {
            TraceOp::ReadReg { addr, .. }
            | TraceOp::WriteReg { addr, .. }
            | TraceOp::PollReg { addr, .. } => (self.kind_id(), *addr, 0),
            TraceOp::WaitIrq { line, .. } => (self.kind_id(), u64::from(*line), 0),
            TraceOp::ShmRead { alloc, offset, .. }
            | TraceOp::ShmWrite { alloc, offset, .. }
            | TraceOp::CopyToDma { alloc, offset, .. }
            | TraceOp::CopyFromDma { alloc, offset, .. } => {
                (self.kind_id(), *alloc as u64, *offset)
            }
            TraceOp::DmaAlloc { .. }
            | TraceOp::GetRand { .. }
            | TraceOp::GetTs { .. }
            | TraceOp::Delay { .. } => (self.kind_id(), 0, 0),
        }
    }
}

/// A complete record run's interaction log.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Logged operations in order.
    pub ops: Vec<TraceOp>,
    /// DMA allocations made during the run, in order.
    pub allocs: Vec<DmaRegion>,
}

impl Trace {
    /// Whether two traces have the same shape (same kinds and interfaces at
    /// every position) — i.e. the runs followed the same state-transition
    /// path.
    pub fn same_shape(&self, other: &Trace) -> bool {
        self.ops.len() == other.ops.len()
            && self.ops.iter().zip(other.ops.iter()).all(|(a, b)| a.iface_id() == b.iface_id())
    }
}

/// The tracing wrapper around any [`HwIo`] implementation.
pub struct TracingIo<I: HwIo> {
    inner: I,
    enabled: bool,
    trace: Trace,
    reg_names: HashMap<u64, String>,
    /// Tag used as the "source file" of recording sites.
    pub driver_tag: String,
}

impl<I: HwIo> TracingIo<I> {
    /// Wrap `inner`. `reg_names` maps absolute register addresses to their
    /// architected names (used when emitting templates); `driver_tag` names
    /// the gold driver for recording-site reports.
    pub fn new(inner: I, reg_names: HashMap<u64, String>, driver_tag: &str) -> Self {
        TracingIo {
            inner,
            enabled: false,
            trace: Trace::default(),
            reg_names,
            driver_tag: driver_tag.to_string(),
        }
    }

    /// Enable or disable logging (probe/initialisation phases run untraced).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Extract the trace, consuming the wrapper.
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Register-name lookup table.
    pub fn reg_names(&self) -> &HashMap<u64, String> {
        &self.reg_names
    }

    /// The trace logged so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    fn alloc_index(&self, region: &DmaRegion) -> usize {
        self.trace.allocs.iter().position(|r| r.base == region.base).unwrap_or(usize::MAX)
    }

    fn log(&mut self, op: TraceOp) {
        if self.enabled {
            self.trace.ops.push(op);
        }
    }
}

impl<I: HwIo> HwIo for TracingIo<I> {
    fn readl(&mut self, addr: u64) -> u32 {
        let value = self.inner.readl(addr);
        self.log(TraceOp::ReadReg { addr, value });
        value
    }

    fn writel(&mut self, addr: u64, val: u32) {
        self.inner.writel(addr, val);
        self.log(TraceOp::WriteReg { addr, value: val });
    }

    fn readl_poll(
        &mut self,
        addr: u64,
        mask: u32,
        expect: u32,
        delay_us: u64,
        timeout_us: u64,
    ) -> Result<u32, DriverError> {
        // Count iterations ourselves so the meta event records how much
        // nondeterministic spinning this run needed.
        let mut iterations = 0u64;
        let mut waited = 0u64;
        let result = loop {
            let v = self.inner.readl(addr);
            iterations += 1;
            if v & mask == expect {
                break Ok(v);
            }
            if waited >= timeout_us {
                break Err(DriverError::Timeout(format!("poll of {addr:#x}")));
            }
            self.inner.delay_us(delay_us.max(1));
            waited += delay_us.max(1);
        };
        self.log(TraceOp::PollReg { addr, mask, expect, delay_us, iterations });
        result
    }

    fn wait_for_irq(&mut self, line: u32, timeout_us: u64) -> Result<(), DriverError> {
        let r = self.inner.wait_for_irq(line, timeout_us);
        if r.is_ok() {
            self.log(TraceOp::WaitIrq { line, timeout_us });
        }
        r
    }

    fn shm_read32(&mut self, region: DmaRegion, offset: u64) -> u32 {
        let value = self.inner.shm_read32(region, offset);
        let alloc = self.alloc_index(&region);
        self.log(TraceOp::ShmRead { alloc, offset, value });
        value
    }

    fn shm_write32(&mut self, region: DmaRegion, offset: u64, val: u32) {
        self.inner.shm_write32(region, offset, val);
        let alloc = self.alloc_index(&region);
        self.log(TraceOp::ShmWrite { alloc, offset, value: val });
    }

    fn dma_alloc(&mut self, len: usize) -> Result<DmaRegion, DriverError> {
        let region = self.inner.dma_alloc(len)?;
        if self.enabled {
            self.trace.allocs.push(region);
            self.trace.ops.push(TraceOp::DmaAlloc { len, base: region.base });
        }
        Ok(region)
    }

    fn dma_release_all(&mut self) {
        self.inner.dma_release_all();
    }

    fn get_rand_bytes(&mut self, len: usize) -> Vec<u8> {
        let v = self.inner.get_rand_bytes(len);
        self.log(TraceOp::GetRand { len });
        v
    }

    fn get_ts(&mut self) -> u64 {
        let v = self.inner.get_ts();
        self.log(TraceOp::GetTs { value: v });
        v
    }

    fn delay_us(&mut self, us: u64) {
        self.inner.delay_us(us);
        self.log(TraceOp::Delay { us });
    }

    fn copy_to_dma(&mut self, region: DmaRegion, offset: u64, data: &[u8]) {
        self.inner.copy_to_dma(region, offset, data);
        let alloc = self.alloc_index(&region);
        self.log(TraceOp::CopyToDma { alloc, offset, data: data.to_vec() });
    }

    fn copy_from_dma(&mut self, region: DmaRegion, offset: u64, out: &mut [u8]) {
        self.inner.copy_from_dma(region, offset, out);
        let alloc = self.alloc_index(&region);
        self.log(TraceOp::CopyFromDma { alloc, offset, data: out.to_vec() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_gold_drivers::kenv::BusIo;
    use dlt_hw::Platform;

    fn traced_io() -> TracingIo<BusIo> {
        let p = Platform::new();
        let io = BusIo::normal_world(p.bus.clone(), DmaRegion::new(0x100_0000, 0x10_0000));
        TracingIo::new(io, HashMap::new(), "test-driver.c")
    }

    #[test]
    fn disabled_tracer_logs_nothing() {
        let mut t = traced_io();
        t.writel(0x3f20_2000, 1);
        let _ = t.readl(0x3f20_2000);
        assert!(t.trace().ops.is_empty());
    }

    #[test]
    fn enabled_tracer_logs_everything_in_order() {
        let mut t = traced_io();
        t.set_enabled(true);
        let r = t.dma_alloc(256).unwrap();
        t.shm_write32(r, 8, 0xaa55);
        let _ = t.shm_read32(r, 8);
        t.copy_to_dma(r, 16, &[1, 2, 3, 4]);
        let mut out = [0u8; 4];
        t.copy_from_dma(r, 16, &mut out);
        t.delay_us(5);
        let _ = t.get_rand_bytes(4);
        let _ = t.get_ts();
        let trace = t.into_trace();
        assert_eq!(trace.allocs.len(), 1);
        let kinds: Vec<u8> = trace.ops.iter().map(|o| o.kind_id()).collect();
        assert_eq!(kinds, vec![6, 5, 4, 10, 11, 9, 7, 8]);
        match &trace.ops[1] {
            TraceOp::ShmWrite { alloc, offset, value } => {
                assert_eq!(*alloc, 0);
                assert_eq!(*offset, 8);
                assert_eq!(*value, 0xaa55);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &trace.ops[4] {
            TraceOp::CopyFromDma { data, .. } => assert_eq!(data, &vec![1, 2, 3, 4]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn poll_records_iteration_counts() {
        let mut t = traced_io();
        t.set_enabled(true);
        // Unmapped register reads 0xffffffff; poll for that value succeeds on
        // the first iteration.
        let v = t.readl_poll(0x3fff_0000, 0xffff_ffff, 0xffff_ffff, 10, 100).unwrap();
        assert_eq!(v, 0xffff_ffff);
        match &t.trace().ops[0] {
            TraceOp::PollReg { iterations, .. } => assert_eq!(*iterations, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shape_comparison_detects_divergence() {
        let mut a = traced_io();
        a.set_enabled(true);
        a.writel(0x3f20_2000, 1);
        a.writel(0x3f20_2004, 2);
        let ta = a.into_trace();

        let mut b = traced_io();
        b.set_enabled(true);
        b.writel(0x3f20_2000, 9);
        b.writel(0x3f20_2004, 9);
        let tb = b.into_trace();
        assert!(ta.same_shape(&tb), "same interfaces, different values: same path");

        let mut c = traced_io();
        c.set_enabled(true);
        c.writel(0x3f20_2000, 1);
        c.writel(0x3f20_2050, 2);
        let tc = c.into_trace();
        assert!(!ta.same_shape(&tc), "different register: different path");

        let mut d = traced_io();
        d.set_enabled(true);
        d.writel(0x3f20_2000, 1);
        let td = d.into_trace();
        assert!(!ta.same_shape(&td), "different length: different path");
    }
}
