//! Replay-engine throughput: compiled replay program vs tree-walking
//! interpreter on the fig7 micro path, persisted to `BENCH_replay.json`.
//!
//! Run with:
//!
//! ```text
//! cargo bench -p dlt-bench --bench replay_throughput            # full
//! cargo bench -p dlt-bench --bench replay_throughput -- --quick # CI smoke
//! ```
//!
//! The artifact path defaults to `BENCH_replay.json` in the working
//! directory and can be overridden with the `BENCH_REPLAY_OUT` environment
//! variable.

use dlt_bench::replay_bench::{describe, emit_report, run_replay_bench, summary_line};
use dlt_recorder::campaign::{
    record_camera_driverlet, record_camera_driverlet_subset, record_mmc_driverlet,
    record_mmc_driverlet_subset, record_usb_driverlet, record_usb_driverlet_subset,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("QUICK").is_some();
    let (granularity, invocations) = if quick { (8, 300) } else { (8, 2_000) };

    println!("== replay_throughput: compiled vs interpreted engine ==");
    println!("recording driverlet bundles for the size report...");
    let (mmc, usb, cam) = if quick {
        (
            record_mmc_driverlet_subset(&[1]).expect("record mmc"),
            record_usb_driverlet_subset(&[1]).expect("record usb"),
            record_camera_driverlet_subset(&[1]).expect("record camera"),
        )
    } else {
        (
            record_mmc_driverlet().expect("record mmc"),
            record_usb_driverlet().expect("record usb"),
            record_camera_driverlet().expect("record camera"),
        )
    };
    println!("measuring {invocations} invocations per engine (MMC read, {granularity} blocks)...");
    let report = run_replay_bench(
        granularity,
        invocations,
        &[("MMC", &mmc), ("USB", &usb), ("VCHIQ", &cam)],
    );
    print!("{}", describe(&report));
    println!("{}", summary_line(&report));

    let out = std::env::var("BENCH_REPLAY_OUT").unwrap_or_else(|_| "BENCH_replay.json".into());
    emit_report(&report, &out).expect("write BENCH_replay.json");
    println!("wrote {out}");
}
