//! The device-model trait implemented by every simulated IO device.
//!
//! The paper's system model (§3.1) assumes a device is a reactive FSM driven
//! purely through its register/shared-memory/interrupt interface, whose state
//! transitions are independent of the IO data content. The [`MmioDevice`]
//! trait captures exactly that interface; the MMC, USB and VC4/VCHIQ
//! simulators in `dlt-dev-*` implement it.

/// A memory-mapped device on the simulated SoC.
///
/// All methods take the current virtual time so device models can schedule
/// completion interrupts and expire internal timers without holding a clock
/// handle (which keeps lock ordering trivial in the single-threaded
/// simulation).
pub trait MmioDevice: Send {
    /// Stable device name, e.g. `"sdhost"`, `"dwc2"`, `"vchiq"`.
    fn name(&self) -> &'static str;

    /// Physical base address of the register window.
    fn mmio_base(&self) -> u64;

    /// Length in bytes of the register window.
    fn mmio_len(&self) -> u64;

    /// Read a 32-bit register at `offset` from the window base.
    fn read32(&mut self, offset: u64, now_ns: u64) -> u32;

    /// Write a 32-bit register at `offset` from the window base.
    fn write32(&mut self, offset: u64, val: u32, now_ns: u64);

    /// Let the device make forward progress up to `now_ns` (complete DMA,
    /// assert interrupts whose deadlines passed, etc.).
    fn tick(&mut self, now_ns: u64);

    /// Soft reset: return to the clean post-initialisation state, as if the
    /// device had just finished its boot-time bring-up. This is the recovery
    /// primitive the replayer uses between templates and on divergence (§5).
    fn soft_reset(&mut self, now_ns: u64);

    /// The interrupt line this device asserts, if any.
    fn irq_line(&self) -> Option<u32>;

    /// Human-readable names of interesting registers (offset -> name), used
    /// for template debugging output and the Table 7 effort analysis.
    fn register_map(&self) -> Vec<(u64, &'static str)> {
        Vec::new()
    }

    /// Whether the device believes it is idle (no in-flight work). Used by
    /// tests and by the divergence analysis to detect residual state.
    fn is_idle(&self) -> bool {
        true
    }

    /// The next virtual time at which this device will make progress on its
    /// own (an internal completion deadline such as media latency), if one
    /// is known. The bus uses it to jump idle waits straight to the next
    /// event instead of quantum-stepping, which keeps simulated waits off
    /// the replay hot path. Returning `None` (the default) falls back to
    /// quantum stepping and is always correct.
    fn next_deadline_ns(&self) -> Option<u64> {
        None
    }
}

/// Adapter that exposes a shared, typed device handle as a boxed
/// [`MmioDevice`] for bus attachment.
///
/// Device simulators are usually constructed as `Shared<ConcreteDevice>` so
/// that tests, fault injectors and validation scripts keep a typed handle
/// (e.g. to unplug the SD card mid-transfer, §8.2.1), while the bus owns a
/// `Box<dyn MmioDevice>` routing accesses to the same instance.
pub struct SharedDevice<T: MmioDevice>(pub crate::Shared<T>);

impl<T: MmioDevice> SharedDevice<T> {
    /// Wrap a shared typed handle.
    pub fn new(inner: crate::Shared<T>) -> Self {
        SharedDevice(inner)
    }

    /// Box this adapter for `SystemBus::attach`.
    pub fn boxed(inner: crate::Shared<T>) -> Box<dyn MmioDevice>
    where
        T: 'static,
    {
        Box::new(SharedDevice(inner))
    }
}

impl<T: MmioDevice> MmioDevice for SharedDevice<T> {
    fn name(&self) -> &'static str {
        self.0.lock().name()
    }
    fn mmio_base(&self) -> u64 {
        self.0.lock().mmio_base()
    }
    fn mmio_len(&self) -> u64 {
        self.0.lock().mmio_len()
    }
    fn read32(&mut self, offset: u64, now_ns: u64) -> u32 {
        self.0.lock().read32(offset, now_ns)
    }
    fn write32(&mut self, offset: u64, val: u32, now_ns: u64) {
        self.0.lock().write32(offset, val, now_ns)
    }
    fn tick(&mut self, now_ns: u64) {
        self.0.lock().tick(now_ns)
    }
    fn soft_reset(&mut self, now_ns: u64) {
        self.0.lock().soft_reset(now_ns)
    }
    fn irq_line(&self) -> Option<u32> {
        self.0.lock().irq_line()
    }
    fn register_map(&self) -> Vec<(u64, &'static str)> {
        self.0.lock().register_map()
    }
    fn is_idle(&self) -> bool {
        self.0.lock().is_idle()
    }
    fn next_deadline_ns(&self) -> Option<u64> {
        self.0.lock().next_deadline_ns()
    }
}

/// A tiny sparse register bank helper for device models.
///
/// Most simulated devices keep their architectural registers here and overlay
/// side effects in their `read32`/`write32` implementations.
///
/// Register access sits on the replay hot path (every simulated MMIO access
/// and most device state machines go through it), so the bank is a sorted
/// vector with binary search rather than a tree map — a few dozen registers
/// fit in one or two cache lines — and [`RegBank::reset`] restores in place
/// without reallocating.
#[derive(Debug, Clone, Default)]
pub struct RegBank {
    /// `(offset, value)` sorted by offset.
    regs: Vec<(u64, u32)>,
    /// `(offset, reset value)` sorted by offset; only defined registers.
    reset_values: Vec<(u64, u32)>,
}

fn sorted_set(v: &mut Vec<(u64, u32)>, offset: u64, val: u32) {
    match v.binary_search_by_key(&offset, |e| e.0) {
        Ok(i) => v[i].1 = val,
        Err(i) => v.insert(i, (offset, val)),
    }
}

impl RegBank {
    /// Empty register bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a register with a reset value.
    pub fn define(&mut self, offset: u64, reset_value: u32) {
        sorted_set(&mut self.reset_values, offset, reset_value);
        sorted_set(&mut self.regs, offset, reset_value);
    }

    /// Read a register (undefined registers read as zero, like reserved
    /// addresses on most SoCs).
    pub fn get(&self, offset: u64) -> u32 {
        match self.regs.binary_search_by_key(&offset, |e| e.0) {
            Ok(i) => self.regs[i].1,
            Err(_) => 0,
        }
    }

    /// Write a register.
    pub fn set(&mut self, offset: u64, val: u32) {
        sorted_set(&mut self.regs, offset, val);
    }

    /// Set bits in a register.
    pub fn set_bits(&mut self, offset: u64, bits: u32) {
        let v = self.get(offset) | bits;
        self.set(offset, v);
    }

    /// Clear bits in a register.
    pub fn clear_bits(&mut self, offset: u64, bits: u32) {
        let v = self.get(offset) & !bits;
        self.set(offset, v);
    }

    /// Whether all of `bits` are set.
    pub fn has_bits(&self, offset: u64, bits: u32) -> bool {
        self.get(offset) & bits == bits
    }

    /// Restore every defined register to its reset value and drop the rest.
    /// Reuses the existing allocation (soft resets happen before every
    /// template execution).
    pub fn reset(&mut self) {
        self.regs.clone_from(&self.reset_values);
    }

    /// Number of defined (architected) registers.
    pub fn defined_count(&self) -> usize {
        self.reset_values.len()
    }

    /// Offsets of all registers that have ever been written or defined.
    pub fn offsets(&self) -> Vec<u64> {
        self.regs.iter().map(|e| e.0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regbank_defaults_to_zero() {
        let bank = RegBank::new();
        assert_eq!(bank.get(0x40), 0);
    }

    #[test]
    fn regbank_define_and_reset() {
        let mut bank = RegBank::new();
        bank.define(0x0, 0x1234);
        bank.define(0x4, 0x0);
        bank.set(0x0, 0xdead);
        bank.set(0x100, 0xbeef); // undefined scratch register
        assert_eq!(bank.get(0x0), 0xdead);
        bank.reset();
        assert_eq!(bank.get(0x0), 0x1234);
        assert_eq!(bank.get(0x100), 0, "undefined registers are dropped on reset");
        assert_eq!(bank.defined_count(), 2);
    }

    #[test]
    fn regbank_bit_operations() {
        let mut bank = RegBank::new();
        bank.define(0x8, 0);
        bank.set_bits(0x8, 0b1010);
        assert!(bank.has_bits(0x8, 0b1000));
        assert!(!bank.has_bits(0x8, 0b0100));
        bank.clear_bits(0x8, 0b0010);
        assert_eq!(bank.get(0x8), 0b1000);
    }

    #[test]
    fn regbank_offsets_listing() {
        let mut bank = RegBank::new();
        bank.define(0x0, 0);
        bank.define(0x8, 0);
        bank.set(0x4, 7);
        let offs = bank.offsets();
        assert_eq!(offs, vec![0x0, 0x4, 0x8]);
    }
}
