//! # dlt-obs — the observability plane under the driverlet service
//!
//! The paper's driverlet argument is ultimately a performance argument:
//! world-switch counts, replay dispatch cost and poll delays decide
//! whether a minimum viable driver is viable. This crate is the layer
//! that makes those costs visible on a *live* service instead of only in
//! post-hoc bench JSON. It has two planes:
//!
//! * **Plane 1 — the flight recorder** ([`trace`]): every lane thread
//!   (and the service front-end) writes fixed-size binary
//!   [`trace::TraceEvent`]s into its own lock-free SPSC ring ([`spsc`] —
//!   the same Lamport core the serve layer's shared-memory rings run on),
//!   stamped with **both** the lane's virtual clock and host monotonic
//!   time. A collector drains the rings into a bounded flight buffer and
//!   exports Chrome `trace_event` JSON (lane threads render as timeline
//!   tracks in `chrome://tracing`/Perfetto) plus per-request span
//!   reconstruction (submit → admit → queue → replay → complete, with
//!   per-phase durations). Overflow is a counted drop, never a block and
//!   never a panic: tracing must not perturb the lane it observes.
//! * **Plane 2 — the metrics registry** ([`metrics`]): atomic
//!   counters/gauges plus fixed-bucket log₂ latency histograms — no
//!   allocation, no locks on the hot path — keyed by lane, device,
//!   session and SMC kind, with a JSON-exportable
//!   [`metrics::MetricsSnapshot`] and a Prometheus-style text encoder.
//!
//! Everything sits behind [`ObsConfig`]: `Off` installs no handles at all
//! (instrumentation points are wrapped in [`obs_event!`], which compiles
//! to a single `Option` check), `MetricsOnly` enables the registry, and
//! `Full` adds the flight recorder.

// `deny`, not `forbid`: the lock-free SPSC core in [`spsc`] is the one
// carefully argued exception and scopes its own `#![allow(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod spsc;
pub mod trace;

pub use metrics::{
    HistogramSnapshot, LaneMetrics, LaneSnapshot, MetricsRegistry, MetricsSnapshot,
    RobustnessMetrics, RobustnessSnapshot, SessionSnapshot, SmcMetrics, LANE_STATE_HEALTHY,
    LANE_STATE_PROBATION, LANE_STATE_QUARANTINED,
};
pub use trace::{
    chrome_trace_json, reconstruct_spans, EventKind, Recorder, RequestSpan, SmcKind, TraceEvent,
    TraceHandle,
};

/// How much observability the service threads through its hot paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsConfig {
    /// No recorder, no registry: every instrumentation point is a `None`
    /// check and the metrics plane records nothing.
    #[default]
    Off,
    /// The metrics registry records counters/gauges/histograms; the flight
    /// recorder stays off (no trace handles are installed).
    MetricsOnly,
    /// Metrics plus the flight recorder: every lane thread traces into its
    /// own ring.
    Full,
}

impl ObsConfig {
    /// Whether the metrics registry records.
    pub fn metrics_enabled(self) -> bool {
        !matches!(self, ObsConfig::Off)
    }

    /// Whether trace handles are installed.
    pub fn tracing_enabled(self) -> bool {
        matches!(self, ObsConfig::Full)
    }

    /// Parse the `DLT_OBS` environment override used by CI to rerun the
    /// serve suites under `Full` without code changes: `off`, `metrics`,
    /// `full` (anything else → `None`).
    pub fn from_env_str(s: &str) -> Option<ObsConfig> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(ObsConfig::Off),
            "metrics" | "metricsonly" | "metrics-only" => Some(ObsConfig::MetricsOnly),
            "full" => Some(ObsConfig::Full),
            _ => None,
        }
    }
}

/// Emit one trace event through an `Option<TraceHandle>`-typed slot.
///
/// The macro is the instrumentation point the serve/core/tee hot paths
/// use: when observability is [`ObsConfig::Off`] (or `MetricsOnly`) the
/// slot is `None` and the expansion is a single branch — none of the
/// stamp arguments are evaluated.
///
/// ```
/// use dlt_obs::{obs_event, EventKind, Recorder};
///
/// let recorder = Recorder::new(16, 64);
/// let mut handle = recorder.register("lane-0", 1);
/// obs_event!(handle, EventKind::Dispatched, 1_000, 7, 42, 0);
/// assert_eq!(recorder.drain().len(), 1);
/// ```
#[macro_export]
macro_rules! obs_event {
    ($handle:expr, $kind:expr, $virt_ns:expr, $session:expr, $request:expr, $arg:expr) => {
        if let Some(h) = ($handle).as_mut() {
            h.emit($kind, $virt_ns, $session, $request, $arg);
        }
    };
}

/// [`obs_event!`] with a caller-supplied host stamp ([`trace::TraceHandle::emit_at`]).
///
/// The clock read is the most expensive part of an emit, so sites that
/// record several events back-to-back — or that already computed a
/// same-epoch stamp for the metrics plane — read once and reuse it.
#[macro_export]
macro_rules! obs_event_at {
    ($handle:expr, $host_ns:expr, $kind:expr, $virt_ns:expr, $session:expr, $request:expr, $arg:expr) => {
        if let Some(h) = ($handle).as_mut() {
            h.emit_at($host_ns, $kind, $virt_ns, $session, $request, $arg);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_config_gates_and_env_parse() {
        assert!(!ObsConfig::Off.metrics_enabled() && !ObsConfig::Off.tracing_enabled());
        assert!(
            ObsConfig::MetricsOnly.metrics_enabled() && !ObsConfig::MetricsOnly.tracing_enabled()
        );
        assert!(ObsConfig::Full.metrics_enabled() && ObsConfig::Full.tracing_enabled());
        assert_eq!(ObsConfig::from_env_str("full"), Some(ObsConfig::Full));
        assert_eq!(ObsConfig::from_env_str(" Metrics "), Some(ObsConfig::MetricsOnly));
        assert_eq!(ObsConfig::from_env_str("off"), Some(ObsConfig::Off));
        assert_eq!(ObsConfig::from_env_str("loud"), None);
    }

    #[test]
    fn obs_event_macro_is_a_no_op_on_none() {
        let mut handle: Option<TraceHandle> = None;
        // Must not evaluate into anything that panics or allocates.
        obs_event!(handle, EventKind::Park, 0, 0, 0, 0);
        assert!(handle.is_none());
    }
}
