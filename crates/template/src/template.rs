//! The interaction template: a callable, parameterised recording.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::constraint::Constraint;
use crate::event::{DataDirection, DmaRole, Event, EventKind, Iface, ReadSink, RecordedEvent};
use crate::expr::{EvalEnv, SymExpr};

/// A replay-entry parameter and the constraint the recorder derived for it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Parameter name (e.g. `blkcnt`).
    pub name: String,
    /// Constraint the supplied value must satisfy for this template to be
    /// selectable (the path condition of the recorded run).
    pub constraint: Constraint,
}

/// A DMA allocation the template performs, in event order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaSpec {
    /// Allocation size expression.
    pub len: SymExpr,
    /// Role of the allocation.
    pub role: DmaRole,
}

/// Record-time metadata.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TemplateMeta {
    /// The concrete sample input the template was recorded with.
    pub recorded_with: HashMap<String, u64>,
    /// Free-form notes from the recorder (merged runs, quirks observed, ...).
    pub notes: String,
}

/// Per-kind event counts (the rows of Tables 3 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct EventBreakdown {
    /// Number of input events.
    pub input: usize,
    /// Number of output events.
    pub output: usize,
    /// Number of meta events.
    pub meta: usize,
}

impl EventBreakdown {
    /// Total number of events.
    pub fn total(&self) -> usize {
        self.input + self.output + self.meta
    }
}

/// An interaction template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Template {
    /// Template name, e.g. `mmc_rd_32`.
    pub name: String,
    /// Replay entry this template serves, e.g. `replay_mmc`.
    pub entry: String,
    /// Device the template drives (bus device name, e.g. `sdhost`).
    pub device: String,
    /// Parameters and their selection constraints.
    pub params: Vec<ParamSpec>,
    /// Direction of the IO payload.
    pub direction: DataDirection,
    /// Number of payload bytes the template moves (symbolic, e.g.
    /// `blkcnt * 512`), or `Const(0)`.
    pub data_len: SymExpr,
    /// Interrupt line the template waits on, if any.
    pub irq_line: Option<u32>,
    /// The recorded event sequence.
    pub events: Vec<RecordedEvent>,
    /// Record-time metadata.
    pub meta: TemplateMeta,
}

impl Template {
    /// Whether the supplied arguments satisfy every parameter constraint.
    pub fn matches(&self, args: &HashMap<String, u64>) -> bool {
        let env = EvalEnv::with_params(args.clone());
        self.params.iter().all(|p| match args.get(&p.name) {
            Some(v) => p.constraint.check(*v, &env),
            None => !p.constraint.is_constraining(),
        })
    }

    /// Event breakdown in the paper's input/output/meta taxonomy. Events
    /// inside poll bodies are counted individually in their own categories,
    /// with the poll itself counted as one meta event.
    pub fn breakdown(&self) -> EventBreakdown {
        fn walk(events: &[RecordedEvent], b: &mut EventBreakdown) {
            for re in events {
                match &re.event {
                    Event::Poll { body, .. } => {
                        b.meta += 1;
                        let wrapped: Vec<RecordedEvent> =
                            body.iter().cloned().map(RecordedEvent::bare).collect();
                        walk(&wrapped, b);
                    }
                    e => match e.kind() {
                        EventKind::Input => b.input += 1,
                        EventKind::Output => b.output += 1,
                        EventKind::Meta => b.meta += 1,
                    },
                }
            }
        }
        let mut b = EventBreakdown::default();
        walk(&self.events, &mut b);
        b
    }

    /// The DMA allocations the template performs, in order.
    pub fn dma_plan(&self) -> Vec<DmaSpec> {
        self.events
            .iter()
            .filter_map(|re| match &re.event {
                Event::DmaAlloc { len, role } => Some(DmaSpec { len: len.clone(), role: *role }),
                _ => None,
            })
            .collect()
    }

    /// Number of state-changing events (§3.1).
    pub fn state_changing_count(&self) -> usize {
        self.events.iter().filter(|re| re.event.is_state_changing()).count()
    }

    /// Registers touched by the template (unique absolute addresses).
    pub fn registers_touched(&self) -> Vec<u64> {
        fn collect(events: &[Event], out: &mut Vec<u64>) {
            for e in events {
                match e {
                    Event::Read { iface: Iface::Reg { addr, .. }, .. }
                    | Event::Write { iface: Iface::Reg { addr, .. }, .. }
                    | Event::Poll { iface: Iface::Reg { addr, .. }, .. } => out.push(*addr),
                    Event::Poll { body, .. } => collect(body, out),
                    _ => {}
                }
                if let Event::Poll { body, iface, .. } = e {
                    if matches!(iface, Iface::Reg { .. }) {
                        // already pushed above
                    }
                    collect(body, out);
                }
            }
        }
        let mut out = Vec::new();
        let events: Vec<Event> = self.events.iter().map(|re| re.event.clone()).collect();
        collect(&events, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Static vetting of the template (the paper's §8.2.1 "statically vetting
    /// of templates" validation): every referenced parameter is declared,
    /// every shared-memory access refers to a DMA allocation the template
    /// actually makes, every captured value is produced before it is used.
    pub fn validate(&self) -> Result<(), String> {
        let declared: Vec<&str> = self.params.iter().map(|p| p.name.as_str()).collect();
        let num_allocs = self.dma_plan().len();
        let mut captures: Vec<String> = Vec::new();

        let mut check_expr = |expr: &SymExpr, captures: &Vec<String>| -> Result<(), String> {
            for p in expr.referenced_params() {
                if !declared.contains(&p.as_str()) {
                    return Err(format!("expression references undeclared parameter `{p}`"));
                }
            }
            // Captured and DmaBase references checked structurally below via
            // a conservative re-walk.
            let _ = captures;
            Ok(())
        };

        type ExprCheck<'c> = dyn FnMut(&SymExpr, &Vec<String>) -> Result<(), String> + 'c;
        fn walk_events(
            events: &[Event],
            num_allocs: usize,
            captures: &mut Vec<String>,
            check_expr: &mut ExprCheck<'_>,
        ) -> Result<(), String> {
            for e in events {
                match e {
                    Event::Read { iface, constraint, sink, .. } => {
                        if let Iface::Shm { alloc, .. } = iface {
                            if *alloc >= num_allocs {
                                return Err(format!(
                                    "read references dma[{alloc}] but template only allocates {num_allocs}"
                                ));
                            }
                        }
                        if let Constraint::Eq(expr) | Constraint::Ne(expr) = constraint {
                            check_expr(expr, captures)?;
                        }
                        if let ReadSink::Capture(name) = sink {
                            captures.push(name.clone());
                        }
                    }
                    Event::Write { iface, value } => {
                        if let Iface::Shm { alloc, .. } = iface {
                            if *alloc >= num_allocs {
                                return Err(format!(
                                    "write references dma[{alloc}] but template only allocates {num_allocs}"
                                ));
                            }
                        }
                        check_expr(value, captures)?;
                    }
                    Event::CopyUserToDma { alloc, len, .. }
                    | Event::CopyDmaToUser { alloc, len, .. } => {
                        if *alloc >= num_allocs {
                            return Err(format!(
                                "data copy references dma[{alloc}] but template only allocates {num_allocs}"
                            ));
                        }
                        check_expr(len, captures)?;
                    }
                    Event::DmaAlloc { len, .. } => check_expr(len, captures)?,
                    Event::GetRandBytes { sink, .. } | Event::GetTs { sink, .. } => {
                        if let ReadSink::Capture(name) = sink {
                            captures.push(name.clone());
                        }
                    }
                    Event::Poll { body, cond, .. } => {
                        if let Constraint::Eq(expr) | Constraint::Ne(expr) = cond {
                            check_expr(expr, captures)?;
                        }
                        walk_events(body, num_allocs, captures, check_expr)?;
                    }
                    Event::WaitForIrq { .. } | Event::Delay { .. } => {}
                }
            }
            Ok(())
        }

        let events: Vec<Event> = self.events.iter().map(|re| re.event.clone()).collect();
        walk_events(&events, num_allocs, &mut captures, &mut check_expr)?;

        // Re-walk expressions to check Captured references resolve to a
        // capture that exists *somewhere* in the template (exact ordering is
        // enforced dynamically by the replayer).
        fn exprs_of(e: &Event, out: &mut Vec<SymExpr>) {
            match e {
                Event::Write { value, .. } => out.push(value.clone()),
                Event::Read { constraint: Constraint::Eq(x) | Constraint::Ne(x), .. } => {
                    out.push(x.clone());
                }
                Event::DmaAlloc { len, .. }
                | Event::CopyUserToDma { len, .. }
                | Event::CopyDmaToUser { len, .. } => out.push(len.clone()),
                Event::Poll { body, cond, .. } => {
                    if let Constraint::Eq(x) | Constraint::Ne(x) = cond {
                        out.push(x.clone());
                    }
                    for b in body {
                        exprs_of(b, out);
                    }
                }
                _ => {}
            }
        }
        let mut all_exprs = Vec::new();
        for e in &events {
            exprs_of(e, &mut all_exprs);
        }
        for expr in &all_exprs {
            let mut stack = vec![expr.clone()];
            while let Some(x) = stack.pop() {
                match x {
                    SymExpr::Captured(name) if !captures.contains(&name) => {
                        return Err(format!("expression references unknown capture `{name}`"));
                    }
                    SymExpr::DmaBase(i) if i >= num_allocs => {
                        return Err(format!(
                                "expression references dma[{i}] but template only allocates {num_allocs}"
                            ));
                    }
                    SymExpr::And(a, b)
                    | SymExpr::Or(a, b)
                    | SymExpr::Xor(a, b)
                    | SymExpr::Add(a, b)
                    | SymExpr::Sub(a, b)
                    | SymExpr::Mul(a, b) => {
                        stack.push(*a);
                        stack.push(*b);
                    }
                    SymExpr::Shl(a, _) | SymExpr::Shr(a, _) | SymExpr::Not(a) => stack.push(*a),
                    _ => {}
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SourceSite;

    fn reg(name: &str, addr: u64) -> Iface {
        Iface::Reg { addr, name: name.to_string() }
    }

    /// A miniature but structurally faithful MMC write template.
    fn sample_template() -> Template {
        Template {
            name: "mmc_wr_1".into(),
            entry: "replay_mmc".into(),
            device: "sdhost".into(),
            params: vec![
                ParamSpec { name: "rw".into(), constraint: Constraint::eq_const(1) },
                ParamSpec {
                    name: "blkcnt".into(),
                    constraint: Constraint::InRange { min: 1, max: 8 },
                },
                ParamSpec {
                    name: "blkid".into(),
                    constraint: Constraint::InRange { min: 0, max: 0x1df_77f8 },
                },
            ],
            direction: DataDirection::UserToDevice,
            data_len: SymExpr::Param("blkcnt".into()).shl(9),
            irq_line: Some(56),
            events: vec![
                RecordedEvent::new(
                    Event::DmaAlloc { len: SymExpr::Const(4096), role: DmaRole::DataOut },
                    SourceSite::new("bcm2835-sdhost.c", 500),
                ),
                RecordedEvent::bare(Event::CopyUserToDma {
                    alloc: 0,
                    offset: 0,
                    user_offset: 0,
                    len: SymExpr::Param("blkcnt".into()).shl(9),
                }),
                RecordedEvent::new(
                    Event::Write {
                        iface: reg("SDHBLC", 0x3f20_2050),
                        value: SymExpr::Param("blkcnt".into()),
                    },
                    SourceSite::new("bcm2835-sdhost.c", 610),
                ),
                RecordedEvent::new(
                    Event::Write {
                        iface: reg("SDARG", 0x3f20_2004),
                        value: SymExpr::Param("blkid".into()).masked(!0x7u64),
                    },
                    SourceSite::new("bcm2835-sdhost.c", 612),
                ),
                RecordedEvent::bare(Event::Poll {
                    iface: reg("SDCMD", 0x3f20_2000),
                    body: vec![Event::Delay { us: 10 }],
                    cond: Constraint::MaskClear { mask: 0x8000 },
                    delay_us: 10,
                    max_iters: 1000,
                }),
                RecordedEvent::bare(Event::WaitForIrq { line: 56, timeout_us: 500_000 }),
                RecordedEvent::bare(Event::Read {
                    iface: reg("SDHSTS", 0x3f20_2020),
                    constraint: Constraint::MaskEq { mask: 0x400, expected: 0x400 },
                    len: 4,
                    sink: ReadSink::Discard,
                }),
                RecordedEvent::bare(Event::Write {
                    iface: reg("SDHSTS", 0x3f20_2020),
                    value: SymExpr::Const(0x400),
                }),
            ],
            meta: TemplateMeta {
                recorded_with: [("blkcnt".to_string(), 1u64)].into_iter().collect(),
                notes: String::new(),
            },
        }
    }

    #[test]
    fn matching_respects_constraints() {
        let t = sample_template();
        let mut args: HashMap<String, u64> =
            [("rw", 1u64), ("blkcnt", 4), ("blkid", 42)].map(|(k, v)| (k.to_string(), v)).into();
        assert!(t.matches(&args));
        args.insert("blkcnt".into(), 32);
        assert!(!t.matches(&args), "blkcnt out of this template's path condition");
        args.insert("blkcnt".into(), 4);
        args.insert("rw".into(), 0);
        assert!(!t.matches(&args), "a write template does not match a read request");
    }

    #[test]
    fn breakdown_counts_inputs_outputs_meta() {
        let t = sample_template();
        let b = t.breakdown();
        // Inputs: DmaAlloc, WaitForIrq, Read = 3. Outputs: CopyUserToDma + 4
        // writes... (3 writes) = 4. Meta: Poll + inner Delay = 2.
        assert_eq!(b.input, 3);
        assert_eq!(b.output, 4);
        assert_eq!(b.meta, 2);
        assert_eq!(b.total(), 9);
    }

    #[test]
    fn dma_plan_and_registers() {
        let t = sample_template();
        let plan = t.dma_plan();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].role, DmaRole::DataOut);
        let regs = t.registers_touched();
        assert!(regs.contains(&0x3f20_2050));
        assert!(regs.contains(&0x3f20_2000));
        assert!(t.state_changing_count() >= 6);
    }

    #[test]
    fn validation_accepts_the_sample() {
        assert!(sample_template().validate().is_ok());
    }

    #[test]
    fn validation_rejects_undeclared_parameters() {
        let mut t = sample_template();
        t.events.push(RecordedEvent::bare(Event::Write {
            iface: reg("SDARG", 0x3f20_2004),
            value: SymExpr::Param("ghost".into()),
        }));
        let err = t.validate().unwrap_err();
        assert!(err.contains("ghost"));
    }

    #[test]
    fn validation_rejects_out_of_range_dma_references() {
        let mut t = sample_template();
        t.events.push(RecordedEvent::bare(Event::Write {
            iface: Iface::Shm { alloc: 7, offset: 0 },
            value: SymExpr::Const(1),
        }));
        assert!(t.validate().is_err());
        let mut t = sample_template();
        t.events.push(RecordedEvent::bare(Event::Write {
            iface: reg("SDARG", 4),
            value: SymExpr::DmaBase(9),
        }));
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_rejects_unknown_captures() {
        let mut t = sample_template();
        t.events.push(RecordedEvent::bare(Event::Write {
            iface: reg("SDARG", 4),
            value: SymExpr::Captured("never_captured".into()),
        }));
        let err = t.validate().unwrap_err();
        assert!(err.contains("never_captured"));
    }

    #[test]
    fn serde_round_trip_preserves_everything() {
        let t = sample_template();
        let json = serde_json::to_string_pretty(&t).unwrap();
        let back: Template = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
        assert!(json.contains("SDARG"), "emitted document is human readable");
    }
}
