//! Workspace-local minimal stand-in for the `proptest` crate.
//!
//! Implements the subset the repository's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), `prop_assert!` /
//! `prop_assert_eq!`, integer-range strategies, `any::<T>()` and
//! `proptest::collection::vec`. Generation is a deterministic
//! xorshift64* stream seeded from the test name, so failures reproduce
//! across runs; there is no shrinking — the failing inputs are printed
//! as-is via the assertion message instead.

#![warn(missing_docs)]

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xorshift64* generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name, so each property gets its own stream but the
    /// same stream on every run.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: seed | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                (self.start as u64 + rng.below(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let span = hi.wrapping_sub(lo).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain wrapped around.
                    rng.next_u64() as $t
                } else {
                    (lo + rng.below(span)) as $t
                }
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive bounds on a generated collection's length.
    pub struct SizeRange {
        /// Minimum length.
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module conventionally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Any, Arbitrary, ProptestConfig, Strategy, TestRng};
}

/// Define property-test functions: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]`-able function running its body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property (panics with the rendered message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}
