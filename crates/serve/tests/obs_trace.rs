//! Trace-plane integration: the flight recorder under real (threaded)
//! traffic.
//!
//! * Random two-session traffic on a live lane thread with
//!   [`ObsConfig::Full`] must reconstruct one fully ordered span per
//!   completed request — submit ≤ admit ≤ dispatch ≤ complete in virtual
//!   time — with **zero** events dropped at the default ring size.
//! * The Chrome export must name every registered track and emit one
//!   complete (`"X"`) span per request.
//! * `Off` and `MetricsOnly` keep the recorder dark: no events, no
//!   Chrome trace, and (for `Off`) no metrics snapshot either.

use std::collections::HashSet;

use dlt_obs::trace::{chrome_trace_json, reconstruct_spans, EventKind, SmcKind};
use dlt_obs::ObsConfig;
use dlt_serve::{Device, DriverletService, ExecMode, Payload, Request, ServeConfig, SubmitMode};

fn full_config() -> ServeConfig {
    ServeConfig {
        exec_mode: ExecMode::Threaded,
        obs: ObsConfig::Full,
        block_granularities: vec![1, 8, 32],
        ..ServeConfig::default()
    }
}

/// Deterministic mixed read/write traffic: the xorshift decides extent,
/// direction and which session submits.
fn mixed_traffic(service: &mut DriverletService, sessions: &[u32], n: u32) -> Vec<u64> {
    let mut rng = 0x2545_f491_4f6c_dd1du64;
    let mut ids = Vec::new();
    for i in 0..n {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let session = sessions[(rng % sessions.len() as u64) as usize];
        let blkid = 32 + (rng >> 8) as u32 % 64;
        let req = if rng.is_multiple_of(3) {
            Request::Write { device: Device::Mmc, blkid, data: vec![i as u8; 512] }
        } else {
            Request::Read { device: Device::Mmc, blkid, blkcnt: 1 + (rng >> 16) as u32 % 4 }
        };
        ids.push(service.submit(session, req).expect("submit"));
    }
    ids
}

#[test]
fn threaded_traffic_reconstructs_fully_ordered_spans_with_zero_loss() {
    let mut service = DriverletService::new(&[Device::Mmc], full_config()).expect("build service");
    let a = service.open_session().unwrap();
    let b = service.open_session().unwrap();
    let ids = mixed_traffic(&mut service, &[a, b], 120);
    let done = service.drain_all();
    assert_eq!(done.len(), ids.len());
    for c in &done {
        assert!(matches!(c.result, Ok(Payload::Read(_)) | Ok(Payload::Written { .. })));
    }

    let events = service.trace_events();
    assert_eq!(
        service.recorder().dropped_events(),
        0,
        "the default ring size must absorb this workload without loss"
    );
    let spans = reconstruct_spans(&events);
    let spanned: HashSet<u64> = spans.iter().map(|s| s.request).collect();
    for id in &ids {
        assert!(spanned.contains(id), "request {id} left no span");
    }
    for span in &spans {
        assert!(
            span.is_fully_ordered(),
            "span for request {} lost its stage order: {span:?}",
            span.request
        );
        assert!(!span.diverged, "no faults were injected");
        assert!(span.track >= 1, "dispatch must stamp a lane track, got {}", span.track);
    }

    // Host stamps in the merged log are sorted (the drain contract).
    assert!(events.windows(2).all(|w| w[0].host_ns <= w[1].host_ns));
    // The workload ran through a live lane thread, so the lane parked at
    // least once (at startup) and worker dispatch events exist.
    assert!(events.iter().any(|e| e.kind == EventKind::Dispatched));
}

#[test]
fn ring_mode_traces_doorbells_and_balanced_smc_brackets() {
    let config = ServeConfig { submit_mode: SubmitMode::Ring, ..full_config() };
    let mut service = DriverletService::new(&[Device::Mmc], config).expect("build service");
    let session = service.open_session().unwrap();
    for i in 0..24u32 {
        service
            .submit(session, Request::Read { device: Device::Mmc, blkid: i % 16, blkcnt: 1 })
            .expect("stage");
        if i % 8 == 7 {
            service.ring_doorbell().expect("doorbell");
        }
    }
    let done = service.drain_all();
    assert_eq!(done.len(), 24);
    service.take_completions(session);

    let events = service.trace_events();
    let doorbells = events.iter().filter(|e| e.kind == EventKind::Doorbell).count();
    assert!(doorbells >= 3, "three explicit doorbells rang, traced {doorbells}");
    let enters = events.iter().filter(|e| e.kind == EventKind::SmcEnter).count();
    let exits = events.iter().filter(|e| e.kind == EventKind::SmcExit).count();
    assert_eq!(enters, exits, "every SMC bracket must close");
    assert!(enters > 0);
    for e in events.iter().filter(|e| e.kind == EventKind::SmcEnter) {
        assert!(SmcKind::from_arg(e.arg).is_some(), "SMC event carries an unknown kind {}", e.arg);
    }
    assert!(
        events.iter().any(|e| e.kind == EventKind::SmcEnter && e.arg == SmcKind::Doorbell as u64),
        "the doorbell SMC kind must appear"
    );
}

#[test]
fn chrome_export_names_every_track_and_spans_every_request() {
    let mut service = DriverletService::new(&[Device::Mmc], full_config()).expect("build service");
    let session = service.open_session().unwrap();
    let ids = mixed_traffic(&mut service, &[session], 40);
    service.drain_all();

    // Render from one drain so the events feed both checks.
    let events = service.trace_events();
    let json = chrome_trace_json(&events, &service.recorder().track_names());
    assert!(json.contains("\"front-end\""), "track 0 metadata missing");
    assert!(json.contains("lane-0-mmc"), "lane track metadata missing");
    assert!(json.contains("\"ph\":\"X\""), "no complete spans rendered");
    for id in ids.iter().take(5) {
        assert!(json.contains(&format!("\"request\":{id}")), "request {id} absent");
    }
    // Balanced braces/brackets — the cheap structural validity check the
    // obs unit tests also apply.
    let depth = json.chars().fold(0i64, |d, c| match c {
        '{' | '[' => d + 1,
        '}' | ']' => d - 1,
        _ => d,
    });
    assert_eq!(depth, 0, "unbalanced JSON structure");
}

#[test]
fn off_and_metrics_only_keep_the_recorder_dark() {
    for obs in [ObsConfig::Off, ObsConfig::MetricsOnly] {
        let config = ServeConfig { obs, ..full_config() };
        let mut service = DriverletService::new(&[Device::Mmc], config).expect("build service");
        let session = service.open_session().unwrap();
        mixed_traffic(&mut service, &[session], 20);
        service.drain_all();
        assert!(service.trace_events().is_empty(), "{obs:?} must not record events");
        assert!(service.chrome_trace().is_none(), "{obs:?} must not export a trace");
        match obs {
            ObsConfig::Off => assert!(service.metrics_snapshot().is_none()),
            _ => {
                let snap = service.metrics_snapshot().expect("metrics plane is on");
                assert_eq!(snap.lanes[0].completed, 20);
            }
        }
    }
}
