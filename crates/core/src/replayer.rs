//! The transactional template replayer.

use std::collections::HashMap;

use dlt_hw::DmaRegion;
use dlt_tee::{SecureIo, TeeError};
use dlt_template::{Driverlet, EvalEnv, Event, Iface, ReadSink, SourceSite, Template};

/// Replay errors surfaced to the trustlet.
#[derive(Debug, Clone)]
pub enum ReplayError {
    /// The trustlet's arguments fall outside the recorded input-space
    /// coverage (no template matches).
    OutOfCoverage {
        /// The replay entry invoked.
        entry: String,
    },
    /// The driverlet bundle failed signature verification.
    Signature(String),
    /// A template failed static vetting or hardening checks at load time.
    InvalidTemplate(String),
    /// No driverlet is loaded for the requested entry.
    UnknownEntry(String),
    /// Replay kept diverging despite resets; the report pinpoints the
    /// failing event and its gold-driver recording site.
    Diverged(DivergenceReport),
    /// A TEE service failed (secure memory exhausted, bus fault, ...).
    Tee(String),
    /// Malformed trustlet request (bad buffer size etc.).
    Invalid(String),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::OutOfCoverage { entry } => {
                write!(f, "request to {entry} is outside the recorded input coverage")
            }
            ReplayError::Signature(s) => write!(f, "driverlet signature: {s}"),
            ReplayError::InvalidTemplate(s) => write!(f, "invalid template: {s}"),
            ReplayError::UnknownEntry(e) => write!(f, "no driverlet loaded for entry {e}"),
            ReplayError::Diverged(r) => write!(
                f,
                "replay of {} diverged after {} attempts at event {} ({} @ {}:{}): {}",
                r.template,
                r.attempts,
                r.failure.event_index,
                r.failure.event,
                r.failure.site.file,
                r.failure.site.line,
                r.failure.reason
            ),
            ReplayError::Tee(s) => write!(f, "TEE service failure: {s}"),
            ReplayError::Invalid(s) => write!(f, "invalid request: {s}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TeeError> for ReplayError {
    fn from(e: TeeError) -> Self {
        ReplayError::Tee(e.to_string())
    }
}

/// Description of one divergence occurrence.
#[derive(Debug, Clone)]
pub struct DivergenceEvent {
    /// Index of the failing event within the template.
    pub event_index: usize,
    /// Gold-driver recording site of the failing event.
    pub site: SourceSite,
    /// Rendered event.
    pub event: String,
    /// Observed value (if the failure was a constraint violation).
    pub observed: Option<u64>,
    /// Human-readable reason.
    pub reason: String,
}

/// Report returned when replay fails persistently.
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Template that failed.
    pub template: String,
    /// Number of execution attempts (including re-executions after reset).
    pub attempts: u32,
    /// Number of events that executed successfully in the last attempt.
    pub executed_before_failure: usize,
    /// The failing event of the last attempt.
    pub failure: DivergenceEvent,
}

/// Replayer configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Maximum template executions per invocation (first try + re-executions
    /// after soft reset).
    pub max_attempts: u32,
    /// Whether to verify driverlet signatures at load time (always on in
    /// production; switchable for the ablation benchmarks).
    pub verify_signature: bool,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig { max_attempts: 3, verify_signature: true }
    }
}

/// Cumulative replayer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Trustlet invocations served.
    pub invocations: u64,
    /// Template executions (including retries).
    pub executions: u64,
    /// Device soft resets issued.
    pub resets: u64,
    /// Divergences observed (including recovered ones).
    pub divergences: u64,
    /// Events executed.
    pub events_executed: u64,
    /// Interrupt waits performed (interrupt-context switches).
    pub irq_waits: u64,
    /// Payload bytes moved to/from trustlet buffers.
    pub payload_bytes: u64,
}

/// Outcome of a successful invocation.
#[derive(Debug, Clone, Default)]
pub struct ReplayOutcome {
    /// Payload bytes copied into or out of the trustlet buffer.
    pub payload_bytes: u64,
    /// Values captured from the device during the replay (e.g. the image
    /// size the camera assigned).
    pub captured: HashMap<String, u64>,
    /// Number of events executed.
    pub events: usize,
    /// Whether a divergence was recovered by reset + re-execution.
    pub recovered_divergence: bool,
}

/// The driverlet replayer.
pub struct Replayer {
    io: SecureIo,
    driverlets: HashMap<String, Driverlet>,
    config: ReplayConfig,
    stats: ReplayStats,
}

enum ExecFailure {
    Divergence(DivergenceEvent, usize),
    Tee(TeeError),
}

impl Replayer {
    /// Create a replayer over the TEE's secure services.
    pub fn new(io: SecureIo) -> Self {
        Self::with_config(io, ReplayConfig::default())
    }

    /// Create a replayer with an explicit configuration.
    pub fn with_config(io: SecureIo, config: ReplayConfig) -> Self {
        Replayer { io, driverlets: HashMap::new(), config, stats: ReplayStats::default() }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Direct access to the TEE services (trustlets share them).
    pub fn io_mut(&mut self) -> &mut SecureIo {
        &mut self.io
    }

    /// Entries currently served.
    pub fn entries(&self) -> Vec<String> {
        self.driverlets.keys().cloned().collect()
    }

    /// Load a driverlet bundle: verify the developer signature, statically
    /// vet every template, and harden against templates that reference
    /// registers outside their device's (secure) register window.
    pub fn load_driverlet(&mut self, bundle: Driverlet, key: &[u8]) -> Result<(), ReplayError> {
        if self.config.verify_signature {
            bundle.verify(key).map_err(|e| ReplayError::Signature(e.to_string()))?;
        }
        bundle.validate().map_err(ReplayError::InvalidTemplate)?;
        for t in &bundle.templates {
            let window = self
                .io
                .device_window(&t.device)
                .map_err(|e| ReplayError::InvalidTemplate(format!("{}: {e}", t.name)))?;
            if !self.io.is_device_secure(&t.device) {
                return Err(ReplayError::InvalidTemplate(format!(
                    "{}: device {} is not assigned to the TEE",
                    t.name, t.device
                )));
            }
            for addr in t.registers_touched() {
                if !window.contains(addr, 4) {
                    // The MMC templates legitimately touch the system DMA
                    // engine as a second secure device; accept registers that
                    // fall inside any secure device window.
                    let in_other_secure = self
                        .io
                        .device_window("dma")
                        .map(|w| w.contains(addr, 4) && self.io.is_device_secure("dma"))
                        .unwrap_or(false);
                    if !in_other_secure {
                        return Err(ReplayError::InvalidTemplate(format!(
                            "{}: register {addr:#x} is outside the secure window of {}",
                            t.name, t.device
                        )));
                    }
                }
            }
        }
        self.driverlets.insert(bundle.entry.clone(), bundle);
        Ok(())
    }

    /// Invoke a replay entry with the given arguments and payload buffer.
    pub fn invoke(
        &mut self,
        entry: &str,
        args: &HashMap<String, u64>,
        buf: &mut [u8],
    ) -> Result<ReplayOutcome, ReplayError> {
        self.stats.invocations += 1;
        let bundle = self
            .driverlets
            .get(entry)
            .ok_or_else(|| ReplayError::UnknownEntry(entry.to_string()))?;
        let template = bundle
            .select(args)
            .ok_or_else(|| ReplayError::OutOfCoverage { entry: entry.to_string() })?
            .clone();
        let device = template.device.clone();

        let mut last_failure: Option<(DivergenceEvent, usize)> = None;
        let mut attempts = 0u32;
        while attempts < self.config.max_attempts {
            attempts += 1;
            self.stats.executions += 1;
            // Soft reset before every execution and between retries (§5).
            self.io.soft_reset_device(&device)?;
            self.io.dma_release_all();
            self.stats.resets += 1;
            match self.execute_once(&template, args, buf) {
                Ok(mut outcome) => {
                    outcome.recovered_divergence = last_failure.is_some();
                    self.stats.payload_bytes += outcome.payload_bytes;
                    return Ok(outcome);
                }
                Err(ExecFailure::Divergence(event, executed)) => {
                    self.stats.divergences += 1;
                    last_failure = Some((event, executed));
                }
                Err(ExecFailure::Tee(e)) => return Err(ReplayError::Tee(e.to_string())),
            }
        }
        let (failure, executed) = last_failure.expect("at least one attempt must have run");
        Err(ReplayError::Diverged(DivergenceReport {
            template: template.name.clone(),
            attempts,
            executed_before_failure: executed,
            failure,
        }))
    }

    fn execute_once(
        &mut self,
        template: &Template,
        args: &HashMap<String, u64>,
        buf: &mut [u8],
    ) -> Result<ReplayOutcome, ExecFailure> {
        let dispatch_ns = self.io.replay_dispatch_cost_ns();
        let mut env = EvalEnv::with_params(args.clone());
        let mut allocations: Vec<DmaRegion> = Vec::new();
        let mut payload_bytes = 0u64;

        let diverge = |idx: usize,
                       re: &dlt_template::RecordedEvent,
                       observed: Option<u64>,
                       reason: String| {
            ExecFailure::Divergence(
                DivergenceEvent {
                    event_index: idx,
                    site: re.site.clone(),
                    event: re.event.describe(),
                    observed,
                    reason,
                },
                idx,
            )
        };

        for (idx, re) in template.events.iter().enumerate() {
            self.io.charge_ns(dispatch_ns);
            self.stats.events_executed += 1;
            match &re.event {
                Event::Read { iface, constraint, sink, .. } => {
                    let value =
                        self.read_iface(iface, &allocations).map_err(ExecFailure::Tee)? as u64;
                    if !constraint.check(value, &env) {
                        return Err(diverge(
                            idx,
                            re,
                            Some(value),
                            format!("constraint \"{}\" violated", constraint.describe()),
                        ));
                    }
                    match sink {
                        ReadSink::Discard => {}
                        ReadSink::Capture(name) => {
                            env.captured.insert(name.clone(), value);
                        }
                        ReadSink::UserData { offset } => {
                            let off = *offset as usize;
                            if off + 4 > buf.len() {
                                return Err(diverge(
                                    idx,
                                    re,
                                    Some(value),
                                    "user-data sink outside the trustlet buffer".into(),
                                ));
                            }
                            buf[off..off + 4].copy_from_slice(&(value as u32).to_le_bytes());
                            payload_bytes += 4;
                        }
                    }
                }
                Event::Write { iface, value } => {
                    let v = value.eval(&env).ok_or_else(|| {
                        diverge(
                            idx,
                            re,
                            None,
                            "output expression references an unbound symbol".into(),
                        )
                    })?;
                    self.write_iface(iface, v as u32, &allocations).map_err(ExecFailure::Tee)?;
                }
                Event::DmaAlloc { len, .. } => {
                    let n = len.eval(&env).ok_or_else(|| {
                        diverge(
                            idx,
                            re,
                            None,
                            "allocation size references an unbound symbol".into(),
                        )
                    })? as usize;
                    let region = self.io.dma_alloc(n).map_err(ExecFailure::Tee)?;
                    env.dma_bases.push(region.base);
                    allocations.push(region);
                }
                Event::GetRandBytes { len, .. } => {
                    let _ = self.io.get_rand_bytes(*len as usize);
                }
                Event::GetTs { sink, .. } => {
                    let v = self.io.get_ts_rpc();
                    if let ReadSink::Capture(name) = sink {
                        env.captured.insert(name.clone(), v);
                    }
                }
                Event::WaitForIrq { line, timeout_us } => {
                    self.stats.irq_waits += 1;
                    // Templates wait for every individual interrupt; the gold
                    // driver would have coalesced them (§8.3.2). Charge the
                    // per-IRQ handling overhead the native path avoids.
                    let irq_overhead = self.io.cost_model().irq_wait_overhead_ns;
                    self.io.charge_ns(irq_overhead);
                    if self.io.wait_for_irq(*line, *timeout_us).is_err() {
                        return Err(diverge(
                            idx,
                            re,
                            None,
                            format!("interrupt {line} did not arrive within {timeout_us} us"),
                        ));
                    }
                }
                Event::Delay { us } => self.io.delay_us(*us),
                Event::Poll { iface, cond, delay_us, max_iters, body } => {
                    let mut iters = 0u64;
                    loop {
                        let value =
                            self.read_iface(iface, &allocations).map_err(ExecFailure::Tee)? as u64;
                        if cond.check(value, &env) {
                            break;
                        }
                        iters += 1;
                        if iters > *max_iters {
                            return Err(diverge(
                                idx,
                                re,
                                Some(value),
                                format!(
                                    "poll condition \"{}\" not met after {max_iters} iterations",
                                    cond.describe()
                                ),
                            ));
                        }
                        for inner in body {
                            if let Event::Delay { us } = inner {
                                self.io.delay_us(*us);
                            }
                        }
                        self.io.delay_us((*delay_us).max(1));
                    }
                }
                Event::CopyUserToDma { alloc, offset, user_offset, len } => {
                    let n = len.eval(&env).ok_or_else(|| {
                        diverge(idx, re, None, "copy length references an unbound symbol".into())
                    })? as usize;
                    let uo = *user_offset as usize;
                    if uo + n > buf.len() {
                        return Err(diverge(
                            idx,
                            re,
                            None,
                            "copy source outside the trustlet buffer".into(),
                        ));
                    }
                    let region = *allocations.get(*alloc).ok_or_else(|| {
                        diverge(idx, re, None, format!("dma[{alloc}] not allocated"))
                    })?;
                    self.io
                        .copy_to_dma(region, *offset, &buf[uo..uo + n])
                        .map_err(ExecFailure::Tee)?;
                    payload_bytes += n as u64;
                }
                Event::CopyDmaToUser { alloc, offset, user_offset, len } => {
                    let n = len.eval(&env).ok_or_else(|| {
                        diverge(idx, re, None, "copy length references an unbound symbol".into())
                    })? as usize;
                    let uo = *user_offset as usize;
                    if uo + n > buf.len() {
                        return Err(diverge(
                            idx,
                            re,
                            None,
                            "copy target outside the trustlet buffer".into(),
                        ));
                    }
                    let region = *allocations.get(*alloc).ok_or_else(|| {
                        diverge(idx, re, None, format!("dma[{alloc}] not allocated"))
                    })?;
                    let mut tmp = vec![0u8; n];
                    self.io.copy_from_dma(region, *offset, &mut tmp).map_err(ExecFailure::Tee)?;
                    buf[uo..uo + n].copy_from_slice(&tmp);
                    payload_bytes += n as u64;
                }
            }
        }

        Ok(ReplayOutcome {
            payload_bytes,
            captured: env.captured,
            events: template.events.len(),
            recovered_divergence: false,
        })
    }

    fn read_iface(&mut self, iface: &Iface, allocations: &[DmaRegion]) -> Result<u32, TeeError> {
        match iface {
            Iface::Reg { addr, .. } => self.io.readl(*addr),
            Iface::Shm { alloc, offset } => {
                let region = allocations
                    .get(*alloc)
                    .copied()
                    .ok_or_else(|| TeeError::Hw(format!("dma[{alloc}] not allocated")))?;
                self.io.shm_read32(region, *offset)
            }
            Iface::Env(_) => Err(TeeError::Hw("environment interfaces are not readable".into())),
        }
    }

    fn write_iface(
        &mut self,
        iface: &Iface,
        value: u32,
        allocations: &[DmaRegion],
    ) -> Result<(), TeeError> {
        match iface {
            Iface::Reg { addr, .. } => self.io.writel(*addr, value),
            Iface::Shm { alloc, offset } => {
                let region = allocations
                    .get(*alloc)
                    .copied()
                    .ok_or_else(|| TeeError::Hw(format!("dma[{alloc}] not allocated")))?;
                self.io.shm_write32(region, *offset, value)
            }
            Iface::Env(_) => Err(TeeError::Hw("environment interfaces are not writable".into())),
        }
    }
}

/// Render a constraint violation in the human-readable style the paper's
/// failure reports use.
pub fn describe_divergence(report: &DivergenceReport) -> String {
    format!(
        "template {} aborted after {} attempts; {} events replayed; failing event #{} {} recorded at {}:{} ({})",
        report.template,
        report.attempts,
        report.executed_before_failure,
        report.failure.event_index,
        report.failure.event,
        report.failure.site.file,
        report.failure.site.line,
        report.failure.reason,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_template::{
        Constraint, DataDirection, ParamSpec, RecordedEvent, SymExpr, TemplateMeta,
    };

    /// Constraint helpers for the synthetic template used below.
    fn synthetic_driverlet() -> Driverlet {
        // A template against a nonexistent device: only used for load-time
        // hardening tests (it must be rejected because the device is absent).
        let t = Template {
            name: "ghost".into(),
            entry: "replay_ghost".into(),
            device: "ghost-dev".into(),
            params: vec![ParamSpec { name: "x".into(), constraint: Constraint::Any }],
            direction: DataDirection::None,
            data_len: SymExpr::Const(0),
            irq_line: None,
            events: vec![RecordedEvent::bare(Event::Write {
                iface: Iface::Reg { addr: 0x3f99_0000, name: "GHOST".into() },
                value: SymExpr::Const(1),
            })],
            meta: TemplateMeta::default(),
        };
        let mut d = Driverlet::new("ghost-dev", "replay_ghost", vec![t]);
        d.sign(b"k");
        d
    }

    #[test]
    fn unknown_devices_and_bad_signatures_are_rejected_at_load() {
        let platform = dlt_hw::Platform::new();
        let tee = dlt_tee::TeeKernel::install(&platform, &[]).unwrap();
        let io = SecureIo::new(platform.bus.clone());
        drop(tee);
        let mut r = Replayer::new(io);
        let d = synthetic_driverlet();
        assert!(matches!(r.load_driverlet(d.clone(), b"wrong"), Err(ReplayError::Signature(_))));
        assert!(
            matches!(r.load_driverlet(d, b"k"), Err(ReplayError::InvalidTemplate(_))),
            "a template for an unknown device must not load"
        );
        assert!(r.entries().is_empty());
    }

    #[test]
    fn invoking_an_unknown_entry_fails_cleanly() {
        let platform = dlt_hw::Platform::new();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        let mut buf = [0u8; 4];
        let err = r.invoke("replay_nothing", &HashMap::new(), &mut buf).unwrap_err();
        assert!(matches!(err, ReplayError::UnknownEntry(_)));
        assert_eq!(r.stats().invocations, 1);
    }
}
