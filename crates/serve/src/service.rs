//! The multi-tenant driverlet service.
//!
//! One [`DriverletService`] owns a **control-plane platform** (the
//! normal-world CPU plus the [`dlt_tee::TeeKernel`] that admits sessions
//! and charges SMCs) and **one TEE core per served secure device**: each
//! device lane is a full simulated platform — its device, interrupt
//! controller and its *own virtual clock* — with a compiled-program
//! [`Replayer`] executing against that lane clock. Clients open sessions,
//! submit requests (one SMC each, like an OP-TEE command invocation), and
//! collect completions after draining.
//!
//! # The multi-core time model
//!
//! All clocks start at epoch zero. The control clock is the normal-world
//! CPU: it advances on SMCs (open/submit/close), on
//! [`DriverletService::client_think_ns`], and — the causal merge rule —
//! when a client **observes** completions via
//! [`DriverletService::take_completions`], which fast-forwards it to the
//! latest lane-local completion time taken. Submits are stamped with
//! control time, so arrival stamps are globally monotone (one serialised
//! normal-world CPU) yet never dragged forward by lane work nobody has
//! waited on: block tenants keep overlapping a camera burst they did not
//! submit. A lane may only execute requests that have *arrived* on its own
//! timeline (an idle core fast-forwards to the arrival, booking idle time;
//! a busy core batches whatever arrived while it worked), and every
//! completion carries its lane-local `completed_ns`, which is
//! `>= submitted_ns` by construction. [`DriverletService::now_ns`] — the
//! pointwise max across every clock — is the joined service timeline that
//! elapsed-time (makespan) measurements read. Device time therefore
//! overlaps across lanes: a multi-second camera burst on the VCHIQ core no
//! longer inflates MMC completion latency.
//!
//! # Lane execution modes
//!
//! The per-lane TEE core is driven by a `LaneWorker` (`lane.rs`), and
//! [`ExecMode`] selects who runs it:
//!
//! * [`ExecMode::Sequential`] (default) keeps every worker inline and
//!   steps it from a single-threaded event-loop:
//!   [`DriverletService::drain`] picks the lane with the smallest
//!   next-event time (its anticipatory-hold deadline, or the instant it
//!   can start its earliest arrived request), executes **one batch**
//!   there, and returns that batch's completions. Fully deterministic —
//!   the differential and property tests pin this mode's behaviour.
//! * [`ExecMode::Threaded`] moves each worker onto its own OS thread (the
//!   paper's one-TEE-core-per-device model made physical), connected to
//!   the front-end only by lock-free SPSC rings ([`crate::spsc`]) and a
//!   control mailbox. Admission is bounded by a per-lane atomic
//!   reservation taken front-end side, so `QueueFull` keeps one coherent
//!   depth snapshot even against a concurrently draining lane thread.
//!   Virtual-time semantics are unchanged (each lane still executes its
//!   own timeline and the causal merge rule still joins them); what
//!   threading adds is **wall-clock** overlap of the real replay work —
//!   and what it costs is batch determinism: a lane thread may dispatch
//!   the moment a request is admitted rather than waiting for traffic the
//!   sequential loop would have seen first, so batching (not payloads,
//!   not per-session order) can differ. `drain`, `drain_all` and
//!   `drain_device` all run to quiescence in this mode: unpark the lane
//!   threads, then sleep on a progress condvar until every selected
//!   lane's in-flight count and completion backlog are zero.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use dlt_core::{
    ConstraintFlipper, FaultPlan, FlipOutcome, ReplayConfig, ReplayError, ReplayMode, Replayer,
    SecureBlockIo,
};
use dlt_dev_mmc::MmcSubsystem;
use dlt_dev_usb::UsbSubsystem;
use dlt_dev_vchiq::VchiqSubsystem;
use dlt_hw::{ClockCell, Platform};
use dlt_obs::metrics::{MetricsRegistry, MetricsSnapshot, SessionMetrics};
use dlt_obs::trace::{EventKind, Recorder, TraceEvent, TraceHandle};
use dlt_obs::{obs_event, obs_event_at, ObsConfig};
use dlt_recorder::campaign::{
    record_camera_driverlet_subset, record_mmc_driverlet_subset, record_usb_driverlet_subset,
    DEV_KEY,
};
use dlt_tee::{secure_core, SecureIo, TeeError, TeeKernel, Trustlet};

use crate::coalesce::Dispatch;
use crate::lane::{
    CtrlMsg, CtrlReply, CtrlReq, LaneConfig, LaneShared, LaneWorker, Quiesce, SharedStats,
};
use crate::ring::{CompletionRing, SqEntry, SubmissionRing};
use crate::route::{LaneId, LaneLoad, RouteConfig, RoutePart, RouteReject, Router};
use crate::sched::{Admission, Lane, Pending, Policy, QosConfig, SessionQos};
use crate::spsc::{self, SpscConsumer, SpscProducer};
use crate::{
    Completion, Device, FailoverAttempt, LaneHealth, LaneState, Payload, Request, RequestId,
    ServeError, SessionId, BLOCK, MAX_REQUEST_BLOCKS,
};

/// How requests cross from the normal world into the TEE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubmitMode {
    /// One SMC per operation: every [`DriverletService::submit`] is a GP
    /// command invocation (world switch + invoke marshalling), and every
    /// completion reap is another SMC — the OP-TEE baseline.
    #[default]
    PerCall,
    /// Shared-memory rings: submits stage entries in a per-lane
    /// [`SubmissionRing`] without entering the TEE; one
    /// [`DriverletService::ring_doorbell`] SMC admits the whole staged
    /// batch, and [`DriverletService::take_completions`] reaps the
    /// per-session [`CompletionRing`] SMC-free (a world switch is charged
    /// only on the doorbell, on an empty-CQ blocking wait, and on a CQ
    /// overflow flush).
    Ring,
}

/// Who drives each lane's TEE core (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Deterministic single-threaded event loop: lane workers stay inline
    /// and execute only inside `drain*` calls on the caller's thread.
    #[default]
    Sequential,
    /// One OS thread per device lane, running concurrently with the
    /// caller; the front-end communicates through lock-free SPSC rings.
    Threaded,
}

/// Replica-failover knobs ([`ServeConfig::failover`]): what the service
/// does when a **clean** read (replica-independent bytes — no routed
/// write ever dirtied its chunks) comes back from a lane as a replay
/// divergence. Instead of delivering the divergence, the front-end
/// re-admits the *same* [`RequestId`] on the least-loaded healthy
/// sibling, charging an exponential backoff to the request's virtual
/// arrival stamp, until the retry budget runs out — at which point the
/// client gets the typed [`ServeError::Exhausted`] attempt trail.
/// Writes and dirty reads never fail over (the sibling's bytes would
/// silently diverge); they deliver their error as before.
#[derive(Debug, Clone, Copy)]
pub struct FailoverConfig {
    /// Master switch. Off (the default) delivers every divergence to the
    /// submitting session exactly as before.
    pub enabled: bool,
    /// Failed executions allowed beyond the first: a request diverges at
    /// most `retry_budget + 1` times before [`ServeError::Exhausted`].
    pub retry_budget: u32,
    /// Backoff charged to the retry's virtual arrival stamp: attempt `n`
    /// (1-based) arrives at the divergence's completion stamp plus
    /// `backoff_base_ns << (n - 1)`.
    pub backoff_base_ns: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig { enabled: false, retry_budget: 2, backoff_base_ns: 50_000 }
    }
}

/// Lane-supervision knobs ([`ServeConfig::supervise`]): the watchdog that
/// trips a persistently diverging lane into [`LaneState::Quarantined`],
/// drains its queued work back through the router, soft-resets the lane
/// (clears any installed response mutator, re-probes health), and walks
/// it back to [`LaneState::Healthy`] through a clean-completion
/// probation window. Lane state is published as the `dlt_lane_state`
/// gauge, and a quarantined lane sheds routed clean reads while still
/// executing writes and dirty reads (placement correctness first).
#[derive(Debug, Clone, Copy)]
pub struct SuperviseConfig {
    /// Master switch. Off (the default): no outcome windows are kept and
    /// no lane ever leaves [`LaneState::Healthy`].
    pub enabled: bool,
    /// Divergences within [`SuperviseConfig::window`] recent completions
    /// that trip quarantine.
    pub divergence_threshold: u32,
    /// Size of the sliding completion window the threshold is evaluated
    /// over.
    pub window: u32,
    /// Clean completions a probation lane must serve (without a single
    /// divergence) before it is restored to [`LaneState::Healthy`].
    pub probation_ok: u32,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig { enabled: false, divergence_threshold: 3, window: 16, probation_ok: 8 }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Maximum concurrent sessions admitted.
    pub max_sessions: usize,
    /// Per-device submission-queue capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Submission path: per-operation SMCs or shared-memory rings.
    pub submit_mode: SubmitMode,
    /// Lane execution: inline deterministic event loop, or one OS thread
    /// per lane.
    pub exec_mode: ExecMode,
    /// Slots in each per-lane submission ring ([`SubmitMode::Ring`]): how
    /// many requests a client can stage between doorbells before the ring
    /// pushes back with [`ServeError::QueueFull`].
    pub sq_depth: usize,
    /// Reapable slots in each per-session completion ring. Posts beyond
    /// this spill to the never-drop overflow list; flushing it costs the
    /// ring-mode reader one world switch.
    pub cq_depth: usize,
    /// Scheduling policy for every device lane.
    pub policy: Policy,
    /// Whether to coalesce adjacent/overlapping requests.
    pub coalesce: bool,
    /// Largest batch drained per scheduling round.
    pub coalesce_window: usize,
    /// Anticipatory-coalescing latency budget: how long an idle lane holds
    /// its queue open (plugs) after a request arrives, hoping to merge the
    /// requests that follow. When the bet loses — nothing else arrives in
    /// the window — the request pays the full budget as added latency;
    /// that bounded lost-bet cost is inherent to anticipation and is what
    /// this knob caps (single-op closed-loop clients may prefer 0).
    /// 0 disables holding; holding is also disabled when
    /// [`ServeConfig::coalesce`] is off and on the camera lane.
    pub hold_budget_ns: u64,
    /// Block granularities to record for MMC/USB (Table 3's campaign).
    pub block_granularities: Vec<u32>,
    /// Camera burst lengths to record.
    pub camera_bursts: Vec<u32>,
    /// Replay engine the per-device replayers run.
    pub mode: ReplayMode,
    /// Shard routing across replica lanes: placement policy plus the
    /// spill switch (see [`crate::route`]). With a single lane per device
    /// the router is an identity and this knob is inert.
    pub route: RouteConfig,
    /// Admission QoS: per-tenant token-bucket rate limits plus weighted
    /// max-min in-flight shares, enforced **before** a request reserves
    /// queue depth (see [`crate::sched::Admission`]). Disabled by
    /// default; per-session overrides via
    /// [`DriverletService::set_session_qos`].
    pub qos: QosConfig,
    /// Replica failover for diverging clean reads (see
    /// [`FailoverConfig`]). Disabled by default; inert on single-replica
    /// fleets.
    pub failover: FailoverConfig,
    /// Lane supervision: the divergence watchdog, quarantine and
    /// probation cycle (see [`SuperviseConfig`]). Disabled by default.
    pub supervise: SuperviseConfig,
    /// Observability plane: `Off` (production fast path), `MetricsOnly`
    /// (atomic counters and histograms), or `Full` (metrics plus the
    /// per-thread flight recorder). Defaults from the `DLT_OBS`
    /// environment variable (`off` / `metrics` / `full`) so CI can rerun
    /// an unmodified suite under full observability.
    pub obs: ObsConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_sessions: 64,
            queue_capacity: 128,
            submit_mode: SubmitMode::PerCall,
            exec_mode: ExecMode::Sequential,
            sq_depth: 64,
            cq_depth: 256,
            policy: Policy::Fifo,
            coalesce: true,
            coalesce_window: 32,
            hold_budget_ns: 100_000,
            block_granularities: vec![1, 8, 32, 128, 256],
            camera_bursts: vec![1],
            mode: ReplayMode::Compiled,
            route: RouteConfig::default(),
            qos: QosConfig::default(),
            failover: FailoverConfig::default(),
            supervise: SuperviseConfig::default(),
            obs: std::env::var("DLT_OBS")
                .ok()
                .and_then(|s| ObsConfig::from_env_str(&s))
                .unwrap_or_default(),
        }
    }
}

impl ServeConfig {
    /// A reduced configuration recording only small block granularities —
    /// fast to set up, used by tests.
    pub fn quick() -> Self {
        ServeConfig { block_granularities: vec![1, 8, 32], ..ServeConfig::default() }
    }
}

/// Cumulative service statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Requests accepted into a queue.
    pub submitted: u64,
    /// Completions produced (success or error).
    pub completed: u64,
    /// Submits rejected with queue-full backpressure.
    pub rejected: u64,
    /// Replay invocations issued to devices.
    pub replays: u64,
    /// Requests served by a merged or batched replay.
    pub coalesced_requests: u64,
    /// Blocks moved by block replays.
    pub blocks_moved: u64,
    /// Dispatches that anticipated: the lane held its queue open past the
    /// ready instant (plug engaged).
    pub holds: u64,
    /// Holds released before the budget expired (direction change,
    /// queue-full, or a competing session's unmergeable request).
    pub early_unplugs: u64,
    /// Doorbell SMCs rung on the ring submit path.
    pub doorbells: u64,
    /// Submission-ring entries admitted across all doorbells.
    pub doorbell_entries: u64,
    /// Completions that spilled to a session's CQ overflow list.
    pub cq_overflows: u64,
    /// Submits that went through the replica router (every
    /// [`DriverletService::submit`] on a routed fleet; explicit-lane
    /// submits bypass the router and are not counted).
    pub routed: u64,
    /// Routed parts shed off a saturated home lane to a sibling replica.
    pub route_spills: u64,
    /// Routed submits that fanned out to two or more replica lanes.
    pub stripe_fanouts: u64,
    /// Member parts those fan-outs produced (`stripe_parts /
    /// stripe_fanouts` is the mean fan-out width).
    pub stripe_parts: u64,
    /// Submits refused at the admission-QoS gate with
    /// [`ServeError::Throttled`] (no queue depth was ever reserved).
    pub throttled: u64,
    /// Diverged clean reads swallowed and re-admitted on a sibling
    /// replica.
    pub failovers: u64,
    /// Requests whose failover retry budget ran out
    /// ([`ServeError::Exhausted`]).
    pub failover_exhausted: u64,
    /// Watchdog trips into [`LaneState::Quarantined`].
    pub quarantines: u64,
    /// Lanes restored to [`LaneState::Healthy`] after a clean probation
    /// window.
    pub lane_restores: u64,
}

impl ServeStats {
    /// Mean requests folded into one replay — the coalescing ratio the
    /// bench reports (1.0 = no coalescing benefit).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.replays == 0 {
            return 1.0;
        }
        self.completed as f64 / self.replays as f64
    }

    /// Mean submission-ring entries admitted per doorbell SMC — the
    /// world-switch amortisation factor of the ring path (0.0 when no
    /// doorbell ever rang).
    pub fn mean_doorbell_batch(&self) -> f64 {
        if self.doorbells == 0 {
            return 0.0;
        }
        self.doorbell_entries as f64 / self.doorbells as f64
    }
}

/// Gate command: one per-call submit (legacy path).
const GATE_SUBMIT: u32 = 0;
/// Gate command: drain every rung submission ring (`params[0]` = staged
/// entry count, charged per entry inside the one doorbell switch).
const GATE_DOORBELL: u32 = 1;
/// Gate command: one per-call completion reap (legacy path) — a full GP
/// invoke, priced exactly like a per-call submit.
const GATE_REAP: u32 = 2;

/// The session-admission gate: a minimal trusted application registered
/// with the TEE kernel. Opening a service session opens a TEE session to
/// this gate. On the per-call path every submit invokes it (one SMC plus
/// the GP invoke marshalling overhead each); on the ring path one
/// batch-invoke per doorbell validates every staged entry — so both
/// admission paths are accounted by the same `dlt-tee` machinery every
/// other trustlet uses.
struct ServeGate;

impl Trustlet for ServeGate {
    fn name(&self) -> &'static str {
        "dlt-serve"
    }
    fn invoke(
        &mut self,
        command: u32,
        params: &[u64; 4],
        _buf: &mut [u8],
        tee: &mut SecureIo,
    ) -> Result<u64, TeeError> {
        // Admission only: the scheduler does the device work. What the
        // gate *does* charge is the admission software cost — per call on
        // the legacy path, per staged entry on the doorbell path.
        match command {
            GATE_DOORBELL => {
                let entries = params[0];
                tee.charge_ns(entries.saturating_mul(tee.ring_entry_validate_ns()));
                Ok(entries)
            }
            _ => {
                tee.charge_ns(tee.smc_invoke_overhead_ns());
                Ok(0)
            }
        }
    }
}

/// The front-end's handle on one device lane. The execution state (queue,
/// platform, replayer) lives in the [`LaneWorker`] — held inline in
/// sequential mode, moved onto its own OS thread in threaded mode — and
/// the front-end keeps only the communication endpoints plus the shared
/// atomics.
struct LaneFrontEnd {
    device: Device,
    /// The lane's normal-world submission ring ([`SubmitMode::Ring`]):
    /// entries staged here are invisible to the TEE until a doorbell
    /// drains them into the lane queue.
    sq: SubmissionRing,
    /// Admission channel: TEE-admitted requests travel to the worker here.
    admit_tx: SpscProducer<Pending>,
    /// Completion channel: the worker posts executed completions here.
    cq_rx: SpscConsumer<Completion>,
    /// Control mailbox (fault injection, health checks, shutdown).
    ctrl_tx: mpsc::Sender<CtrlMsg>,
    shared: Arc<LaneShared>,
    /// `Some` in sequential mode (the event loop steps it inline), `None`
    /// once the worker moved onto its own thread.
    worker: Option<Box<LaneWorker>>,
    /// The lane thread (threaded mode), joined on drop.
    join: Option<JoinHandle<()>>,
}

/// A snapshot of one lane's timeline and queue state (multi-core
/// observability: per-device utilisation and backlog).
#[derive(Debug, Clone, Copy)]
pub struct LaneStatus {
    /// The lane's device.
    pub device: Device,
    /// Lane-local virtual time.
    pub now_ns: u64,
    /// Nanoseconds the lane core actually spent executing.
    pub busy_ns: u64,
    /// Nanoseconds the lane core skipped as idle between batches.
    pub idle_ns: u64,
    /// Requests currently queued (admitted but not yet completed into the
    /// completion path).
    pub queued: usize,
    /// Deepest the queue has been.
    pub high_water: usize,
    /// Entries currently staged in the lane's submission ring (not yet
    /// admitted by a doorbell).
    pub sq_staged: usize,
    /// Deepest the submission ring has been — `sq_high_water / sq_depth`
    /// is the ring-occupancy metric the serve bench reports.
    pub sq_high_water: usize,
    /// The submission ring's slot count.
    pub sq_depth: usize,
}

impl LaneStatus {
    /// Fraction of the lane's lifetime spent executing (0 when it never
    /// ran).
    pub fn utilization(&self) -> f64 {
        if self.now_ns == 0 {
            return 0.0;
        }
        self.busy_ns as f64 / self.now_ns as f64
    }
}

/// Shape checks only — one bad request must never take down the service
/// (the bound keeps a single tenant from demanding an unbounded span
/// buffer, and the end check keeps block arithmetic in range). Whether the
/// extent is *recorded* is the replayer's coverage check at execution
/// time. Free function so a detached [`LaneSubmitter`] applies the same
/// rules off-thread.
fn validate_request(req: &Request) -> Result<(), ServeError> {
    let check_span = |blkid: u32, blkcnt: u32| -> Result<(), ServeError> {
        if blkcnt == 0 {
            return Err(ServeError::Invalid("zero-length request".into()));
        }
        if blkcnt > MAX_REQUEST_BLOCKS {
            return Err(ServeError::Invalid(format!(
                "request of {blkcnt} blocks exceeds the {MAX_REQUEST_BLOCKS}-block limit"
            )));
        }
        if blkid.checked_add(blkcnt).is_none() {
            return Err(ServeError::Invalid(format!(
                "request extent {blkid}+{blkcnt} exceeds the block address space"
            )));
        }
        Ok(())
    };
    match req {
        Request::Read { blkid, blkcnt, .. } => check_span(*blkid, *blkcnt)?,
        Request::Write { blkid, data, .. } => {
            if data.is_empty() || data.len() % BLOCK != 0 {
                return Err(ServeError::Invalid(
                    "write payload must be a whole number of blocks".into(),
                ));
            }
            check_span(*blkid, (data.len() / BLOCK) as u32)?;
        }
        Request::Capture { frames, .. } => {
            if *frames == 0 {
                return Err(ServeError::Invalid("zero-frame capture".into()));
            }
        }
    }
    Ok(())
}

/// Front-end state for one open session: its completion ring plus the
/// cached per-session metrics series. The series is resolved from the
/// registry's locked map **once**, at `open_session`, so the per-request
/// submit/reap paths bump plain relaxed atomics instead of paying a
/// mutex + hash lookup + `Arc` clone each time.
struct SessionEntry {
    cq: CompletionRing,
    obs: Option<Arc<SessionMetrics>>,
}

/// Reassembly state for one routed submit that fanned out across replica
/// lanes. The client holds the *parent* [`RequestId`]; each member part
/// executes on its lane like any other request, and the front-end folds
/// member completions in here as it reaps them. When the last member
/// lands, one synthesized parent [`Completion`] — offset-ordered read
/// bytes, the latest member `completed_ns` — is posted to the session.
struct StripeParent {
    session: SessionId,
    device: Device,
    /// Members not yet folded in.
    outstanding: usize,
    /// Read reassembly buffer (member payloads land at their byte
    /// offsets); `None` for writes.
    buf: Option<Vec<u8>>,
    /// Total blocks the parent wrote (the `Payload::Written` count).
    blocks: u32,
    submitted_ns: u64,
    /// Running max over member completion stamps: a striped request is
    /// done when its *slowest* part is.
    completed_ns: u64,
    /// Whether any member rode a merged/batched replay.
    coalesced: bool,
    /// Lowest-offset member error, if any — the error serial execution
    /// would have hit first.
    error: Option<(usize, ServeError)>,
}

/// Failover state for one in-flight retryable request: a routed,
/// unsplit, **clean** read on a multi-replica fleet. Registered at
/// submit time; consulted when its completion reaps as a divergence;
/// dropped when any terminal completion posts.
struct RetryCtx {
    session: SessionId,
    device: Device,
    blkid: u32,
    blkcnt: u32,
    /// Executions that diverged so far, in order — the
    /// [`ServeError::Exhausted`] trail.
    attempts: Vec<FailoverAttempt>,
}

/// Front-end supervision bookkeeping for one lane. The lane's *state*
/// lives in its shared [`dlt_obs::LaneMetrics`] gauge (the router and
/// health checks read it there); these are the watchdog's private
/// counters.
#[derive(Default)]
struct LaneSupervision {
    /// Sliding outcome window over recent completions (`true` =
    /// diverged).
    window: VecDeque<bool>,
    /// Divergences currently inside the window.
    divergences: u32,
    /// Clean completions served since the lane entered probation.
    probation_clean: u32,
}

/// What [`DriverletService::absorb_member`] made of one reaped
/// completion.
enum Absorbed {
    /// Not a stripe member — deliver it unchanged.
    Direct(Completion),
    /// A member folded into a parent that is still waiting on siblings.
    Pending,
    /// The last member landed: deliver the synthesized parent.
    Parent(Completion),
}

/// The multi-tenant driverlet service (see the crate docs).
///
/// # Example
///
/// Two clients share the secure SD card through one scheduler — their
/// requests queue, coalesce where adjacent, and complete independently:
///
/// ```
/// use dlt_serve::{Device, DriverletService, Payload, Request, ServeConfig};
///
/// let mut service = DriverletService::new(&[Device::Mmc], ServeConfig::quick())?;
/// let alice = service.open_session()?; // one SMC each, via the TEE session layer
/// let bob = service.open_session()?;
///
/// service.submit(
///     alice,
///     Request::Write { device: Device::Mmc, blkid: 64, data: vec![7u8; 512] },
/// )?;
/// service.submit(bob, Request::Read { device: Device::Mmc, blkid: 64, blkcnt: 1 })?;
/// service.drain_all(); // event loop: holds, batches, coalesces, replays, fans out
///
/// let read = service.take_completions(bob).pop().unwrap();
/// assert!(matches!(read.result?, Payload::Read(bytes) if bytes[0] == 7));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DriverletService {
    /// The control plane: the normal-world CPU and the TEE session layer.
    /// Its clock advances on SMCs and client think time, never on device
    /// work — device work belongs to the lane cores.
    control: Platform,
    /// The control clock's lock-free published view (detached submitters
    /// stamp `enqueued_ns` from it without locking the front-end).
    control_cell: Arc<ClockCell>,
    tee: TeeKernel,
    lanes: Vec<LaneFrontEnd>,
    /// Lane indices per device class, in construction (replica) order —
    /// the O(1) routing table behind [`DriverletService::submit`] and the
    /// [`LaneId`] address space (`lane_table[&device][replica]`).
    lane_table: HashMap<Device, Vec<usize>>,
    /// The shard router: placement policy plus the dirtied-chunk set that
    /// gates spilling (see [`crate::route`]).
    router: Router,
    /// Member request id → (parent id, byte offset into the parent span)
    /// for in-flight routed fan-outs.
    stripe_members: HashMap<RequestId, (RequestId, usize)>,
    /// Parent id → reassembly state for in-flight routed fan-outs.
    stripe_parents: HashMap<RequestId, StripeParent>,
    config: ServeConfig,
    sessions: HashMap<SessionId, SessionEntry>,
    /// The admission-QoS gate (token buckets + weighted shares),
    /// consulted by the routed [`DriverletService::submit`] before any
    /// queue depth is reserved. Explicit-lane submits bypass it, exactly
    /// as they bypass the router.
    admission: Admission,
    /// Request id → (session, device) for submits the gate charged:
    /// removing the ticket at completion time releases the tenant's
    /// in-flight share slot, on exactly the completion the client
    /// observes (parent-granular for fan-outs, once per id under
    /// failover).
    qos_tickets: HashMap<RequestId, (SessionId, Device)>,
    /// Request id → failover state for in-flight retryable clean reads.
    retryable: HashMap<RequestId, RetryCtx>,
    /// Per-lane watchdog counters, indexed like `lanes`.
    supervision: Vec<LaneSupervision>,
    /// Request-id allocator, shared with detached [`LaneSubmitter`]s
    /// (atomic fetch-add: globally unique, monotone per allocator call).
    next_request: Arc<AtomicU64>,
    stats: Arc<SharedStats>,
    /// Ids in the order their replays executed (the serial-order witness
    /// for the differential property test). Appended as completions are
    /// reaped from each lane's cq ring — which is per-lane execution
    /// order; cross-lane interleaving in threaded mode follows reap order.
    exec_log: Vec<RequestId>,
    quiesce: Arc<Quiesce>,
    /// The flight recorder (disabled unless [`ObsConfig::Full`]); lane
    /// workers, replayers, the TEE kernel and the front-end all emit into
    /// their own lock-free rings registered here.
    recorder: Arc<Recorder>,
    /// The metrics registry. Always present — the per-lane core counters
    /// back [`LaneHealth`] and `QueueFull` high-water even when the
    /// configured plane is `Off`; histograms and session/SMC accounting
    /// engage only when [`ObsConfig::metrics_enabled`].
    metrics: Arc<MetricsRegistry>,
    /// The front-end thread's own trace ring (submit/doorbell events).
    tracer: Option<TraceHandle>,
}

impl Drop for DriverletService {
    fn drop(&mut self) {
        for lane in &mut self.lanes {
            if let Some(join) = lane.join.take() {
                let (reply, _keep) = mpsc::channel();
                let _ = lane.ctrl_tx.send(CtrlMsg { req: CtrlReq::Stop, reply });
                lane.shared.unpark();
                let _ = join.join();
            }
        }
    }
}

impl DriverletService {
    /// Record the driverlets for `devices`, then stand the service up via
    /// [`DriverletService::with_driverlets`].
    pub fn new(devices: &[Device], config: ServeConfig) -> Result<Self, ServeError> {
        let mut bundles = Vec::new();
        for device in devices {
            let bundle = match device {
                Device::Mmc => record_mmc_driverlet_subset(&config.block_granularities)
                    .map_err(|e| ServeError::Invalid(e.to_string()))?,
                Device::Usb => record_usb_driverlet_subset(&config.block_granularities)
                    .map_err(|e| ServeError::Invalid(e.to_string()))?,
                Device::Vchiq => record_camera_driverlet_subset(&config.camera_bursts)
                    .map_err(|e| ServeError::Invalid(e.to_string()))?,
            };
            bundles.push((*device, bundle));
        }
        Self::with_driverlets(&bundles, config)
    }

    /// Stand up the control-plane platform plus **one TEE core (platform +
    /// clock + replayer) per entry** in `bundles`, each loaded with its
    /// (already recorded, signed) bundle. A production deployment records
    /// once and serves many service restarts from the same signed bundles.
    ///
    /// A device may appear more than once: each occurrence becomes its own
    /// **replica lane** with an independent core and queue. The
    /// device-routed [`DriverletService::submit`] shards block addresses
    /// across the replicas under [`ServeConfig::route`]; explicit lanes
    /// are addressed with [`DriverletService::submit_to`] (by [`LaneId`])
    /// or [`DriverletService::submit_to_lane`] (by raw index). In
    /// [`ExecMode::Threaded`] each lane's worker is spawned onto its own
    /// OS thread here and joined on drop.
    pub fn with_driverlets(
        bundles: &[(Device, dlt_template::Driverlet)],
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        let control = Platform::new();
        let control_cell = control.clock.lock().cell();
        let mut tee = TeeKernel::install(&control, &[])?;
        tee.load_trustlet(Box::new(ServeGate));
        let stats = Arc::new(SharedStats::default());
        let quiesce = Arc::new(Quiesce::default());
        // One host epoch for both observability planes: trace stamps and
        // `last_event_host_ns` live in the same domain, so hot paths that
        // already computed a metrics stamp can hand it to `emit_at`.
        let obs_epoch = std::time::Instant::now();
        let metrics =
            Arc::new(MetricsRegistry::with_epoch(config.obs.metrics_enabled(), obs_epoch));
        let recorder = Arc::new(if config.obs.tracing_enabled() {
            Recorder::with_epoch(
                dlt_obs::trace::DEFAULT_RING_CAPACITY,
                dlt_obs::trace::DEFAULT_FLIGHT_CAPACITY,
                obs_epoch,
            )
        } else {
            Recorder::disabled()
        });
        // Track 0 carries every normal-world emitter (front-end, TEE
        // kernel, detached submitters); each lane's worker and replayer
        // share track `index + 1` — one Perfetto track per lane thread.
        let tracer = recorder.register("front-end", 0);
        tee.set_tracer(recorder.register("tee", 0));
        if config.obs.metrics_enabled() {
            tee.set_smc_metrics(metrics.smc());
        }
        let lane_config = LaneConfig {
            policy: config.policy,
            coalesce: config.coalesce,
            coalesce_window: config.coalesce_window,
            hold_budget_ns: config.hold_budget_ns,
            block_granularities: config.block_granularities.clone(),
            camera_bursts: config.camera_bursts.clone(),
        };

        let mut lanes = Vec::new();
        for (index, (device, bundle)) in bundles.iter().enumerate() {
            let platform = Platform::new();
            let (entry, secure): (_, &[&str]) = match device {
                Device::Mmc => {
                    MmcSubsystem::attach(&platform).map_err(TeeError::from)?;
                    ("replay_mmc", &["sdhost", "dma"])
                }
                Device::Usb => {
                    UsbSubsystem::attach(&platform).map_err(TeeError::from)?;
                    ("replay_usb", &["dwc2"])
                }
                Device::Vchiq => {
                    VchiqSubsystem::attach(&platform).map_err(TeeError::from)?;
                    ("replay_cam", &["vchiq"])
                }
            };
            let io = secure_core(&platform, secure)?;
            let mut replayer = Replayer::with_config(
                io,
                ReplayConfig { mode: config.mode, ..ReplayConfig::default() },
            );
            replayer.load_driverlet(bundle.clone(), DEV_KEY)?;
            // Register the worker's ring first: the first name on a track
            // labels its Perfetto track, and `lane-N-dev` is the thread
            // name the spans belong to. The replayer shares the track.
            let track = (index + 1) as u16;
            let lane_tracer = recorder.register(&format!("lane-{index}-{device}"), track);
            if let Some(t) = recorder.register(&format!("replayer-{index}-{device}"), track) {
                replayer.set_tracer(t);
            }
            let shared = Arc::new(LaneShared::new(
                *device,
                config.queue_capacity,
                platform.clock.lock().cell(),
                Arc::clone(&quiesce),
                metrics.register_lane(device.to_string()),
                metrics.is_enabled(),
                metrics.epoch(),
            ));
            // Channel bounds: in-flight work is capped at the queue
            // capacity by the front-end reservation, so rings of that
            // capacity can never reject (the worker's spill is a pure
            // belt-and-braces path).
            let (admit_tx, admit_rx) = spsc::channel(config.queue_capacity);
            let (cq_tx, cq_rx) = spsc::channel(config.queue_capacity);
            let (ctrl_tx, ctrl_rx) = mpsc::channel();
            let worker = Box::new(LaneWorker {
                device: *device,
                lane: Lane::new(config.queue_capacity),
                platform,
                replayer,
                entry,
                admit_rx,
                cq_tx,
                cq_spill: VecDeque::new(),
                ctrl_rx,
                shared: Arc::clone(&shared),
                stats: Arc::clone(&stats),
                config: lane_config.clone(),
                tracer: lane_tracer,
            });
            let (worker, join) = match config.exec_mode {
                ExecMode::Sequential => (Some(worker), None),
                ExecMode::Threaded => {
                    let handle = std::thread::Builder::new()
                        .name(format!("dlt-lane-{index}-{device}"))
                        .spawn(move || worker.run())
                        .map_err(|e| {
                            ServeError::Invalid(format!("failed to spawn lane thread: {e}"))
                        })?;
                    shared
                        .thread
                        .set(handle.thread().clone())
                        .expect("lane thread handle is set exactly once");
                    (None, Some(handle))
                }
            };
            lanes.push(LaneFrontEnd {
                device: *device,
                sq: SubmissionRing::new(config.sq_depth),
                admit_tx,
                cq_rx,
                ctrl_tx,
                shared,
                worker,
                join,
            });
        }
        // Satellite of the router: the per-device lane table is built
        // once here, so the submit path's device → lanes resolution is a
        // hash lookup instead of an O(lanes) scan per request.
        let mut lane_table: HashMap<Device, Vec<usize>> = HashMap::new();
        for (index, lane) in lanes.iter().enumerate() {
            lane_table.entry(lane.device).or_default().push(index);
        }
        let router = Router::new(config.route);
        let supervision = (0..lanes.len()).map(|_| LaneSupervision::default()).collect();
        let admission = Admission::new(config.qos);
        Ok(DriverletService {
            control,
            control_cell,
            tee,
            lanes,
            lane_table,
            router,
            stripe_members: HashMap::new(),
            stripe_parents: HashMap::new(),
            config,
            sessions: HashMap::new(),
            admission,
            qos_tickets: HashMap::new(),
            retryable: HashMap::new(),
            supervision,
            next_request: Arc::new(AtomicU64::new(1)),
            stats,
            exec_log: Vec::new(),
            quiesce,
            recorder,
            metrics,
            tracer,
        })
    }

    /// Current **service time**: the pointwise max of the control-plane
    /// clock and every lane clock — the join that merges the per-core
    /// timelines into one monotonic service timeline. Elapsed-time
    /// (makespan) measurements read this; submission stamps instead read
    /// the control clock (see the module docs for the causal rules).
    ///
    /// Lock-free: every clock publishes each advance into its
    /// [`ClockCell`] with release ordering, and this max-scan only takes
    /// acquire loads — it is safe (and non-blocking) to call while lane
    /// threads execute. Each cell is a monotone lower bound of its lane's
    /// live clock, so the join is itself a monotone lower bound of the
    /// true service time, exact at quiescence.
    pub fn now_ns(&self) -> u64 {
        self.lanes
            .iter()
            .map(|l| l.shared.clock.now_ns())
            .fold(self.control_cell.now_ns(), u64::max)
    }

    /// Model normal-world client think time: advance the control-plane
    /// clock by `ns`, so the next submit's arrival stamp is spaced
    /// accordingly. Benchmarks use this to shape open-loop arrival
    /// processes (e.g. the anticipatory-hold sweep).
    pub fn client_think_ns(&mut self, ns: u64) {
        self.control.clock.lock().advance_ns(ns);
    }

    /// Per-lane timeline and queue snapshots (device, lane-local time,
    /// busy/idle split, backlog). Reads only published atomics, so it is
    /// safe against running lane threads.
    pub fn lane_status(&self) -> Vec<LaneStatus> {
        self.lanes
            .iter()
            .map(|l| LaneStatus {
                device: l.device,
                now_ns: l.shared.clock.now_ns(),
                busy_ns: l.shared.clock.busy_ns(),
                idle_ns: l.shared.clock.idle_ns(),
                // Admitted entries still travelling the admit ring plus
                // the worker's local queue.
                queued: l.admit_tx.len() + l.shared.queued.load(Ordering::Acquire),
                high_water: l.shared.queue_high_water.load(Ordering::Acquire),
                sq_staged: l.sq.len(),
                sq_high_water: l.sq.high_water(),
                sq_depth: l.sq.depth(),
            })
            .collect()
    }

    /// Cumulative statistics (a relaxed snapshot of the shared atomic
    /// counters; exact once the service is quiescent).
    pub fn stats(&self) -> ServeStats {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServeStats {
            submitted: ld(&self.stats.submitted),
            completed: ld(&self.stats.completed),
            rejected: ld(&self.stats.rejected),
            replays: ld(&self.stats.replays),
            coalesced_requests: ld(&self.stats.coalesced_requests),
            blocks_moved: ld(&self.stats.blocks_moved),
            holds: ld(&self.stats.holds),
            early_unplugs: ld(&self.stats.early_unplugs),
            doorbells: ld(&self.stats.doorbells),
            doorbell_entries: ld(&self.stats.doorbell_entries),
            cq_overflows: ld(&self.stats.cq_overflows),
            routed: ld(&self.stats.routed),
            route_spills: ld(&self.stats.route_spills),
            stripe_fanouts: ld(&self.stats.stripe_fanouts),
            stripe_parts: ld(&self.stats.stripe_parts),
            throttled: ld(&self.stats.throttled),
            failovers: ld(&self.stats.failovers),
            failover_exhausted: ld(&self.stats.failover_exhausted),
            quarantines: ld(&self.stats.quarantines),
            lane_restores: ld(&self.stats.lane_restores),
        }
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// World switches (SMCs) the session layer has performed, doorbells
    /// included. `smc_calls() / stats().completed` is the
    /// SMCs-per-request metric the serve bench gates on.
    pub fn smc_calls(&self) -> u64 {
        self.tee.smc_calls()
    }

    /// World switches that were ring doorbells.
    pub fn smc_doorbells(&self) -> u64 {
        self.tee.smc_doorbells()
    }

    /// World switches on the legacy per-call path (open/submit/reap/close).
    pub fn smc_legacy(&self) -> u64 {
        self.tee.smc_legacy()
    }

    /// The normal-world (control-plane) clock. Benchmarks read this to
    /// separate submission-path time from lane (device) time: the control
    /// clock is where per-call SMC overhead accumulates and what the ring
    /// path amortises.
    pub fn control_now_ns(&self) -> u64 {
        self.control.now_ns()
    }

    /// How many device lanes the service runs (replica lanes included).
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// The device served by lane `lane`, if it exists.
    pub fn lane_device(&self, lane: usize) -> Option<Device> {
        self.lanes.get(lane).map(|l| l.device)
    }

    /// Admit a new client (one SMC through the TEE session layer).
    pub fn open_session(&mut self) -> Result<SessionId, ServeError> {
        if self.sessions.len() >= self.config.max_sessions {
            return Err(ServeError::SessionLimit { max: self.config.max_sessions });
        }
        let id = self.tee.open_session("dlt-serve")?;
        let obs = self.metrics.is_enabled().then(|| self.metrics.session(id));
        self.sessions
            .insert(id, SessionEntry { cq: CompletionRing::new(self.config.cq_depth), obs });
        Ok(id)
    }

    /// Close a session. Queued requests still execute, but their
    /// completions are dropped.
    ///
    /// Every per-session series is released here: the TEE session, the
    /// completion ring, the scheduler's DRR slot, the QoS bucket, and
    /// the metrics registry's session series — so churning sessions
    /// (open → close, thousands of times) leaves the registry at its
    /// live-session size instead of growing one series per session ever
    /// opened. Outcomes of requests still in flight at close time count
    /// into the aggregate `orphan_outcomes` robustness counter.
    pub fn close_session(&mut self, session: SessionId) {
        self.tee.close_session(session);
        self.sessions.remove(&session);
        self.admission.forget_session(session);
        self.metrics.forget_session(session);
        for idx in 0..self.lanes.len() {
            // Scheduler bookkeeping only (DRR rotation slot); safe to
            // apply between batches on a live lane thread.
            let _ = self.lane_ctrl(idx, CtrlReq::ForgetSession(session));
        }
    }

    /// Install a per-session QoS override (rate, burst, weight) on the
    /// admission gate, replacing [`QosConfig::default_qos`] for
    /// `session`. Takes effect on the next routed submit; inert while
    /// [`QosConfig::enabled`] is off.
    pub fn set_session_qos(
        &mut self,
        session: SessionId,
        qos: SessionQos,
    ) -> Result<(), ServeError> {
        if !self.sessions.contains_key(&session) {
            return Err(ServeError::InvalidSession(session));
        }
        self.admission.set_session(session, qos);
        Ok(())
    }

    /// The first lane serving `device` — the single-replica fast path and
    /// the lane the control-plane operations (fault injection, health
    /// checks) address. O(1): a precomputed table lookup, not a lane scan.
    fn lane_index(&self, device: Device) -> Result<usize, ServeError> {
        self.lane_table
            .get(&device)
            .and_then(|t| t.first())
            .copied()
            .ok_or(ServeError::DeviceNotServed(device))
    }

    /// How many replica lanes serve `device` (0 when it is not served).
    pub fn replica_count(&self, device: Device) -> usize {
        self.lane_table.get(&device).map_or(0, Vec::len)
    }

    /// The fleet address of lane `lane`, if it exists.
    pub fn lane_id(&self, lane: usize) -> Option<LaneId> {
        let device = self.lanes.get(lane)?.device;
        let replica = self.lane_table.get(&device)?.iter().position(|&i| i == lane)?;
        Some(LaneId { device, replica })
    }

    /// The raw lane index behind a fleet address, if it exists.
    pub fn lane_of(&self, id: LaneId) -> Option<usize> {
        self.lane_table.get(&id.device)?.get(id.replica).copied()
    }

    /// Submit into an explicit replica lane by fleet address, bypassing
    /// the router (the [`LaneId`] flavour of
    /// [`DriverletService::submit_to_lane`]).
    pub fn submit_to(
        &mut self,
        id: LaneId,
        session: SessionId,
        req: Request,
    ) -> Result<RequestId, ServeError> {
        let lane = self
            .lane_of(id)
            .ok_or_else(|| ServeError::Invalid(format!("no replica lane {id} is served")))?;
        self.submit_to_lane(lane, session, req)
    }

    /// Submit a request into a session, along the configured
    /// [`SubmitMode`]: one SMC per call, or an SMC-free stage into the
    /// lane's submission ring (admitted by the next
    /// [`DriverletService::ring_doorbell`]).
    ///
    /// On a replica fleet this is the **routed** path: the request's
    /// block span is placed across the device's replica lanes under
    /// [`ServeConfig::route`] — deterministically (same block → same
    /// replica), splitting a span that crosses chunk homes into member
    /// parts whose completions reassemble, in offset order, into the one
    /// completion this call's [`RequestId`] names. When a home lane is
    /// saturated, a clean read spills to the least-loaded sibling instead
    /// of failing. [`ServeError::QueueFull`] from this path carries the
    /// **fleet** depth snapshot, so callers can tell one hot shard from a
    /// saturated fleet. Explicit replica addressing (router bypass) is
    /// [`DriverletService::submit_to`] / [`DriverletService::submit_to_lane`].
    pub fn submit(&mut self, session: SessionId, req: Request) -> Result<RequestId, ServeError> {
        if !self.sessions.contains_key(&session) {
            return Err(ServeError::InvalidSession(session));
        }
        validate_request(&req)?;
        let device = req.device();
        let table = match self.lane_table.get(&device) {
            Some(t) if !t.is_empty() => t.clone(),
            _ => return Err(ServeError::DeviceNotServed(device)),
        };
        // Admission QoS first — before any queue depth is reserved, so a
        // throttled flooder never occupies a slot a victim could have
        // used. The charge is provisional: rolled back on any downstream
        // rejection, released by the completion's QoS ticket otherwise.
        let charged = self.admission.is_enabled();
        if charged {
            let per_lane = match self.config.submit_mode {
                SubmitMode::PerCall => self.config.queue_capacity,
                SubmitMode::Ring => self.config.sq_depth,
            };
            let now_ns = self.control.now_ns();
            if let Err(retry_after_ns) =
                self.admission.admit(session, device, table.len() * per_lane, now_ns)
            {
                SharedStats::bump(&self.stats.throttled);
                self.metrics.robustness().on_throttle();
                if let Some(obs) = self.sessions.get(&session).and_then(|e| e.obs.as_ref()) {
                    obs.on_throttle();
                }
                obs_event!(self.tracer, EventKind::Throttled, now_ns, session, 0, retry_after_ns);
                return Err(ServeError::Throttled { session, device, retry_after_ns });
            }
        }
        // Occupancy as the planner admits against: admitted in-flight
        // per-call, staged SQ entries in ring mode. The front-end is the
        // sole incrementer of both, so check-then-reserve cannot race.
        // A quarantined lane is unavailable: clean reads shed off it.
        let loads: Vec<LaneLoad> = table
            .iter()
            .map(|&idx| {
                let l = &self.lanes[idx];
                let available =
                    LaneState::from_gauge(l.shared.metrics.state()) != LaneState::Quarantined;
                match self.config.submit_mode {
                    SubmitMode::PerCall => LaneLoad {
                        depth: l.shared.inflight.load(Ordering::Acquire) as usize,
                        capacity: l.shared.capacity,
                        available,
                    },
                    SubmitMode::Ring => {
                        LaneLoad { depth: l.sq.len(), capacity: l.sq.depth(), available }
                    }
                }
            })
            .collect();
        let parts = match self.router.plan(session, &req, &loads) {
            Ok(parts) => parts,
            Err(reject) => {
                if charged {
                    self.admission.rollback(session, device);
                }
                SharedStats::bump(&self.stats.rejected);
                return Err(self.routed_reject(device, &table, reject));
            }
        };
        // Failover eligibility is decided at plan time: an unsplit clean
        // read on a multi-replica fleet may retry on a sibling, because
        // its bytes are replica-independent by the cleanliness invariant.
        let retry_span = (self.config.failover.enabled && table.len() > 1 && parts.len() == 1)
            .then(|| match &req {
                Request::Read { blkid, blkcnt, .. }
                    if self.router.span_is_clean(device, *blkid, *blkcnt) =>
                {
                    Some((*blkid, *blkcnt))
                }
                _ => None,
            })
            .flatten();
        let spilled = parts.iter().filter(|p| p.spilled).count() as u64;
        let submit_result = if parts.len() == 1 {
            // Unsplit (possibly spilled): the planned lane takes the
            // request whole down the ordinary single-lane path. The plan
            // checked its occupancy, so this cannot reject.
            let idx = table[parts[0].replica];
            match self.config.submit_mode {
                SubmitMode::PerCall => self.submit_per_call_at(idx, session, req),
                SubmitMode::Ring => self.ring_enqueue_at(idx, session, req),
            }
        } else {
            self.submit_fanout(session, req, &table, &parts)
        };
        let id = match submit_result {
            Ok(id) => id,
            Err(e) => {
                if charged {
                    self.admission.rollback(session, device);
                }
                return Err(e);
            }
        };
        if charged {
            self.qos_tickets.insert(id, (session, device));
        }
        if let Some((blkid, blkcnt)) = retry_span {
            self.retryable
                .insert(id, RetryCtx { session, device, blkid, blkcnt, attempts: Vec::new() });
        }
        SharedStats::bump(&self.stats.routed);
        SharedStats::add(&self.stats.route_spills, spilled);
        if parts.len() > 1 {
            SharedStats::bump(&self.stats.stripe_fanouts);
            SharedStats::add(&self.stats.stripe_parts, parts.len() as u64);
        }
        self.metrics.route().on_plan(parts.len() as u64, spilled);
        Ok(id)
    }

    /// Map a router rejection into the typed fleet-view backpressure
    /// error: the saturated home lane's depth/capacity plus the
    /// per-replica snapshot the plan was rejected against.
    fn routed_reject(&self, device: Device, table: &[usize], reject: RouteReject) -> ServeError {
        let home = &reject.fleet[reject.home];
        let lane = &self.lanes[table[reject.home]];
        let high_water = match self.config.submit_mode {
            SubmitMode::PerCall => lane.shared.metrics.occupancy_high_water() as usize,
            SubmitMode::Ring => lane.sq.high_water(),
        };
        ServeError::QueueFull {
            device,
            depth: home.depth,
            capacity: home.capacity,
            high_water,
            fleet: reject.fleet,
        }
    }

    /// Fan one routed request out as member parts across replica lanes.
    /// The returned id is the **parent**: members execute like ordinary
    /// requests, and [`DriverletService::absorb_member`] reassembles
    /// their completions into the one the session observes. Per-call mode
    /// charges **one** `GATE_SUBMIT` SMC for the whole fan-out (one
    /// client call = one world switch); ring mode stages every member
    /// SMC-free as usual.
    fn submit_fanout(
        &mut self,
        session: SessionId,
        req: Request,
        table: &[usize],
        parts: &[RoutePart],
    ) -> Result<RequestId, ServeError> {
        let device = req.device();
        let (blkid, buf, data) = match &req {
            Request::Read { blkid, blkcnt, .. } => {
                (*blkid, Some(vec![0u8; *blkcnt as usize * BLOCK]), None)
            }
            Request::Write { blkid, data, .. } => (*blkid, None, Some(data.clone())),
            // The planner never splits a capture.
            Request::Capture { .. } => unreachable!("captures route as a single part"),
        };
        let blocks: u32 = parts.iter().map(|p| p.blkcnt).sum();
        if self.config.submit_mode == SubmitMode::Ring {
            for part in parts {
                if !self.lanes[table[part.replica]].sq.producer_attached() {
                    return Err(ServeError::Invalid(format!(
                        "lane {} ({device}) submission ring is detached to a LaneSubmitter; \
                         stage through the submitter",
                        table[part.replica]
                    )));
                }
            }
        }
        let submitted_ns = self.control.now_ns();
        let arrived_ns = match self.config.submit_mode {
            SubmitMode::PerCall => {
                // One command invocation admits the whole fan-out: the
                // client made one call, so it pays one world switch.
                self.tee
                    .invoke(session, GATE_SUBMIT, &[0; 4], &mut [])
                    .map_err(|_| ServeError::InvalidSession(session))?;
                self.control.now_ns()
            }
            // Ring members become servable at the next doorbell.
            SubmitMode::Ring => submitted_ns,
        };
        let parent = self.next_request.fetch_add(1, Ordering::Relaxed);
        obs_event!(self.tracer, EventKind::Submitted, submitted_ns, session, parent, 0);
        if let Some(obs) = self.sessions.get(&session).and_then(|e| e.obs.as_ref()) {
            // Session accounting is parent-granular: the client sees one
            // submit and will see one completion.
            obs.on_submit();
        }
        self.stripe_parents.insert(
            parent,
            StripeParent {
                session,
                device,
                outstanding: parts.len(),
                buf,
                blocks,
                submitted_ns,
                completed_ns: 0,
                coalesced: false,
                error: None,
            },
        );
        for part in parts {
            let idx = table[part.replica];
            let offset = (part.blkid - blkid) as usize * BLOCK;
            let member_req = match &data {
                Some(bytes) => Request::Write {
                    device,
                    blkid: part.blkid,
                    data: bytes[offset..offset + part.blkcnt as usize * BLOCK].to_vec(),
                },
                None => Request::Read { device, blkid: part.blkid, blkcnt: part.blkcnt },
            };
            let member = self.next_request.fetch_add(1, Ordering::Relaxed);
            self.stripe_members.insert(member, (parent, offset));
            match self.config.submit_mode {
                SubmitMode::PerCall => {
                    let lane = &mut self.lanes[idx];
                    // Cannot fail: the plan admitted this part against a
                    // depth only the (single-threaded) front-end grows.
                    if let Err(e) = lane.shared.reserve() {
                        debug_assert!(false, "the plan checked every part's occupancy");
                        let c = self.member_completion(member, session, device, Err(e), arrived_ns);
                        self.finish_member(c);
                        continue;
                    }
                    obs_event!(
                        self.tracer,
                        EventKind::Admitted,
                        arrived_ns,
                        session,
                        member,
                        lane.shared.inflight.load(Ordering::Acquire)
                    );
                    let pending =
                        Pending { id: member, session, req: member_req, submitted_ns, arrived_ns };
                    if lane.admit_tx.try_push(pending).is_err() {
                        // Unreachable by the reservation invariant; keep
                        // the member accounted, never lost.
                        debug_assert!(false, "reservation bounds the admit ring");
                        lane.shared.inflight.fetch_sub(1, Ordering::Release);
                        let err = ServeError::QueueFull {
                            device,
                            depth: lane.shared.capacity,
                            capacity: lane.shared.capacity,
                            high_water: lane.shared.metrics.occupancy_high_water() as usize,
                            fleet: Vec::new(),
                        };
                        SharedStats::bump(&self.stats.rejected);
                        let c =
                            self.member_completion(member, session, device, Err(err), arrived_ns);
                        self.finish_member(c);
                        continue;
                    }
                    SharedStats::bump(&self.stats.submitted);
                    lane.shared.unpark();
                }
                SubmitMode::Ring => {
                    let lane = &mut self.lanes[idx];
                    lane.sq
                        .try_push(SqEntry {
                            id: member,
                            session,
                            req: member_req,
                            enqueued_ns: submitted_ns,
                        })
                        .expect("the plan checked the ring's staged depth");
                    SharedStats::bump(&self.stats.submitted);
                }
            }
            obs_event!(self.tracer, EventKind::Submitted, submitted_ns, session, member, 0);
        }
        Ok(parent)
    }

    /// A synthesized member completion for the unreachable
    /// cannot-actually-admit paths of [`DriverletService::submit_fanout`].
    fn member_completion(
        &self,
        id: RequestId,
        session: SessionId,
        device: Device,
        result: Result<Payload, ServeError>,
        at_ns: u64,
    ) -> Completion {
        Completion {
            id,
            session,
            device,
            result,
            submitted_ns: at_ns,
            completed_ns: at_ns,
            coalesced: false,
        }
    }

    /// Feed one member completion through reassembly and post the parent
    /// if it was the last.
    fn finish_member(&mut self, c: Completion) {
        match self.absorb_member(c) {
            Absorbed::Direct(c) | Absorbed::Parent(c) => self.post_completion(c),
            Absorbed::Pending => {}
        }
    }

    /// Fold one reaped completion into its stripe parent, if it is a
    /// member of a routed fan-out; pass it through otherwise. Member
    /// read bytes land at their byte offset in the parent buffer, the
    /// parent's completion stamp is the max over members (a striped
    /// request is done when its slowest part is), and the surviving
    /// error — if any member failed — is the lowest-offset one, the
    /// error serial execution would have hit first.
    fn absorb_member(&mut self, c: Completion) -> Absorbed {
        let Some((parent_id, offset)) = self.stripe_members.remove(&c.id) else {
            return Absorbed::Direct(c);
        };
        let p = self
            .stripe_parents
            .get_mut(&parent_id)
            .expect("a stripe member always has a live parent");
        p.outstanding -= 1;
        p.completed_ns = p.completed_ns.max(c.completed_ns);
        p.coalesced |= c.coalesced;
        match c.result {
            Ok(Payload::Read(bytes)) => {
                if let Some(buf) = &mut p.buf {
                    buf[offset..offset + bytes.len()].copy_from_slice(&bytes);
                }
            }
            Ok(_) => {}
            Err(e) => {
                if p.error.as_ref().is_none_or(|(at, _)| offset < *at) {
                    p.error = Some((offset, e));
                }
            }
        }
        if p.outstanding > 0 {
            return Absorbed::Pending;
        }
        let p = self.stripe_parents.remove(&parent_id).expect("checked present above");
        let result = match p.error {
            Some((_, e)) => Err(e),
            None => Ok(match p.buf {
                Some(buf) => Payload::Read(buf),
                None => Payload::Written { blocks: p.blocks },
            }),
        };
        Absorbed::Parent(Completion {
            id: parent_id,
            session: p.session,
            device: p.device,
            result,
            submitted_ns: p.submitted_ns,
            completed_ns: p.completed_ns,
            coalesced: p.coalesced,
        })
    }

    /// Submit into an explicit lane (replica-lane addressing). The
    /// request's device must match the lane's device.
    pub fn submit_to_lane(
        &mut self,
        lane: usize,
        session: SessionId,
        req: Request,
    ) -> Result<RequestId, ServeError> {
        if lane >= self.lanes.len() {
            return Err(ServeError::Invalid(format!(
                "lane {lane} out of range ({} lanes)",
                self.lanes.len()
            )));
        }
        match self.config.submit_mode {
            SubmitMode::PerCall => self.submit_per_call_at(lane, session, req),
            SubmitMode::Ring => self.ring_enqueue_at(lane, session, req),
        }
    }

    /// The legacy one-SMC-per-operation submit. Public even in ring mode:
    /// a client may always fall back to a plain command invocation (the
    /// syscall beside io_uring), e.g. for a request that must be visible
    /// to the TEE immediately without waiting for a doorbell.
    pub fn submit_per_call(
        &mut self,
        session: SessionId,
        req: Request,
    ) -> Result<RequestId, ServeError> {
        let idx = self.lane_index(req.device())?;
        self.submit_per_call_at(idx, session, req)
    }

    fn submit_per_call_at(
        &mut self,
        idx: usize,
        session: SessionId,
        req: Request,
    ) -> Result<RequestId, ServeError> {
        if !self.sessions.contains_key(&session) {
            return Err(ServeError::InvalidSession(session));
        }
        validate_request(&req)?;
        let device = self.lanes[idx].device;
        if req.device() != device {
            return Err(ServeError::Invalid(format!(
                "request for {} submitted to a {device} lane",
                req.device()
            )));
        }
        // Submission stamp: the instant the client *initiated* the call,
        // so client-observed latency includes the world switch it is about
        // to pay. The control clock advances on SMCs, client think time
        // and completion *observations*
        // ([`DriverletService::take_completions`]) — never on unobserved
        // lane progress — so independent sessions keep overlapping with a
        // slow lane they are not waiting on.
        let submitted_ns = self.control.now_ns();
        // The command invocation crossing into the TEE: validated and
        // charged by the session framework (on the control-plane clock) —
        // one world switch plus the GP invoke marshalling the gate bills.
        self.tee
            .invoke(session, GATE_SUBMIT, &[0; 4], &mut [])
            .map_err(|_| ServeError::InvalidSession(session))?;
        // Admission stamp: the SMC's return. The target lane serves this
        // request no earlier than this.
        let arrived_ns = self.control.now_ns();
        // Capacity reservation (single atomic snapshot): the lane bound is
        // enforced here, front-end side, so the admit push below can never
        // fail and a rejection reports one coherent depth even while the
        // lane thread drains concurrently.
        if let Err(e) = self.lanes[idx].shared.reserve() {
            SharedStats::bump(&self.stats.rejected);
            return Err(e);
        }
        let id = self.next_request.fetch_add(1, Ordering::Relaxed);
        let lane = &mut self.lanes[idx];
        obs_event!(self.tracer, EventKind::Submitted, submitted_ns, session, id, 0);
        obs_event!(
            self.tracer,
            EventKind::Admitted,
            arrived_ns,
            session,
            id,
            lane.shared.inflight.load(Ordering::Acquire)
        );
        if let Some(obs) = self.sessions.get(&session).and_then(|e| e.obs.as_ref()) {
            obs.on_submit();
        }
        let pending = Pending { id, session, req, submitted_ns, arrived_ns };
        if lane.admit_tx.try_push(pending).is_err() {
            // Unreachable by the reservation invariant (admit ring
            // capacity == lane capacity >= in-flight); never lose the
            // reservation silently if it ever fires.
            debug_assert!(false, "reservation bounds the admit ring");
            lane.shared.inflight.fetch_sub(1, Ordering::Release);
            lane.shared.metrics.on_fail(self.metrics.host_now_ns());
            SharedStats::bump(&self.stats.rejected);
            return Err(ServeError::QueueFull {
                device,
                depth: lane.shared.capacity,
                capacity: lane.shared.capacity,
                high_water: lane.shared.metrics.occupancy_high_water() as usize,
                fleet: Vec::new(),
            });
        }
        SharedStats::bump(&self.stats.submitted);
        lane.shared.unpark();
        Ok(id)
    }

    /// Stage a request in the target lane's submission ring **without
    /// entering the TEE**: no SMC, no control-clock charge — the whole
    /// point of the ring path. Shape checks run here in the normal world
    /// (the client library mirrors the gate's admission rules; the gate
    /// re-validates every entry at doorbell time and bills that per-entry
    /// cost inside the one world switch). A full ring is typed
    /// backpressure — [`ServeError::QueueFull`] carrying the device, the
    /// ring depth and its capacity — never a silent drop.
    fn ring_enqueue_at(
        &mut self,
        idx: usize,
        session: SessionId,
        req: Request,
    ) -> Result<RequestId, ServeError> {
        if !self.sessions.contains_key(&session) {
            return Err(ServeError::InvalidSession(session));
        }
        validate_request(&req)?;
        let device = self.lanes[idx].device;
        if req.device() != device {
            return Err(ServeError::Invalid(format!(
                "request for {} staged on a {device} lane",
                req.device()
            )));
        }
        let enqueued_ns = self.control.now_ns();
        let lane = &mut self.lanes[idx];
        if !lane.sq.producer_attached() {
            return Err(ServeError::Invalid(format!(
                "lane {idx} ({device}) submission ring is detached to a LaneSubmitter; \
                 stage through the submitter"
            )));
        }
        if lane.sq.is_full() {
            SharedStats::bump(&self.stats.rejected);
            return Err(ServeError::QueueFull {
                device,
                depth: lane.sq.len(),
                capacity: lane.sq.depth(),
                high_water: lane.sq.high_water(),
                fleet: Vec::new(),
            });
        }
        let id = self.next_request.fetch_add(1, Ordering::Relaxed);
        lane.sq
            .try_push(SqEntry { id, session, req, enqueued_ns })
            .expect("ring checked non-full and this thread is the only attached producer");
        obs_event!(self.tracer, EventKind::Submitted, enqueued_ns, session, id, 0);
        if let Some(obs) = self.sessions.get(&session).and_then(|e| e.obs.as_ref()) {
            obs.on_submit();
        }
        SharedStats::bump(&self.stats.submitted);
        Ok(id)
    }

    /// Ring the doorbell: **one** SMC (a batch invoke of the gate
    /// trustlet) admits every entry currently staged in every lane's
    /// submission ring. The gate validates each entry under the same
    /// admission checks as the per-call path — that per-entry cost plus
    /// the doorbell switch are the only control-clock charges, however
    /// large the batch. Admitted entries join their lane queues with
    /// `arrived_ns` = the doorbell's return; an entry whose lane queue is
    /// full is *not* dropped — it completes with
    /// [`ServeError::QueueFull`] in its session's completion ring.
    /// Returns the number of entries admitted (0 when nothing was staged:
    /// no switch is paid for an empty doorbell).
    ///
    /// Under detached [`LaneSubmitter`]s staging concurrently, the
    /// doorbell snapshots each lane's staged count *first*, charges the
    /// gate for that total, then drains **exactly that many** entries per
    /// lane — entries that land mid-drain wait for the next doorbell, so
    /// the charge always matches the admissions.
    pub fn ring_doorbell(&mut self) -> Result<usize, ServeError> {
        let staged_by_lane: Vec<usize> = self.lanes.iter().map(|l| l.sq.len()).collect();
        let staged: usize = staged_by_lane.iter().sum();
        if staged == 0 {
            return Ok(0);
        }
        self.tee.invoke_batch("dlt-serve", GATE_DOORBELL, &[staged as u64, 0, 0, 0], &mut [])?;
        let arrived_ns = self.control.now_ns();
        // One host stamp covers the doorbell and every `Admitted` it
        // unlocks: the emits are back-to-back and the clock read dominates
        // the emit cost (0 when tracing is off — the macro no-ops).
        let host_ns = self.tracer.as_ref().map(|t| t.host_now_ns()).unwrap_or(0);
        obs_event_at!(self.tracer, host_ns, EventKind::Doorbell, arrived_ns, 0, 0, staged as u64);
        if self.metrics.is_enabled() {
            self.metrics.smc().record_doorbell_batch(staged as u64);
        }
        SharedStats::bump(&self.stats.doorbells);
        SharedStats::add(&self.stats.doorbell_entries, staged as u64);
        let mut rejected = Vec::new();
        for (idx, n) in staged_by_lane.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            let lane = &mut self.lanes[idx];
            let device = lane.device;
            lane.shared.metrics.on_doorbell();
            for e in lane.sq.take_staged(*n) {
                match lane.shared.reserve() {
                    Ok(()) => {
                        obs_event_at!(
                            self.tracer,
                            host_ns,
                            EventKind::Admitted,
                            arrived_ns,
                            e.session,
                            e.id,
                            lane.shared.inflight.load(Ordering::Acquire)
                        );
                        let pending = Pending {
                            id: e.id,
                            session: e.session,
                            req: e.req,
                            submitted_ns: e.enqueued_ns,
                            arrived_ns,
                        };
                        if let Err((p, _)) = lane.admit_tx.try_push(pending) {
                            // Unreachable by the reservation invariant;
                            // surface as typed backpressure, never a loss.
                            debug_assert!(false, "reservation bounds the admit ring");
                            lane.shared.inflight.fetch_sub(1, Ordering::Release);
                            lane.shared.metrics.on_fail(self.metrics.host_now_ns());
                            SharedStats::bump(&self.stats.rejected);
                            rejected.push(Completion {
                                id: p.id,
                                session: p.session,
                                device,
                                result: Err(ServeError::QueueFull {
                                    device,
                                    depth: lane.shared.capacity,
                                    capacity: lane.shared.capacity,
                                    high_water: lane.shared.metrics.occupancy_high_water() as usize,
                                    fleet: Vec::new(),
                                }),
                                submitted_ns: p.submitted_ns,
                                completed_ns: arrived_ns,
                                coalesced: false,
                            });
                        }
                    }
                    Err(err) => {
                        SharedStats::bump(&self.stats.rejected);
                        rejected.push(Completion {
                            id: e.id,
                            session: e.session,
                            device,
                            result: Err(err),
                            submitted_ns: e.enqueued_ns,
                            completed_ns: arrived_ns,
                            coalesced: false,
                        });
                    }
                }
            }
            lane.shared.unpark();
        }
        for c in rejected {
            // A rejected entry may be a routed stripe member: its typed
            // failure must flow through reassembly so the parent still
            // completes (with the member's error) once its siblings do.
            self.finish_member(c);
        }
        Ok(staged)
    }

    /// Flush staged ring entries before the event loop looks for work
    /// (ring mode only; a no-op when nothing is staged).
    fn flush_doorbell(&mut self) {
        if self.config.submit_mode == SubmitMode::Ring {
            // The only failure mode is a missing gate trustlet, which
            // `with_driverlets` installed; treat it as unreachable.
            self.ring_doorbell().expect("the serve gate is always installed");
        }
    }

    /// Post one completion into its session's completion ring (dropped
    /// when the session is gone, exactly like the per-call path). Every
    /// terminal completion passes through here exactly once, so this is
    /// also where the per-session metrics classify outcomes.
    fn post_completion(&mut self, c: Completion) {
        fn classify(obs: &SessionMetrics, result: &Result<Payload, ServeError>) {
            match result {
                Err(ServeError::Replay(ReplayError::Diverged(_))) => obs.on_diverge(),
                // Success and typed failures are both terminal
                // completions from the session's point of view.
                _ => obs.on_complete(),
            }
        }
        // Terminal for this request id: release the tenant's QoS
        // in-flight slot and drop any failover state.
        if let Some((session, device)) = self.qos_tickets.remove(&c.id) {
            self.admission.on_done(session, device);
        }
        self.retryable.remove(&c.id);
        if let Some(entry) = self.sessions.get_mut(&c.session) {
            if let Some(obs) = &entry.obs {
                classify(obs, &c.result);
            }
            if entry.cq.post(c) {
                SharedStats::bump(&self.stats.cq_overflows);
            }
        } else if self.metrics.is_enabled() {
            // The session is gone (closed with this request in flight):
            // count the outcome into the bounded aggregate instead of
            // re-creating a per-session series the registry would keep
            // forever — session churn must not grow the registry.
            self.metrics.robustness().on_orphan_outcome();
        }
    }

    /// Reap lane `idx`'s completion ring into the session rings and the
    /// exec log; collects clones when `collect` is set (drain return
    /// value). When the worker is inline, its spill is flushed as the ring
    /// empties so nothing is stranded worker-side.
    fn reap_lane(&mut self, idx: usize, collect: bool, out: &mut Vec<Completion>) {
        loop {
            let lane = &mut self.lanes[idx];
            if let Some(w) = lane.worker.as_mut() {
                w.flush_cq_spill();
            }
            let Some(c) = lane.cq_rx.try_pop() else { break };
            let diverged = matches!(c.result, Err(ServeError::Replay(ReplayError::Diverged(_))));
            // The watchdog sees every outcome on its origin lane, even
            // ones failover will swallow — a lane that keeps diverging
            // must trip regardless of where its victims retry.
            self.observe_outcome(idx, diverged);
            // Replica failover: a diverged retryable clean read is
            // swallowed here and re-admitted on a sibling — the session
            // never sees the divergence unless the budget runs out.
            let Some(c) = self.failover_or_deliver(idx, c) else { continue };
            // The exec log records what the lanes actually *delivered*:
            // member ids for routed fan-outs (the parent id never reaches
            // a lane), everything else by its own id. Swallowed diverged
            // executions are retries in flight, not deliveries.
            self.exec_log.push(c.id);
            match self.absorb_member(c) {
                Absorbed::Direct(c) | Absorbed::Parent(c) => {
                    if collect {
                        out.push(c.clone());
                    }
                    self.post_completion(c);
                }
                Absorbed::Pending => {}
            }
        }
    }

    /// Attempt replica failover for one reaped completion. Returns the
    /// completion to deliver — untouched when it is not a retryable
    /// divergence, or rewritten into the typed [`ServeError::Exhausted`]
    /// trail when the budget (or the fleet) ran out — or `None` when the
    /// request was swallowed and re-admitted on a sibling lane under the
    /// same [`RequestId`].
    fn failover_or_deliver(&mut self, idx: usize, c: Completion) -> Option<Completion> {
        let diverged = matches!(c.result, Err(ServeError::Replay(ReplayError::Diverged(_))));
        if !self.config.failover.enabled || !diverged || !self.retryable.contains_key(&c.id) {
            return Some(c);
        }
        let origin = self.lane_id(idx).expect("reaped lanes exist").replica;
        let (attempt, device, session) = {
            let ctx = self.retryable.get_mut(&c.id).expect("checked present above");
            ctx.attempts.push(FailoverAttempt { replica: origin, at_ns: c.completed_ns });
            (ctx.attempts.len() as u32, ctx.device, ctx.session)
        };
        let table = self.lane_table[&device].clone();
        // Least-loaded available sibling with depth room. The front-end
        // is the sole inflight incrementer, so room checked here cannot
        // vanish before the reserve below.
        let target = (attempt <= self.config.failover.retry_budget)
            .then(|| {
                (0..table.len())
                    .filter(|&r| r != origin)
                    .filter(|&r| {
                        let s = &self.lanes[table[r]].shared;
                        LaneState::from_gauge(s.metrics.state()) != LaneState::Quarantined
                            && (s.inflight.load(Ordering::Acquire) as usize) < s.capacity
                    })
                    .min_by_key(|&r| self.lanes[table[r]].shared.inflight.load(Ordering::Acquire))
            })
            .flatten();
        let Some(replica) = target else {
            let ctx = self.retryable.remove(&c.id).expect("checked present above");
            SharedStats::bump(&self.stats.failover_exhausted);
            self.metrics.robustness().on_exhausted();
            return Some(Completion {
                result: Err(ServeError::Exhausted { device, attempts: ctx.attempts }),
                ..c
            });
        };
        // Exponential backoff charged to the virtual clock: the retry
        // arrives on the sibling no earlier than the divergence's
        // completion stamp plus base << (attempt - 1).
        let backoff = self.config.failover.backoff_base_ns << (attempt - 1).min(20);
        let arrived_ns = c.completed_ns.saturating_add(backoff);
        let (blkid, blkcnt) = {
            let ctx = &self.retryable[&c.id];
            (ctx.blkid, ctx.blkcnt)
        };
        let lane = &mut self.lanes[table[replica]];
        lane.shared.reserve().expect("the target was selected with depth room");
        let pending = Pending {
            id: c.id,
            session,
            req: Request::Read { device, blkid, blkcnt },
            submitted_ns: c.submitted_ns,
            arrived_ns,
        };
        if lane.admit_tx.try_push(pending).is_err() {
            // Unreachable by the reservation invariant; deliver the
            // original divergence rather than lose the request.
            debug_assert!(false, "reservation bounds the admit ring");
            lane.shared.inflight.fetch_sub(1, Ordering::Release);
            self.retryable.remove(&c.id);
            return Some(c);
        }
        lane.shared.unpark();
        SharedStats::bump(&self.stats.failovers);
        self.metrics.robustness().on_failover();
        obs_event!(self.tracer, EventKind::Failover, arrived_ns, session, c.id, u64::from(attempt));
        None
    }

    /// Feed one completion outcome on lane `idx` into the watchdog:
    /// divergence-window accounting while healthy, probation progress
    /// otherwise. No-op unless supervision is enabled.
    fn observe_outcome(&mut self, idx: usize, diverged: bool) {
        let cfg = self.config.supervise;
        if !cfg.enabled {
            return;
        }
        match self.lane_state(idx) {
            LaneState::Healthy => {
                let sup = &mut self.supervision[idx];
                sup.window.push_back(diverged);
                if diverged {
                    sup.divergences += 1;
                }
                while sup.window.len() > cfg.window as usize {
                    if sup.window.pop_front() == Some(true) {
                        sup.divergences -= 1;
                    }
                }
                if sup.divergences >= cfg.divergence_threshold.max(1) {
                    self.quarantine_lane(idx);
                }
            }
            LaneState::Probation => {
                if diverged {
                    // Re-diverging on probation is an immediate re-trip.
                    self.quarantine_lane(idx);
                } else {
                    let sup = &mut self.supervision[idx];
                    sup.probation_clean += 1;
                    if sup.probation_clean >= cfg.probation_ok.max(1) {
                        self.restore_lane(idx);
                    }
                }
            }
            LaneState::Quarantined => {}
        }
    }

    /// The supervision state of lane `idx`, read from its shared gauge —
    /// the single source of truth the router's availability check and
    /// [`LaneHealth`] read too.
    fn lane_state(&self, idx: usize) -> LaneState {
        LaneState::from_gauge(self.lanes[idx].shared.metrics.state())
    }

    fn set_lane_state(&mut self, idx: usize, state: LaneState) {
        let host_ns = self.metrics.host_now_ns();
        self.lanes[idx].shared.metrics.set_state(state.as_gauge(), host_ns);
    }

    /// Trip lane `idx` into quarantine: publish the state (the router
    /// stops sending it clean reads at once), drain its queued work back
    /// through the router, soft-reset the replayer (clear any installed
    /// response mutator), and probe — a passing probe moves the lane
    /// straight to probation, a failing one leaves it quarantined.
    fn quarantine_lane(&mut self, idx: usize) {
        self.set_lane_state(idx, LaneState::Quarantined);
        let sup = &mut self.supervision[idx];
        sup.window.clear();
        sup.divergences = 0;
        sup.probation_clean = 0;
        SharedStats::bump(&self.stats.quarantines);
        self.metrics.robustness().on_quarantine();
        let virt_ns = self.lanes[idx].shared.clock.now_ns();
        obs_event!(self.tracer, EventKind::Quarantine, virt_ns, 0, idx as u64, 1);
        // In ring mode, staged-but-undoorbelled entries would otherwise
        // sit on the quarantined lane's SQ until the next doorbell admits
        // them there; pull them off and re-stage clean reads on siblings.
        if self.config.submit_mode == SubmitMode::Ring {
            self.restage_quarantined_sq(idx);
        }
        if let Ok(CtrlReply::Evicted(evicted)) = self.lane_ctrl(idx, CtrlReq::Evict) {
            self.replace_evicted(idx, evicted);
        }
        let _ = self.lane_ctrl(idx, CtrlReq::SetMutator(None));
        self.probe_for_probation(idx);
    }

    /// Run the lane health probe on a quarantined lane; a pass enters
    /// probation (watchdog arg 2 in the trace), a failure leaves the
    /// lane quarantined for a later probe.
    fn probe_for_probation(&mut self, idx: usize) {
        if matches!(self.lane_ctrl(idx, CtrlReq::HealthCheck), Ok(CtrlReply::Health(_))) {
            self.set_lane_state(idx, LaneState::Probation);
            self.supervision[idx].probation_clean = 0;
            let virt_ns = self.lanes[idx].shared.clock.now_ns();
            obs_event!(self.tracer, EventKind::Quarantine, virt_ns, 0, idx as u64, 2);
        }
    }

    /// A probation lane served its clean window: restore it.
    fn restore_lane(&mut self, idx: usize) {
        self.set_lane_state(idx, LaneState::Healthy);
        let sup = &mut self.supervision[idx];
        sup.window.clear();
        sup.divergences = 0;
        sup.probation_clean = 0;
        SharedStats::bump(&self.stats.lane_restores);
        self.metrics.robustness().on_lane_restore();
        let virt_ns = self.lanes[idx].shared.clock.now_ns();
        obs_event!(self.tracer, EventKind::LaneRestored, virt_ns, 0, idx as u64, 0);
    }

    /// Re-place the requests a quarantine eviction handed back: clean
    /// reads go to the least-loaded available sibling, writes and dirty
    /// reads return to the quarantined home (it still executes — only
    /// replica-independent work may move). The evicted requests kept
    /// their front-end reservations, so each re-placement first settles
    /// the origin's accounting (un-admit) and then reserves its target.
    fn replace_evicted(&mut self, origin: usize, evicted: Vec<Pending>) {
        let device = self.lanes[origin].device;
        let table = self.lane_table[&device].clone();
        for p in evicted {
            let host_ns = self.metrics.host_now_ns();
            {
                let sh = &self.lanes[origin].shared;
                sh.inflight.fetch_sub(1, Ordering::Release);
                sh.metrics.on_requeue(host_ns);
            }
            let movable = matches!(&p.req, Request::Read { blkid, blkcnt, .. }
                    if self.router.span_is_clean(device, *blkid, *blkcnt));
            let target = movable
                .then(|| {
                    table
                        .iter()
                        .copied()
                        .filter(|&i| i != origin)
                        .filter(|&i| {
                            let s = &self.lanes[i].shared;
                            LaneState::from_gauge(s.metrics.state()) != LaneState::Quarantined
                                && (s.inflight.load(Ordering::Acquire) as usize) < s.capacity
                        })
                        .min_by_key(|&i| self.lanes[i].shared.inflight.load(Ordering::Acquire))
                })
                .flatten()
                // The origin just drained, so it always has room again.
                .unwrap_or(origin);
            let lane = &mut self.lanes[target];
            lane.shared.reserve().expect("the eviction or the room check freed a slot");
            lane.admit_tx.try_push(p).expect("reservation bounds the admit ring");
            lane.shared.unpark();
        }
    }

    /// Pull staged-but-undoorbelled entries off a quarantined lane's
    /// submission ring and re-stage clean reads on available siblings
    /// (writes and dirty reads re-stage where they were). Skipped when
    /// the ring's producer is detached to a [`LaneSubmitter`] — a
    /// concurrent producer owns the staging side then.
    fn restage_quarantined_sq(&mut self, origin: usize) {
        if !self.lanes[origin].sq.producer_attached() {
            return;
        }
        let device = self.lanes[origin].device;
        let table = self.lane_table[&device].clone();
        let staged = self.lanes[origin].sq.drain_staged();
        for e in staged {
            let movable = matches!(&e.req, Request::Read { blkid, blkcnt, .. }
                    if self.router.span_is_clean(device, *blkid, *blkcnt));
            let target = movable
                .then(|| {
                    table
                        .iter()
                        .copied()
                        .filter(|&i| i != origin)
                        .filter(|&i| {
                            let l = &self.lanes[i];
                            LaneState::from_gauge(l.shared.metrics.state())
                                != LaneState::Quarantined
                                && l.sq.producer_attached()
                                && !l.sq.is_full()
                        })
                        .min_by_key(|&i| self.lanes[i].sq.len())
                })
                .flatten()
                .unwrap_or(origin);
            self.lanes[target]
                .sq
                .try_push(e)
                .expect("the target ring was selected non-full or just drained");
        }
    }

    /// Reap every lane `filter` selects.
    fn reap_lanes(&mut self, filter: Option<Device>, collect: bool, out: &mut Vec<Completion>) {
        for idx in 0..self.lanes.len() {
            if filter.is_some_and(|d| self.lanes[idx].device != d) {
                continue;
            }
            self.reap_lane(idx, collect, out);
        }
    }

    /// Whether every selected lane has posted every admitted request's
    /// completion and nothing is left in its cq ring or spill.
    fn lanes_quiescent(&self, filter: Option<Device>) -> bool {
        self.lanes.iter().all(|l| {
            filter.is_some_and(|d| l.device != d) || (l.shared.quiescent() && l.cq_rx.is_empty())
        })
    }

    /// Threaded-mode drain: unpark the selected lane threads, then
    /// alternate reaping with sleeping on the progress condvar until they
    /// are quiescent. The timeout on each wait makes the loop robust to
    /// missed wakeups; the condvar keeps the front-end off-CPU while lanes
    /// execute (essential on single-core hosts).
    fn drain_threaded(&mut self, filter: Option<Device>) -> Vec<Completion> {
        let mut all = Vec::new();
        for lane in &self.lanes {
            if filter.is_some_and(|d| lane.device != d) {
                continue;
            }
            lane.shared.unpark();
        }
        loop {
            self.reap_lanes(filter, true, &mut all);
            if self.lanes_quiescent(filter) {
                break;
            }
            self.quiesce.wait_for_progress(Duration::from_micros(200));
        }
        // Completions may have landed between the last reap and the
        // quiescence check; the counters' release/acquire ordering
        // guarantees this final pass sees all of them.
        self.reap_lanes(filter, true, &mut all);
        all
    }

    /// Run the event loop's step function.
    ///
    /// # Contract
    ///
    /// **Sequential mode** (the default): one step — pick the lane with
    /// the smallest next-event time (its plug deadline, or the instant it
    /// can start its earliest arrived request), execute one batch there,
    /// and return that batch's completions; `drain` **yields per batch**,
    /// and an empty return means every lane is idle. **Threaded mode**:
    /// per-batch stepping has no meaning against free-running lane
    /// threads, so `drain` runs to quiescence — it is `drain_all`.
    /// Completions are also retrievable per session via
    /// [`DriverletService::take_completions`]. Call
    /// [`DriverletService::drain_all`] to run the loop to quiescence, or
    /// [`DriverletService::drain_device`] to flush a single saturated lane
    /// (per-device backpressure relief).
    pub fn drain(&mut self) -> Vec<Completion> {
        self.flush_doorbell();
        match self.config.exec_mode {
            ExecMode::Sequential => self.step(None),
            ExecMode::Threaded => self.drain_threaded(None),
        }
    }

    /// Run the event loop until every lane is empty and return all
    /// completions produced (the old `drain` contract).
    pub fn drain_all(&mut self) -> Vec<Completion> {
        self.flush_doorbell();
        match self.config.exec_mode {
            ExecMode::Sequential => {
                let mut all = Vec::new();
                loop {
                    let step = self.step(None);
                    if step.is_empty() {
                        break;
                    }
                    all.extend(step);
                }
                all
            }
            ExecMode::Threaded => self.drain_threaded(None),
        }
    }

    /// Run the event loop restricted to `device` until that lane is empty
    /// — the per-device backoff a caller applies after
    /// [`ServeError::QueueFull`] names the saturated device, leaving every
    /// other lane's queue (and hold) untouched.
    pub fn drain_device(&mut self, device: Device) -> Vec<Completion> {
        self.flush_doorbell();
        match self.config.exec_mode {
            ExecMode::Sequential => {
                let mut all = Vec::new();
                loop {
                    let step = self.step(Some(device));
                    if step.is_empty() {
                        break;
                    }
                    all.extend(step);
                }
                all
            }
            ExecMode::Threaded => self.drain_threaded(Some(device)),
        }
    }

    /// One sequential event-loop step over the lanes `filter` selects.
    fn step(&mut self, filter: Option<Device>) -> Vec<Completion> {
        loop {
            // Admissions first, so planning sees every arrival (the
            // pre-threading submit pushed straight into the lane queue).
            let mut next: Option<(usize, Dispatch)> = None;
            for (idx, lane) in self.lanes.iter_mut().enumerate() {
                if filter.is_some_and(|d| lane.device != d) {
                    continue;
                }
                let w = lane.worker.as_mut().expect("sequential lanes keep their worker inline");
                w.pump_admissions();
                if let Some(d) = w.next_dispatch() {
                    if next.is_none_or(|(_, best)| d.at_ns < best.at_ns) {
                        next = Some((idx, d));
                    }
                }
            }
            let Some((idx, dispatch)) = next else {
                return Vec::new();
            };
            let posted = {
                let w = self.lanes[idx]
                    .worker
                    .as_mut()
                    .expect("sequential lanes keep their worker inline");
                w.run_one_batch(dispatch)
            };
            if posted == 0 {
                // DRR with deficits still accumulating: retry — each call
                // grows the eligible sessions' deficits, so this
                // terminates.
                continue;
            }
            let mut out = Vec::new();
            self.reap_lane(idx, true, &mut out);
            if out.is_empty() {
                // Every completion in the batch folded into a routed
                // stripe parent still waiting on sibling lanes: keep
                // stepping so those siblings execute — an empty return
                // must keep meaning "every lane is idle".
                continue;
            }
            return out;
        }
    }

    /// Take the completions accumulated for one session.
    ///
    /// World-switch accounting follows the submit mode. **Per-call**: the
    /// reap is a command invocation — one SMC every call, completions or
    /// not (the baseline the issue's motivation counts as "one SMC per
    /// completion reap"). **Ring**: the client reads its completion ring
    /// directly — no world switch at all, except when the ring is empty
    /// (a blocking wait must enter the kernel to sleep) or when posts
    /// spilled to the overflow list (flushing it is a kernel entry).
    ///
    /// This is also the client's **observation point**: the caller
    /// blocked until these completions existed, so the normal-world
    /// (control) clock fast-forwards to the latest lane-local completion
    /// time taken. Sessions that never wait on a lane (e.g. block clients
    /// running beside a camera burst they did not submit) keep their own,
    /// earlier timeline — this is what lets independent tenants overlap
    /// device time across lanes.
    ///
    /// In threaded mode this first reaps whatever the lane threads have
    /// posted so far (non-blocking — it does **not** wait for in-flight
    /// requests; drain first for that).
    pub fn take_completions(&mut self, session: SessionId) -> Vec<Completion> {
        if self.config.exec_mode == ExecMode::Threaded {
            self.reap_lanes(None, false, &mut Vec::new());
        }
        let Some(entry) = self.sessions.get_mut(&session) else {
            return Vec::new();
        };
        let (taken, flushed_overflow) = entry.cq.take_all();
        match self.config.submit_mode {
            // The per-call reap is a full GP command invocation of the
            // gate, priced exactly like a per-call submit (world switch +
            // invoke marshalling).
            SubmitMode::PerCall => {
                let _ = self.tee.invoke(session, GATE_REAP, &[0; 4], &mut []);
            }
            SubmitMode::Ring => {
                if taken.is_empty() || flushed_overflow {
                    self.tee.smc_yield();
                }
            }
        }
        if let Some(latest) = taken.iter().map(|c| c.completed_ns).max() {
            self.control.clock.lock().advance_to(latest);
        }
        taken
    }

    /// The ids of every executed request in device-dispatch order — the
    /// witness serial order for the scheduler's equivalence property
    /// (per-lane execution order exactly; threaded cross-lane interleave
    /// follows reap order).
    pub fn take_exec_log(&mut self) -> Vec<RequestId> {
        if self.config.exec_mode == ExecMode::Threaded {
            self.reap_lanes(None, false, &mut Vec::new());
        }
        std::mem::take(&mut self.exec_log)
    }

    /// A [`SecureBlockIo`] view of one session bound to one block device:
    /// the handle trustlets hold instead of a replayer.
    pub fn session_io(&mut self, session: SessionId, device: Device) -> SessionBlockIo<'_> {
        SessionBlockIo { service: self, session, device }
    }

    /// Apply one control request to lane `idx`: directly on the inline
    /// worker (sequential), or via the control mailbox (threaded) — the
    /// worker handles mailbox messages strictly **between batches**, never
    /// mid-replay, so these operations are safe against a lane thread
    /// actively draining its queue. The call blocks until the worker
    /// replies.
    fn lane_ctrl(&mut self, idx: usize, req: CtrlReq) -> Result<CtrlReply, ServeError> {
        let (reply, result) = mpsc::channel();
        if let Some(w) = self.lanes[idx].worker.as_mut() {
            w.handle_ctrl(CtrlMsg { req, reply });
        } else {
            self.lanes[idx]
                .ctrl_tx
                .send(CtrlMsg { req, reply })
                .map_err(|_| ServeError::Invalid(format!("lane {idx} thread exited")))?;
            self.lanes[idx].shared.unpark();
        }
        result
            .recv()
            .map_err(|_| ServeError::Invalid(format!("lane {idx} dropped the control reply")))?
    }

    /// Install a solver-driven device fault on `device`'s lane: every
    /// replay the lane runs from now on passes through a
    /// [`ConstraintFlipper`] following `plan` — it falsifies the targeted
    /// constraint with concolically solved register/DMA observations, so
    /// the lane behaves exactly like a misbehaving device at that point of
    /// the recorded trace. Returns the shared [`FlipOutcome`] handle the
    /// caller observes the campaign through. Replaces any previously
    /// installed fault. Safe mid-flight: a threaded lane installs the
    /// fault at its next batch boundary (never mid-replay), and this call
    /// waits for that hand-off.
    pub fn inject_fault(
        &mut self,
        device: Device,
        plan: FaultPlan,
    ) -> Result<Arc<Mutex<FlipOutcome>>, ServeError> {
        self.inject_fault_at(LaneId { device, replica: 0 }, plan)
    }

    /// [`DriverletService::inject_fault`] with replica-lane addressing:
    /// fault exactly one lane of a fleet (the adversarial fault-storm
    /// experiments target one replica and watch the failover path carry
    /// its traffic).
    pub fn inject_fault_at(
        &mut self,
        id: LaneId,
        plan: FaultPlan,
    ) -> Result<Arc<Mutex<FlipOutcome>>, ServeError> {
        let idx = self
            .lane_of(id)
            .ok_or_else(|| ServeError::Invalid(format!("no replica lane {id} is served")))?;
        let (flipper, outcome) = ConstraintFlipper::new(plan);
        self.lane_ctrl(idx, CtrlReq::SetMutator(Some(Box::new(flipper))))?;
        Ok(outcome)
    }

    /// Remove any fault installed on `device`'s lane; subsequent replays
    /// see the real device again. Same batch-boundary hand-off as
    /// [`DriverletService::inject_fault`].
    pub fn clear_fault(&mut self, device: Device) -> Result<(), ServeError> {
        self.clear_fault_at(LaneId { device, replica: 0 })
    }

    /// [`DriverletService::clear_fault`] with replica-lane addressing.
    pub fn clear_fault_at(&mut self, id: LaneId) -> Result<(), ServeError> {
        let idx = self
            .lane_of(id)
            .ok_or_else(|| ServeError::Invalid(format!("no replica lane {id} is served")))?;
        self.lane_ctrl(idx, CtrlReq::SetMutator(None)).map(|_| ())
    }

    /// Verify `device`'s lane is still serviceable — the post-divergence
    /// invariant the explore harness gates on. Block lanes write a pattern
    /// over the scratch probe extent at [`HEALTH_PROBE_BLKID`] and must
    /// read it back byte-identically; the camera lane must complete a
    /// one-frame capture. The probe goes straight at the lane replayer —
    /// no session, no queue — so a sick replayer cannot hide behind
    /// scheduling, and it **clobbers** the probe extent. On a threaded
    /// lane the probe runs on the lane thread between batches, so it never
    /// interleaves with a request's replay. Returns the lane's structured
    /// [`LaneHealth`] snapshot (queue depth, in-flight count, lifetime
    /// completion/divergence counters, last-activity host stamp) taken at
    /// the probe's batch boundary.
    pub fn lane_health_check(&mut self, device: Device) -> Result<LaneHealth, ServeError> {
        self.lane_health_check_at(LaneId { device, replica: 0 })
    }

    /// [`DriverletService::lane_health_check`] with replica-lane
    /// addressing. Under supervision, a **passing** probe on a
    /// quarantined lane doubles as the operator-invoked recovery step:
    /// the lane moves to [`LaneState::Probation`] exactly as if the
    /// watchdog's own post-quarantine probe had passed, and the returned
    /// snapshot reflects the new state.
    pub fn lane_health_check_at(&mut self, id: LaneId) -> Result<LaneHealth, ServeError> {
        let idx = self
            .lane_of(id)
            .ok_or_else(|| ServeError::Invalid(format!("no replica lane {id} is served")))?;
        match self.lane_ctrl(idx, CtrlReq::HealthCheck)? {
            CtrlReply::Health(mut health) => {
                if self.config.supervise.enabled && self.lane_state(idx) == LaneState::Quarantined {
                    self.set_lane_state(idx, LaneState::Probation);
                    self.supervision[idx].probation_clean = 0;
                    let virt_ns = self.lanes[idx].shared.clock.now_ns();
                    obs_event!(self.tracer, EventKind::Quarantine, virt_ns, 0, idx as u64, 2);
                    health.state = LaneState::Probation;
                }
                Ok(health)
            }
            _ => Err(ServeError::Invalid("health check returned no health snapshot".into())),
        }
    }

    /// Detach lane `lane`'s submission-ring producer as a [`LaneSubmitter`]
    /// that can stage entries from another thread, concurrently with this
    /// front-end draining doorbells — the sharded submission path. Each
    /// lane's producer can be detached once; afterwards the service's own
    /// [`DriverletService::submit`] on that lane reports the detachment as
    /// a typed error (single-producer discipline is kept statically).
    pub fn lane_submitter(&mut self, lane: usize) -> Result<LaneSubmitter, ServeError> {
        let next_request = Arc::clone(&self.next_request);
        let stats = Arc::clone(&self.stats);
        let control_clock = Arc::clone(&self.control_cell);
        let metrics = Arc::clone(&self.metrics);
        let tracer = self.recorder.register(&format!("submitter-{lane}"), 0);
        let l = self
            .lanes
            .get_mut(lane)
            .ok_or_else(|| ServeError::Invalid(format!("lane {lane} out of range")))?;
        let producer = l.sq.take_producer().ok_or_else(|| {
            ServeError::Invalid(format!("lane {lane} submission ring already detached"))
        })?;
        Ok(LaneSubmitter {
            device: l.device,
            producer,
            sq_depth: l.sq.depth(),
            next_request,
            stats,
            control_clock,
            metrics,
            tracer,
        })
    }

    /// The active observability configuration.
    pub fn obs_config(&self) -> ObsConfig {
        self.config.obs
    }

    /// The flight recorder — live when [`ObsConfig::Full`], a disabled
    /// stub otherwise. Collectors call [`Recorder::drain`] /
    /// [`Recorder::dropped_events`] on it directly.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Drain every emitter's trace ring and return the merged,
    /// host-time-ordered event log (empty unless [`ObsConfig::Full`]).
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.recorder.drain()
    }

    /// Drain the flight recorder and render it as Chrome `trace_event`
    /// JSON — one Perfetto track per registered lane thread. `None` unless
    /// the service runs [`ObsConfig::Full`].
    pub fn chrome_trace(&self) -> Option<String> {
        if !self.recorder.is_enabled() {
            return None;
        }
        let events = self.recorder.drain();
        Some(dlt_obs::trace::chrome_trace_json(&events, &self.recorder.track_names()))
    }

    /// A point-in-time snapshot of the metrics plane (per-lane counters
    /// and latency histograms, SMC-by-kind, per-session reconciliation
    /// counters). `None` when the configured plane is [`ObsConfig::Off`].
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        if !self.metrics.is_enabled() {
            return None;
        }
        Some(self.metrics.snapshot())
    }
}

/// First block of the scratch extent [`DriverletService::lane_health_check`]
/// overwrites on block lanes (it stays clear of the low extents the tests
/// and workloads address).
pub const HEALTH_PROBE_BLKID: u32 = crate::lane::HEALTH_PROBE_BLKID;

/// A detached, `Send` handle staging submissions into one lane's
/// submission ring from another thread — the sharded front-end: each
/// producer thread owns its lane's SQ producer endpoint, and only the
/// doorbell/reap side stays with the service.
///
/// Semantics mirror [`DriverletService::submit`] in ring mode, with two
/// documented differences inherent to being off-thread:
///
/// * The session is **not** validated at stage time (the service would
///   have to be locked for that). A stale session's entries are admitted,
///   execute, and their completions are dropped at post time — exactly
///   the behaviour of closing a session with requests in flight.
/// * A rejected stage burns its request id (ids stay globally unique and
///   per-submitter monotone; they are no longer dense across the
///   service).
#[derive(Debug)]
pub struct LaneSubmitter {
    device: Device,
    producer: SpscProducer<SqEntry>,
    sq_depth: usize,
    next_request: Arc<AtomicU64>,
    stats: Arc<SharedStats>,
    control_clock: Arc<ClockCell>,
    metrics: Arc<MetricsRegistry>,
    /// This submitter thread's own trace ring on track 0 (`None` unless
    /// the service runs the full plane).
    tracer: Option<TraceHandle>,
}

impl LaneSubmitter {
    /// The device served by the lane this submitter feeds.
    pub fn device(&self) -> Device {
        self.device
    }

    /// Entries currently staged and not yet drained by a doorbell.
    pub fn staged(&self) -> usize {
        self.producer.len()
    }

    /// The ring bound.
    pub fn sq_depth(&self) -> usize {
        self.sq_depth
    }

    /// Stage one request (shape-validated, stamped with the control
    /// clock's published time). Full rings reject with the same typed
    /// [`ServeError::QueueFull`] as the inline path, carrying the
    /// occupancy snapshot the rejection was decided on.
    pub fn stage(&mut self, session: SessionId, req: Request) -> Result<RequestId, ServeError> {
        validate_request(&req)?;
        if req.device() != self.device {
            return Err(ServeError::Invalid(format!(
                "request for {} staged on a {} lane submitter",
                req.device(),
                self.device
            )));
        }
        let enqueued_ns = self.control_clock.now_ns();
        let id = self.next_request.fetch_add(1, Ordering::Relaxed);
        match self.producer.try_push(SqEntry { id, session, req, enqueued_ns }) {
            Ok(_) => {
                obs_event!(self.tracer, EventKind::Submitted, enqueued_ns, session, id, 0);
                if self.metrics.is_enabled() {
                    self.metrics.session(session).on_submit();
                }
                SharedStats::bump(&self.stats.submitted);
                Ok(id)
            }
            Err((_, depth)) => {
                SharedStats::bump(&self.stats.rejected);
                Err(ServeError::QueueFull {
                    device: self.device,
                    depth,
                    capacity: self.sq_depth,
                    high_water: self.producer.high_water(),
                    fleet: Vec::new(),
                })
            }
        }
    }
}

/// A session-scoped block-IO handle (implements [`SecureBlockIo`], so the
/// trustlets in `dlt-trustlets` run over the shared service unchanged).
pub struct SessionBlockIo<'a> {
    service: &'a mut DriverletService,
    session: SessionId,
    device: Device,
}

impl SessionBlockIo<'_> {
    fn roundtrip(&mut self, req: Request) -> Result<Payload, dlt_core::ReplayError> {
        let invalid = |e: ServeError| dlt_core::ReplayError::Invalid(e.to_string());
        let id = self.service.submit(self.session, req).map_err(invalid)?;
        self.service.drain_all();
        let completions = self.service.take_completions(self.session);
        let completion = completions
            .into_iter()
            .find(|c| c.id == id)
            .ok_or_else(|| dlt_core::ReplayError::Invalid("completion lost".into()))?;
        completion.result.map_err(|e| match e {
            ServeError::Replay(r) => r,
            other => dlt_core::ReplayError::Invalid(other.to_string()),
        })
    }
}

impl SecureBlockIo for SessionBlockIo<'_> {
    fn read_blocks(
        &mut self,
        blkid: u32,
        blkcnt: u32,
        buf: &mut [u8],
    ) -> Result<(), dlt_core::ReplayError> {
        // Same contract as the bare-replayer implementation of this trait:
        // an undersized buffer is the caller's error, never a panic.
        if buf.len() < blkcnt as usize * BLOCK {
            return Err(dlt_core::ReplayError::Invalid(
                "buffer smaller than the requested blocks".into(),
            ));
        }
        let payload = self.roundtrip(Request::Read { device: self.device, blkid, blkcnt })?;
        match payload {
            Payload::Read(bytes) => {
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(())
            }
            _ => Err(dlt_core::ReplayError::Invalid("unexpected payload".into())),
        }
    }

    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), dlt_core::ReplayError> {
        self.roundtrip(Request::Write { device: self.device, blkid, data: data.to_vec() })
            .map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RoutePolicy;

    fn mmc_service(config: ServeConfig) -> DriverletService {
        DriverletService::new(&[Device::Mmc], config).expect("build service")
    }

    /// A replica fleet: `replicas` MMC lanes, every one loaded from the
    /// **same** recorded bundle (the replica premise: clean blocks read
    /// byte-identically fleet-wide).
    fn mmc_fleet(replicas: usize, config: ServeConfig) -> DriverletService {
        let bundle =
            record_mmc_driverlet_subset(&config.block_granularities).expect("record bundle");
        let bundles: Vec<(Device, dlt_template::Driverlet)> =
            (0..replicas).map(|_| (Device::Mmc, bundle.clone())).collect();
        DriverletService::with_driverlets(&bundles, config).expect("build fleet")
    }

    #[test]
    fn routed_writes_read_back_on_every_submit_mode() {
        // Deterministic placement is a data-consistency property here:
        // if a read could land on a different replica than the write
        // that produced its bytes, it would return the bundle's initial
        // content instead. Round-tripping six extents through a 3-replica
        // fleet on both submit paths is therefore the placement witness.
        let policy = RoutePolicy::HashShard { chunk_blocks: 16 };
        for mode in [SubmitMode::PerCall, SubmitMode::Ring] {
            let mut s = mmc_fleet(
                3,
                ServeConfig {
                    submit_mode: mode,
                    route: RouteConfig { policy, spill: true },
                    block_granularities: vec![1, 8],
                    ..ServeConfig::default()
                },
            );
            let sess = s.open_session().unwrap();
            let data = |e: u32| -> Vec<u8> {
                (0..8 * BLOCK).map(|i| ((i as u32 ^ (e * 37)) % 251) as u8).collect()
            };
            for extent in 0..6u32 {
                s.submit(
                    sess,
                    Request::Write { device: Device::Mmc, blkid: extent * 16, data: data(extent) },
                )
                .unwrap();
            }
            s.drain_all();
            s.take_completions(sess);
            let ids: Vec<RequestId> = (0..6u32)
                .map(|extent| {
                    s.submit(
                        sess,
                        Request::Read { device: Device::Mmc, blkid: extent * 16, blkcnt: 8 },
                    )
                    .unwrap()
                })
                .collect();
            s.drain_all();
            let done = s.take_completions(sess);
            assert_eq!(done.len(), 6);
            for (extent, id) in ids.iter().enumerate() {
                let c = done.iter().find(|c| c.id == *id).unwrap();
                match c.result.clone().expect("read ok") {
                    Payload::Read(bytes) => assert_eq!(
                        bytes,
                        data(extent as u32),
                        "the read of extent {extent} must land on the replica holding its write"
                    ),
                    other => panic!("unexpected payload {other:?}"),
                }
            }
            assert_eq!(s.stats().routed, 12, "every default submit went through the router");
            // The placement function actually spreads these extents.
            let homes: std::collections::HashSet<usize> =
                (0..6u32).map(|e| policy.replica_for(e * 16, 3)).collect();
            assert!(homes.len() >= 2, "six extents over three replicas must share the work");
        }
    }

    #[test]
    fn striped_span_fans_out_and_reassembles_byte_identically() {
        for mode in [SubmitMode::PerCall, SubmitMode::Ring] {
            let mut s = mmc_fleet(
                3,
                ServeConfig {
                    submit_mode: mode,
                    coalesce: false,
                    hold_budget_ns: 0,
                    route: RouteConfig {
                        policy: RoutePolicy::Stripe { stripe_blocks: 8 },
                        spill: true,
                    },
                    block_granularities: vec![1, 8],
                    ..ServeConfig::default()
                },
            );
            let sess = s.open_session().unwrap();
            let data: Vec<u8> = (0..24 * BLOCK).map(|i| (i % 241) as u8).collect();
            let w = s
                .submit(sess, Request::Write { device: Device::Mmc, blkid: 0, data: data.clone() })
                .unwrap();
            let done = s.drain_all();
            assert_eq!(done.len(), 1, "members reassemble: the session sees one completion");
            assert_eq!(done[0].id, w);
            match done[0].result.clone().expect("write ok") {
                Payload::Written { blocks } => assert_eq!(blocks, 24),
                other => panic!("unexpected payload {other:?}"),
            }
            let r = s
                .submit(sess, Request::Read { device: Device::Mmc, blkid: 0, blkcnt: 24 })
                .unwrap();
            let done = s.drain_all();
            assert_eq!(done.len(), 1);
            assert_eq!(done[0].id, r);
            assert!(done[0].completed_ns >= done[0].submitted_ns);
            match done[0].result.clone().expect("read ok") {
                Payload::Read(bytes) => {
                    assert_eq!(bytes, data, "stripe reassembly must be offset-ordered")
                }
                other => panic!("unexpected payload {other:?}"),
            }
            let st = s.stats();
            assert_eq!(st.stripe_fanouts, 2);
            assert_eq!(st.stripe_parts, 6, "24 blocks over 8-block stripes hit all 3 replicas");
            assert_eq!(st.routed, 2);
            assert_eq!(s.take_exec_log().len(), 6, "the exec log records the member executions");
        }
    }

    #[test]
    fn saturated_home_spills_clean_reads_and_writes_see_the_fleet() {
        // Blocks 0..=255 share chunk 0, hence one home replica.
        let mut s = mmc_fleet(
            2,
            ServeConfig {
                queue_capacity: 2,
                coalesce: false,
                hold_budget_ns: 0,
                route: RouteConfig {
                    policy: RoutePolicy::HashShard { chunk_blocks: 256 },
                    spill: true,
                },
                block_granularities: vec![1, 8],
                ..ServeConfig::default()
            },
        );
        let sess = s.open_session().unwrap();
        let rd = |i: u32| Request::Read { device: Device::Mmc, blkid: i, blkcnt: 1 };
        s.submit(sess, rd(0)).unwrap();
        s.submit(sess, rd(1)).unwrap();
        // The home lane is saturated: the third (clean) read sheds to the
        // sibling instead of failing.
        s.submit(sess, rd(2)).unwrap();
        assert_eq!(s.stats().route_spills, 1);
        // A write may never spill (the sibling would silently diverge):
        // typed backpressure carrying the whole fleet's depths, so the
        // caller can tell one hot shard from a saturated fleet.
        match s.submit(sess, Request::Write { device: Device::Mmc, blkid: 3, data: vec![9; BLOCK] })
        {
            Err(ServeError::QueueFull { fleet, .. }) => {
                assert_eq!(fleet.len(), 2, "the reject reports every replica's depth");
                assert_eq!(fleet.iter().map(|f| f.depth).sum::<usize>(), 3);
                assert!(fleet.iter().all(|f| f.capacity == 2));
            }
            other => panic!("expected fleet-view backpressure, got {other:?}"),
        }
        assert_eq!(s.stats().rejected, 1);
        let done = s.drain_all();
        assert_eq!(done.len(), 3);
        assert!(done.iter().all(|c| c.result.is_ok()), "the spilled read reads clean bytes");
    }

    #[test]
    fn lane_ids_address_the_fleet() {
        let mut s = mmc_fleet(2, ServeConfig::quick());
        assert_eq!(s.replica_count(Device::Mmc), 2);
        assert_eq!(s.replica_count(Device::Usb), 0);
        assert_eq!(s.lane_id(1), Some(LaneId { device: Device::Mmc, replica: 1 }));
        assert_eq!(s.lane_of(LaneId { device: Device::Mmc, replica: 1 }), Some(1));
        assert_eq!(s.lane_of(LaneId { device: Device::Mmc, replica: 2 }), None);
        let sess = s.open_session().unwrap();
        let id = s
            .submit_to(
                LaneId { device: Device::Mmc, replica: 1 },
                sess,
                Request::Read { device: Device::Mmc, blkid: 5, blkcnt: 1 },
            )
            .unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        assert_eq!(s.stats().routed, 0, "explicit lane addressing bypasses the router");
        assert!(matches!(
            s.submit_to(
                LaneId { device: Device::Usb, replica: 0 },
                sess,
                Request::Read { device: Device::Usb, blkid: 5, blkcnt: 1 },
            ),
            Err(ServeError::Invalid(_))
        ));
    }

    #[test]
    fn sessions_are_admitted_and_bounded() {
        let mut s = mmc_service(ServeConfig {
            max_sessions: 2,
            block_granularities: vec![1],
            ..ServeConfig::default()
        });
        let a = s.open_session().unwrap();
        let b = s.open_session().unwrap();
        assert_ne!(a, b);
        assert!(matches!(s.open_session(), Err(ServeError::SessionLimit { max: 2 })));
        s.close_session(a);
        assert_eq!(s.session_count(), 1);
        let _c = s.open_session().unwrap();
        // Submitting into a closed session fails.
        assert!(matches!(
            s.submit(a, Request::Read { device: Device::Mmc, blkid: 0, blkcnt: 1 }),
            Err(ServeError::InvalidSession(_))
        ));
        assert!(s.smc_calls() >= 3, "admission must cross the world boundary");
    }

    #[test]
    fn queue_full_is_backpressure_not_growth() {
        let mut s = mmc_service(ServeConfig {
            queue_capacity: 2,
            block_granularities: vec![1],
            ..ServeConfig::default()
        });
        let sess = s.open_session().unwrap();
        let rd = |i: u32| Request::Read { device: Device::Mmc, blkid: i, blkcnt: 1 };
        s.submit(sess, rd(0)).unwrap();
        s.submit(sess, rd(1)).unwrap();
        assert!(matches!(s.submit(sess, rd(2)), Err(ServeError::QueueFull { .. })));
        assert_eq!(s.stats().rejected, 1);
        // After a drain the queue has room again.
        let done = s.drain_all();
        assert_eq!(done.len(), 2);
        s.submit(sess, rd(2)).unwrap();
        assert_eq!(s.drain_all().len(), 1);
    }

    #[test]
    fn write_then_read_round_trips_through_two_sessions() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() });
        let writer = s.open_session().unwrap();
        let reader = s.open_session().unwrap();
        let data: Vec<u8> = (0..8 * BLOCK).map(|i| (i % 251) as u8).collect();
        s.submit(writer, Request::Write { device: Device::Mmc, blkid: 64, data: data.clone() })
            .unwrap();
        s.submit(reader, Request::Read { device: Device::Mmc, blkid: 64, blkcnt: 8 }).unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 2);
        let read = s.take_completions(reader).pop().expect("reader completion");
        match read.result.expect("read ok") {
            Payload::Read(bytes) => assert_eq!(bytes, data),
            other => panic!("unexpected payload {other:?}"),
        }
        assert!(read.completed_ns >= read.submitted_ns);
    }

    #[test]
    fn adjacent_single_block_reads_coalesce_into_one_replay() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() });
        let sessions: Vec<SessionId> = (0..8).map(|_| s.open_session().unwrap()).collect();
        for (i, sess) in sessions.iter().enumerate() {
            s.submit(
                *sess,
                Request::Read { device: Device::Mmc, blkid: 100 + i as u32, blkcnt: 1 },
            )
            .unwrap();
        }
        let r0 = s.stats().replays;
        let done = s.drain_all();
        assert_eq!(done.len(), 8);
        assert!(done.iter().all(|c| c.coalesced), "all eight reads rode one merged span");
        assert_eq!(s.stats().replays - r0, 1, "one rd_8 replay served all eight requests");
        assert!(s.stats().coalescing_ratio() > 1.0);
    }

    #[test]
    fn merged_reads_return_byte_identical_buffers_to_unmerged_ones() {
        // The same overlapping read mix, coalescing on vs off: every
        // completion payload must match byte for byte.
        let run = |coalesce: bool| -> Vec<(RequestId, Vec<u8>)> {
            let mut s = mmc_service(ServeConfig {
                coalesce,
                block_granularities: vec![1, 8],
                ..ServeConfig::default()
            });
            let writer = s.open_session().unwrap();
            let data: Vec<u8> = (0..32 * BLOCK).map(|i| (i % 253) as u8).collect();
            s.submit(writer, Request::Write { device: Device::Mmc, blkid: 96, data }).unwrap();
            s.drain_all();
            let readers: Vec<SessionId> = (0..4).map(|_| s.open_session().unwrap()).collect();
            // Overlapping and adjacent extents across four sessions.
            for (i, (blkid, blkcnt)) in
                [(96u32, 8u32), (100, 8), (104, 8), (112, 16)].iter().enumerate()
            {
                s.submit(
                    readers[i],
                    Request::Read { device: Device::Mmc, blkid: *blkid, blkcnt: *blkcnt },
                )
                .unwrap();
            }
            let mut out: Vec<(RequestId, Vec<u8>)> = s
                .drain_all()
                .into_iter()
                .map(|c| match c.result.expect("read ok") {
                    Payload::Read(bytes) => (c.id, bytes),
                    other => panic!("unexpected payload {other:?}"),
                })
                .collect();
            out.sort_by_key(|(id, _)| *id);
            out
        };
        let merged = run(true);
        let unmerged = run(false);
        assert_eq!(merged.len(), unmerged.len());
        for ((id_m, bytes_m), (id_u, bytes_u)) in merged.iter().zip(&unmerged) {
            assert_eq!(id_m, id_u);
            assert_eq!(bytes_m, bytes_u, "request {id_m}: merged read diverged from unmerged");
        }
    }

    #[test]
    fn uncoalesced_baseline_issues_one_replay_per_request() {
        let mut s = mmc_service(ServeConfig {
            coalesce: false,
            block_granularities: vec![1, 8],
            ..ServeConfig::default()
        });
        let sess = s.open_session().unwrap();
        for i in 0..4u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 200 + i, blkcnt: 1 })
                .unwrap();
        }
        let done = s.drain_all();
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|c| !c.coalesced));
        assert_eq!(s.stats().replays, 4);
    }

    #[test]
    fn unserved_devices_and_bad_requests_fail_fast() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        assert!(matches!(
            s.submit(sess, Request::Capture { frames: 1, resolution: 720 }),
            Err(ServeError::DeviceNotServed(Device::Vchiq))
        ));
        assert!(matches!(
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 0, blkcnt: 0 }),
            Err(ServeError::Invalid(_))
        ));
        assert!(matches!(
            s.submit(sess, Request::Write { device: Device::Mmc, blkid: 0, data: vec![1, 2, 3] }),
            Err(ServeError::Invalid(_))
        ));
    }

    #[test]
    fn merged_span_failure_falls_back_to_member_outcomes() {
        // An in-coverage read merged with an out-of-coverage neighbour must
        // still succeed — exactly what serial execution would produce.
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let a = s.open_session().unwrap();
        let b = s.open_session().unwrap();
        let last = (dlt_dev_mmc::CARD_BLOCKS - 1) as u32;
        let good =
            s.submit(a, Request::Read { device: Device::Mmc, blkid: last, blkcnt: 1 }).unwrap();
        let bad =
            s.submit(b, Request::Read { device: Device::Mmc, blkid: last + 1, blkcnt: 1 }).unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 2);
        let by_id = |id| done.iter().find(|c| c.id == id).unwrap();
        assert!(by_id(good).result.is_ok(), "the in-coverage member must not inherit the error");
        assert!(matches!(by_id(bad).result, Err(ServeError::Replay(_))));
    }

    #[test]
    fn oversized_and_overflowing_requests_are_rejected_at_submit() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        assert!(matches!(
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: u32::MAX, blkcnt: 2 }),
            Err(ServeError::Invalid(_))
        ));
        assert!(matches!(
            s.submit(
                sess,
                Request::Read {
                    device: Device::Mmc,
                    blkid: 0,
                    blkcnt: crate::MAX_REQUEST_BLOCKS + 1
                }
            ),
            Err(ServeError::Invalid(_))
        ));
    }

    #[test]
    fn drain_yields_one_batch_per_call() {
        // Hold disabled: the first read dispatches alone the instant it
        // arrived; the two that arrived while it was in flight form the
        // second batch. Each drain() call yields exactly one batch.
        let mut s = mmc_service(ServeConfig {
            hold_budget_ns: 0,
            block_granularities: vec![1, 8],
            ..ServeConfig::default()
        });
        let sess = s.open_session().unwrap();
        for i in 0..3u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 300 + i, blkcnt: 1 })
                .unwrap();
        }
        let first = s.drain_all();
        // drain_all is drain() to quiescence; redo the same traffic with
        // per-step drains to observe the batching.
        assert_eq!(first.len(), 3);
        // Observe the completions so the client's next submits are stamped
        // after the lane's current time (a closed-loop client).
        s.take_completions(sess);
        for i in 0..3u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 300 + i, blkcnt: 1 })
                .unwrap();
        }
        let step1 = s.drain();
        let step2 = s.drain();
        let step3 = s.drain();
        assert_eq!(step1.len(), 1, "the first arrival dispatches alone");
        assert_eq!(step2.len(), 2, "arrivals during service batch together");
        assert!(step3.is_empty(), "an empty vector signals quiescence");
    }

    #[test]
    fn anticipatory_hold_merges_one_sessions_stream_and_is_counted() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        for i in 0..8u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 400 + i, blkcnt: 1 })
                .unwrap();
        }
        let r0 = s.stats().replays;
        let done = s.drain_all();
        assert_eq!(done.len(), 8);
        assert_eq!(s.stats().replays - r0, 1, "the held window folds the stream into one rd_8");
        assert!(s.stats().holds >= 1, "the plug engaged");
        assert_eq!(s.stats().early_unplugs, 0, "nothing forced an early unplug");
    }

    #[test]
    fn camera_bursts_do_not_stall_the_mmc_lane() {
        // The multi-core acceptance scenario in miniature: a capture takes
        // seconds of VCHIQ-lane time, but block completions ride the MMC
        // lane's own clock and stay in the sub-millisecond range.
        let mut s = DriverletService::new(
            &[Device::Mmc, Device::Vchiq],
            ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() },
        )
        .expect("build service");
        let cam = s.open_session().unwrap();
        let blk = s.open_session().unwrap();
        s.submit(cam, Request::Capture { frames: 1, resolution: 720 }).unwrap();
        for i in 0..8u32 {
            s.submit(blk, Request::Read { device: Device::Mmc, blkid: 500 + i, blkcnt: 1 })
                .unwrap();
        }
        let done = s.drain_all();
        assert_eq!(done.len(), 9);
        let mut cap_latency = 0;
        for c in &done {
            c.result.as_ref().expect("all requests in coverage");
            match c.device {
                Device::Vchiq => cap_latency = c.latency_ns(),
                _ => assert!(
                    c.latency_ns() < 5_000_000,
                    "block read must not queue behind the capture (latency {} ns)",
                    c.latency_ns()
                ),
            }
        }
        assert!(cap_latency > 1_000_000_000, "the capture itself takes seconds");
        // The merge rule: service time is the max over lanes, i.e. the
        // camera lane here; the MMC lane's own clock stays far behind.
        let status = s.lane_status();
        let vchiq = status.iter().find(|l| l.device == Device::Vchiq).unwrap();
        let mmc = status.iter().find(|l| l.device == Device::Mmc).unwrap();
        assert_eq!(s.now_ns(), vchiq.now_ns, "service time joins to the furthest lane");
        assert!(vchiq.now_ns > mmc.now_ns, "lane clocks advance independently");
        assert!(mmc.busy_ns <= mmc.now_ns && mmc.utilization() <= 1.0);
    }

    #[test]
    fn drain_device_flushes_only_the_saturated_lane() {
        let mut s = DriverletService::new(
            &[Device::Mmc, Device::Usb],
            ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() },
        )
        .expect("build service");
        let sess = s.open_session().unwrap();
        s.submit(sess, Request::Read { device: Device::Mmc, blkid: 10, blkcnt: 1 }).unwrap();
        s.submit(sess, Request::Read { device: Device::Usb, blkid: 10, blkcnt: 1 }).unwrap();
        let usb_only = s.drain_device(Device::Usb);
        assert_eq!(usb_only.len(), 1);
        assert!(usb_only.iter().all(|c| c.device == Device::Usb));
        let rest = s.drain_all();
        assert_eq!(rest.len(), 1);
        assert!(rest.iter().all(|c| c.device == Device::Mmc), "the MMC lane kept its queue");
    }

    #[test]
    fn client_think_time_spaces_arrivals() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        let a = s.submit(sess, Request::Read { device: Device::Mmc, blkid: 1, blkcnt: 1 }).unwrap();
        s.client_think_ns(5_000_000);
        let b = s.submit(sess, Request::Read { device: Device::Mmc, blkid: 2, blkcnt: 1 }).unwrap();
        let done = s.drain_all();
        let at = |id| done.iter().find(|c| c.id == id).unwrap().submitted_ns;
        assert!(at(b) >= at(a) + 5_000_000, "think time separates the arrival stamps");
    }

    fn ring_config() -> ServeConfig {
        ServeConfig {
            submit_mode: SubmitMode::Ring,
            block_granularities: vec![1, 8],
            ..ServeConfig::default()
        }
    }

    #[test]
    fn doorbell_admits_a_whole_batch_in_one_world_switch() {
        let mut s = mmc_service(ring_config());
        let sess = s.open_session().unwrap();
        let smc0 = s.smc_calls();
        for i in 0..16u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 600 + i, blkcnt: 1 })
                .unwrap();
        }
        assert_eq!(s.smc_calls(), smc0, "staging 16 entries must not enter the TEE");
        let admitted = s.ring_doorbell().unwrap();
        assert_eq!(admitted, 16);
        assert_eq!(s.smc_calls() - smc0, 1, "one doorbell switch admits the whole batch");
        assert_eq!(s.smc_doorbells(), 1);
        let done = s.drain_all();
        assert_eq!(done.len(), 16);
        // Reaping a non-empty completion ring is SMC-free.
        let before = s.smc_calls();
        let taken = s.take_completions(sess);
        assert_eq!(taken.len(), 16);
        assert_eq!(s.smc_calls(), before, "a non-empty CQ reap never crosses worlds");
        // An empty reap is a blocking wait: one world switch.
        s.take_completions(sess);
        assert_eq!(s.smc_calls(), before + 1);
        assert_eq!(s.stats().doorbells, 1);
        assert_eq!(s.stats().doorbell_entries, 16);
        assert!((s.stats().mean_doorbell_batch() - 16.0).abs() < f64::EPSILON);
    }

    #[test]
    fn sq_ring_full_is_typed_backpressure_not_a_silent_drop() {
        // The satellite regression test: a full submission ring surfaces
        // as the same typed QueueFull error the lane queue uses, carrying
        // the device, the ring depth and its capacity.
        let mut s = mmc_service(ServeConfig { sq_depth: 2, ..ring_config() });
        let sess = s.open_session().unwrap();
        let rd = |i: u32| Request::Read { device: Device::Mmc, blkid: 700 + i, blkcnt: 1 };
        s.submit(sess, rd(0)).unwrap();
        s.submit(sess, rd(1)).unwrap();
        match s.submit(sess, rd(2)) {
            Err(ServeError::QueueFull { device, depth, capacity, high_water, fleet }) => {
                assert_eq!(device, Device::Mmc);
                assert_eq!(depth, 2);
                assert_eq!(capacity, 2);
                assert_eq!(high_water, 2, "the ring saturated at its full depth");
                assert_eq!(fleet.len(), 1, "the routed reject reports the whole (1-lane) fleet");
            }
            other => panic!("expected ring-full backpressure, got {other:?}"),
        }
        assert_eq!(s.stats().rejected, 1);
        // Nothing staged was lost: a doorbell + drain completes exactly
        // the two accepted requests, and the ring has room again.
        let done = s.drain_all();
        assert_eq!(done.len(), 2);
        s.submit(sess, rd(2)).unwrap();
        assert_eq!(s.drain_all().len(), 1);
        assert_eq!(s.stats().submitted, 3);
    }

    #[test]
    fn doorbell_lane_overflow_completes_with_queue_full_errors() {
        // The lane queue (not the ring) is the saturated bound: admitted
        // entries that do not fit complete with a typed error in the
        // session's CQ instead of disappearing.
        let mut s = mmc_service(ServeConfig { queue_capacity: 1, sq_depth: 4, ..ring_config() });
        let sess = s.open_session().unwrap();
        for i in 0..3u32 {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 710 + i, blkcnt: 1 })
                .unwrap();
        }
        assert_eq!(s.ring_doorbell().unwrap(), 3);
        assert_eq!(s.stats().rejected, 2);
        let done = s.drain_all();
        assert_eq!(done.len(), 1, "only the admitted request executes");
        let taken = s.take_completions(sess);
        assert_eq!(taken.len(), 3, "rejected entries still surface to the client");
        let errors =
            taken.iter().filter(|c| matches!(c.result, Err(ServeError::QueueFull { .. }))).count();
        assert_eq!(errors, 2);
    }

    #[test]
    fn ring_and_per_call_submits_produce_identical_payloads() {
        // The same write-then-read program down both submission paths
        // must read back byte-identical data.
        let run = |mode: SubmitMode| -> Vec<u8> {
            let mut s = mmc_service(ServeConfig { submit_mode: mode, ..ring_config() });
            let sess = s.open_session().unwrap();
            let data: Vec<u8> = (0..8 * BLOCK).map(|i| (i % 249) as u8).collect();
            s.submit(sess, Request::Write { device: Device::Mmc, blkid: 800, data }).unwrap();
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 800, blkcnt: 8 }).unwrap();
            let done = s.drain_all();
            assert_eq!(done.len(), 2);
            let read = s.take_completions(sess).pop().expect("read completion");
            match read.result.expect("read ok") {
                Payload::Read(bytes) => bytes,
                other => panic!("unexpected payload {other:?}"),
            }
        };
        assert_eq!(run(SubmitMode::Ring), run(SubmitMode::PerCall));
    }

    #[test]
    fn ring_latency_includes_the_wait_for_the_doorbell() {
        // Entries are stamped at enqueue but only become servable at the
        // doorbell: completed >= arrived-at-doorbell >= submitted.
        let mut s = mmc_service(ring_config());
        let sess = s.open_session().unwrap();
        s.submit(sess, Request::Read { device: Device::Mmc, blkid: 900, blkcnt: 1 }).unwrap();
        let staged_at = s.control_now_ns();
        s.client_think_ns(2_000_000); // the client dawdles before ringing
        s.ring_doorbell().unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].submitted_ns, staged_at, "latency counts from the enqueue");
        assert!(
            done[0].completed_ns >= staged_at + 2_000_000,
            "the lane cannot serve an entry the TEE has not seen"
        );
    }

    #[test]
    fn mid_coalesce_divergence_fails_only_the_merged_sessions_and_lane_recovers() {
        use dlt_core::ReplayError;
        let config = || ServeConfig { block_granularities: vec![1, 8], ..ServeConfig::default() };
        let seed: Vec<u8> = (0..16 * BLOCK).map(|i| (i % 241) as u8).collect();
        // A never-faulted reference service running the same seed write
        // and the same final read.
        let mut fresh = mmc_service(config());
        let fw = fresh.open_session().unwrap();
        fresh
            .submit(fw, Request::Write { device: Device::Mmc, blkid: 100, data: seed.clone() })
            .unwrap();
        fresh.drain_all();

        let mut s = mmc_service(config());
        let writer = s.open_session().unwrap();
        s.submit(writer, Request::Write { device: Device::Mmc, blkid: 100, data: seed.clone() })
            .unwrap();
        s.drain_all();

        // Sticky read-template fault: the merged span diverges, and so
        // does every member fallback — the whole coalesced run must fail
        // with typed divergences, never a panic or a wedged lane.
        let outcome = s
            .inject_fault(
                Device::Mmc,
                FaultPlan { template: Some("_rd_".into()), sticky: true, ..FaultPlan::default() },
            )
            .unwrap();
        let victims: Vec<SessionId> = (0..4).map(|_| s.open_session().unwrap()).collect();
        for (i, v) in victims.iter().enumerate() {
            s.submit(
                *v,
                Request::Read { device: Device::Mmc, blkid: 100 + 2 * i as u32, blkcnt: 2 },
            )
            .unwrap();
        }
        let failed = s.drain_all();
        assert_eq!(failed.len(), 4);
        for c in &failed {
            assert!(
                matches!(&c.result, Err(ServeError::Replay(ReplayError::Diverged(_)))),
                "expected a typed divergence, got {:?}",
                c.result
            );
            assert!(
                c.completed_ns >= c.submitted_ns,
                "the lane clock stayed monotone through the divergence"
            );
        }
        assert!(outcome.lock().unwrap().engaged_invocations >= 1, "the fault actually fired");

        // Clear the fault: the lane must verify healthy and then serve an
        // untouched session byte-identically to the never-faulted lane.
        s.clear_fault(Device::Mmc).unwrap();
        s.lane_health_check(Device::Mmc).unwrap();
        let untouched = s.open_session().unwrap();
        s.submit(untouched, Request::Read { device: Device::Mmc, blkid: 100, blkcnt: 16 }).unwrap();
        let healthy = s.drain_all();
        assert_eq!(healthy.len(), 1);

        let fr = fresh.open_session().unwrap();
        fresh.submit(fr, Request::Read { device: Device::Mmc, blkid: 100, blkcnt: 16 }).unwrap();
        let reference = fresh.drain_all();
        let bytes = |c: &Completion| match c.result.clone().expect("read ok") {
            Payload::Read(b) => b,
            other => panic!("unexpected payload {other:?}"),
        };
        assert_eq!(
            bytes(&healthy[0]),
            bytes(&reference[0]),
            "post-divergence lane reads diverged from a fresh lane"
        );
        assert_eq!(bytes(&healthy[0]), seed);
        assert_eq!(s.lane_status()[0].queued, 0, "the lane queue drained");
    }

    #[test]
    fn admission_qos_throttles_the_flooder_and_keeps_queue_full_coherent() {
        let mut s = mmc_service(ServeConfig {
            queue_capacity: 4,
            coalesce: false,
            hold_budget_ns: 0,
            qos: QosConfig { enabled: true, default_qos: SessionQos::default() },
            block_granularities: vec![1],
            ..ServeConfig::default()
        });
        let flooder = s.open_session().unwrap();
        let victim = s.open_session().unwrap();
        s.set_session_qos(flooder, SessionQos { rate_rps: 1_000, burst: 2, weight: 1 }).unwrap();
        s.set_session_qos(victim, SessionQos { rate_rps: 0, burst: 16, weight: 6 }).unwrap();
        let rd = |i: u32| Request::Read { device: Device::Mmc, blkid: i, blkcnt: 1 };
        s.submit(flooder, rd(0)).unwrap();
        s.submit(flooder, rd(1)).unwrap();
        match s.submit(flooder, rd(2)) {
            Err(ServeError::Throttled { session, device, retry_after_ns }) => {
                assert_eq!(session, flooder);
                assert_eq!(device, Device::Mmc);
                assert!(retry_after_ns > 0, "the bucket names its refill horizon");
            }
            other => panic!("expected Throttled, got {other:?}"),
        }
        assert_eq!(s.stats().throttled, 1);
        assert_eq!(s.stats().rejected, 0, "throttling is not queue backpressure");
        // The satellite regression: a throttled submit reserved nothing,
        // so saturating the queue afterwards reports the same coherent
        // fleet snapshot QueueFull always carried.
        s.submit(victim, rd(3)).unwrap();
        s.submit(victim, rd(4)).unwrap();
        match s.submit(victim, rd(5)) {
            Err(ServeError::QueueFull { depth, capacity, fleet, .. }) => {
                assert_eq!((depth, capacity), (4, 4));
                assert_eq!(fleet.len(), 1, "the routed reject reports the whole fleet");
                assert_eq!(fleet[0].depth, 4, "throttled submits never occupied a slot");
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // The QueueFull rollback refunded the victim's QoS charge; after
        // a drain both the depth and the share are free again.
        let done = s.drain_all();
        assert_eq!(done.len(), 4);
        s.take_completions(victim);
        s.submit(victim, rd(6)).unwrap();
        assert_eq!(s.stats().throttled, 1, "only the flooder was ever throttled");
    }

    #[test]
    fn diverged_clean_reads_fail_over_to_a_healthy_sibling() {
        let policy = RoutePolicy::HashShard { chunk_blocks: 16 };
        let mut s = mmc_fleet(
            2,
            ServeConfig {
                coalesce: false,
                hold_budget_ns: 0,
                route: RouteConfig { policy, spill: true },
                failover: FailoverConfig {
                    enabled: true,
                    retry_budget: 2,
                    backoff_base_ns: 50_000,
                },
                block_granularities: vec![1],
                ..ServeConfig::default()
            },
        );
        let sess = s.open_session().unwrap();
        let outcome = s
            .inject_fault_at(
                LaneId { device: Device::Mmc, replica: 0 },
                FaultPlan { template: Some("_rd_".into()), sticky: true, ..FaultPlan::default() },
            )
            .unwrap();
        let homed0: Vec<u32> =
            (0..200u32).filter(|b| policy.replica_for(*b, 2) == 0).take(4).collect();
        let ids: Vec<RequestId> = homed0
            .iter()
            .map(|&b| {
                s.submit(sess, Request::Read { device: Device::Mmc, blkid: b, blkcnt: 1 }).unwrap()
            })
            .collect();
        let done = s.drain_all();
        assert_eq!(done.len(), 4, "every read completes exactly once — zero lost, zero doubled");
        for id in &ids {
            let c = done.iter().find(|c| c.id == *id).unwrap();
            assert!(c.result.is_ok(), "the sibling retry served clean bytes: {:?}", c.result);
            assert!(c.completed_ns >= c.submitted_ns, "the backoff kept virtual time monotone");
        }
        assert!(s.stats().failovers >= 4, "each faulted read was swallowed and re-admitted");
        assert_eq!(s.stats().failover_exhausted, 0);
        assert!(outcome.lock().unwrap().engaged_invocations >= 1, "the fault actually fired");
    }

    #[test]
    fn failover_budget_exhausts_into_a_typed_attempt_trail() {
        let mut s = mmc_fleet(
            2,
            ServeConfig {
                coalesce: false,
                hold_budget_ns: 0,
                route: RouteConfig {
                    policy: RoutePolicy::HashShard { chunk_blocks: 16 },
                    spill: true,
                },
                failover: FailoverConfig {
                    enabled: true,
                    retry_budget: 1,
                    backoff_base_ns: 50_000,
                },
                block_granularities: vec![1],
                ..ServeConfig::default()
            },
        );
        let sess = s.open_session().unwrap();
        for replica in 0..2 {
            s.inject_fault_at(
                LaneId { device: Device::Mmc, replica },
                FaultPlan { template: Some("_rd_".into()), sticky: true, ..FaultPlan::default() },
            )
            .unwrap();
        }
        let id =
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: 7, blkcnt: 1 }).unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].id, id);
        match &done[0].result {
            Err(ServeError::Exhausted { device, attempts }) => {
                assert_eq!(*device, Device::Mmc);
                assert_eq!(attempts.len(), 2, "budget 1 = the home execution plus one retry");
                assert_ne!(attempts[0].replica, attempts[1].replica);
                assert!(attempts[0].at_ns <= attempts[1].at_ns, "the trail is chronological");
            }
            other => panic!("expected the Exhausted trail, got {other:?}"),
        }
        assert_eq!(s.stats().failovers, 1);
        assert_eq!(s.stats().failover_exhausted, 1);
    }

    #[test]
    fn watchdog_quarantines_a_diverging_lane_and_restores_it_after_probation() {
        let policy = RoutePolicy::HashShard { chunk_blocks: 16 };
        let mut s = mmc_fleet(
            2,
            ServeConfig {
                coalesce: false,
                hold_budget_ns: 0,
                route: RouteConfig { policy, spill: true },
                failover: FailoverConfig {
                    enabled: true,
                    retry_budget: 2,
                    backoff_base_ns: 50_000,
                },
                supervise: SuperviseConfig {
                    enabled: true,
                    divergence_threshold: 2,
                    window: 8,
                    probation_ok: 2,
                },
                block_granularities: vec![1],
                ..ServeConfig::default()
            },
        );
        let sess = s.open_session().unwrap();
        s.inject_fault_at(
            LaneId { device: Device::Mmc, replica: 0 },
            FaultPlan { template: Some("_rd_".into()), sticky: true, ..FaultPlan::default() },
        )
        .unwrap();
        let homed0: Vec<u32> =
            (0..200u32).filter(|b| policy.replica_for(*b, 2) == 0).take(4).collect();
        // Exactly threshold-many faulted reads: both diverge, the second
        // trips the watchdog, and both are served by the sibling.
        for &b in &homed0[..2] {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: b, blkcnt: 1 }).unwrap();
        }
        let stormed = s.drain_all();
        assert_eq!(stormed.len(), 2, "the storm's reads completed via failover — zero lost");
        assert!(stormed.iter().all(|c| c.result.is_ok()));
        assert_eq!(s.stats().quarantines, 1, "the threshold tripped exactly once");
        // The quarantine's soft reset cleared the fault and the probe
        // passed: the lane is on probation, serving traffic again.
        let health = s.lane_health_check_at(LaneId { device: Device::Mmc, replica: 0 }).unwrap();
        assert_eq!(health.state, crate::LaneState::Probation);
        // probation_ok clean completions on the lane restore it.
        s.take_completions(sess);
        for &b in &homed0[..2] {
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: b, blkcnt: 1 }).unwrap();
        }
        let probation = s.drain_all();
        assert_eq!(probation.len(), 2);
        assert!(probation.iter().all(|c| c.result.is_ok()));
        assert_eq!(s.stats().lane_restores, 1, "the clean window restored the lane");
        let health = s.lane_health_check_at(LaneId { device: Device::Mmc, replica: 0 }).unwrap();
        assert_eq!(health.state, crate::LaneState::Healthy);
        assert_eq!(s.stats().failover_exhausted, 0);
    }

    #[test]
    fn session_churn_releases_the_registry_series() {
        let mut s = mmc_service(ServeConfig {
            obs: ObsConfig::MetricsOnly,
            block_granularities: vec![1],
            ..ServeConfig::default()
        });
        let keeper = s.open_session().unwrap();
        for i in 0..50u32 {
            let sess = s.open_session().unwrap();
            s.submit(sess, Request::Read { device: Device::Mmc, blkid: i % 8, blkcnt: 1 }).unwrap();
            s.drain_all();
            s.take_completions(sess);
            s.close_session(sess);
        }
        // Only the live sessions keep a series; churned ones are gone.
        assert_eq!(s.metrics.session_series_count(), 1, "closed sessions left no series behind");
        let snap = s.metrics_snapshot().unwrap();
        assert_eq!(snap.sessions.len(), 1);
        let _ = keeper;
    }

    #[test]
    fn out_of_coverage_requests_fan_error_completions() {
        let mut s =
            mmc_service(ServeConfig { block_granularities: vec![1], ..ServeConfig::default() });
        let sess = s.open_session().unwrap();
        // Far beyond the recorded blkid coverage.
        s.submit(sess, Request::Read { device: Device::Mmc, blkid: u32::MAX - 8, blkcnt: 1 })
            .unwrap();
        let done = s.drain_all();
        assert_eq!(done.len(), 1);
        match &done[0].result {
            Err(ServeError::Replay(e)) => {
                assert!(e.to_string().contains("coverage"), "got: {e}");
            }
            other => panic!("expected a replay error, got {other:?}"),
        }
    }
}
