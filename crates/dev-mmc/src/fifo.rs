//! The data FIFO link shared by the SDHOST controller and the DMA engine.
//!
//! On the real SoC the DMA engine issues reads/writes against the SDDATA
//! register using the DREQ handshake. In the simulation the two device models
//! share this byte FIFO: the controller fills it with card data (reads) or
//! drains it into the card (writes); the DMA engine moves bytes between the
//! FIFO and physical memory according to its control blocks.

use std::collections::VecDeque;

/// Direction of the transfer currently owning the FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoDir {
    /// No transfer in flight.
    Idle,
    /// Card -> host (a read command).
    CardToHost,
    /// Host -> card (a write command).
    HostToCard,
}

/// The shared FIFO.
#[derive(Debug)]
pub struct FifoLink {
    buf: VecDeque<u8>,
    dir: FifoDir,
    /// Virtual time at which data in the FIFO becomes valid (models the card
    /// access latency of the in-flight command).
    ready_ns: u64,
    /// Total bytes that have passed through, for statistics.
    bytes_moved: u64,
}

impl Default for FifoLink {
    fn default() -> Self {
        Self::new()
    }
}

impl FifoLink {
    /// An empty, idle FIFO.
    pub fn new() -> Self {
        FifoLink { buf: VecDeque::new(), dir: FifoDir::Idle, ready_ns: 0, bytes_moved: 0 }
    }

    /// Current direction.
    pub fn dir(&self) -> FifoDir {
        self.dir
    }

    /// Begin a transfer in `dir`; any stale bytes are discarded.
    pub fn begin(&mut self, dir: FifoDir, ready_ns: u64) {
        self.buf.clear();
        self.dir = dir;
        self.ready_ns = ready_ns;
    }

    /// End the transfer and return to idle, discarding residual bytes.
    ///
    /// Returns the number of residual bytes discarded — a non-zero value is
    /// exactly the "residual state left from prior IO jobs" divergence source
    /// the paper lists in §3.3.
    pub fn finish(&mut self) -> usize {
        let residual = self.buf.len();
        self.buf.clear();
        self.dir = FifoDir::Idle;
        residual
    }

    /// Whether data queued for a read is valid at `now_ns`.
    pub fn data_ready(&self, now_ns: u64) -> bool {
        now_ns >= self.ready_ns
    }

    /// Virtual time at which queued data becomes valid.
    pub fn ready_at(&self) -> u64 {
        self.ready_ns
    }

    /// Number of bytes currently queued.
    pub fn level(&self) -> usize {
        self.buf.len()
    }

    /// Number of 32-bit words currently queued (for the SDEDM FIFO field).
    pub fn level_words(&self) -> usize {
        self.buf.len() / 4
    }

    /// Queue bytes (card data on reads, DMA/PIO data on writes).
    pub fn push_bytes(&mut self, data: &[u8]) {
        self.buf.extend(data.iter().copied());
        self.bytes_moved += data.len() as u64;
    }

    /// Queue one little-endian word.
    pub fn push_word(&mut self, word: u32) {
        self.push_bytes(&word.to_le_bytes());
    }

    /// Dequeue up to `out.len()` bytes into `out` without allocating (the
    /// DMA engine's hot path). Returns the number of bytes dequeued.
    pub fn pop_into(&mut self, out: &mut [u8]) -> usize {
        let take = out.len().min(self.buf.len());
        let (a, b) = self.buf.as_slices();
        let na = take.min(a.len());
        out[..na].copy_from_slice(&a[..na]);
        if take > na {
            out[na..take].copy_from_slice(&b[..take - na]);
        }
        self.buf.drain(..take);
        take
    }

    /// Dequeue up to `n` bytes.
    pub fn pop_bytes(&mut self, n: usize) -> Vec<u8> {
        let take = n.min(self.buf.len());
        let mut out = vec![0u8; take];
        self.pop_into(&mut out);
        out
    }

    /// Dequeue one little-endian word (missing bytes read as zero, which is
    /// what an underrun looks like to software on the real part).
    pub fn pop_word(&mut self) -> u32 {
        let mut w = [0u8; 4];
        self.pop_into(&mut w);
        u32::from_le_bytes(w)
    }

    /// Total bytes ever pushed through the FIFO.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_finish_lifecycle() {
        let mut f = FifoLink::new();
        assert_eq!(f.dir(), FifoDir::Idle);
        f.begin(FifoDir::CardToHost, 500);
        assert_eq!(f.dir(), FifoDir::CardToHost);
        assert!(!f.data_ready(499));
        assert!(f.data_ready(500));
        f.push_bytes(&[1, 2, 3, 4]);
        assert_eq!(f.finish(), 4, "residual bytes are reported");
        assert_eq!(f.dir(), FifoDir::Idle);
        assert_eq!(f.level(), 0);
    }

    #[test]
    fn word_round_trip_is_little_endian() {
        let mut f = FifoLink::new();
        f.push_word(0xdead_beef);
        assert_eq!(f.level_words(), 1);
        assert_eq!(f.pop_word(), 0xdead_beef);
    }

    #[test]
    fn underrun_reads_zero_padded() {
        let mut f = FifoLink::new();
        f.push_bytes(&[0xaa, 0xbb]);
        assert_eq!(f.pop_word(), 0x0000_bbaa);
        assert_eq!(f.pop_word(), 0);
    }

    #[test]
    fn pop_bytes_never_exceeds_level() {
        let mut f = FifoLink::new();
        f.push_bytes(&[1, 2, 3]);
        let got = f.pop_bytes(10);
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(f.level(), 0);
    }

    #[test]
    fn begin_discards_stale_bytes() {
        let mut f = FifoLink::new();
        f.push_bytes(&[9; 12]);
        f.begin(FifoDir::HostToCard, 0);
        assert_eq!(f.level(), 0);
    }

    #[test]
    fn statistics_accumulate() {
        let mut f = FifoLink::new();
        f.push_bytes(&[0; 100]);
        f.pop_bytes(50);
        f.push_bytes(&[0; 28]);
        assert_eq!(f.bytes_moved(), 128);
    }
}
