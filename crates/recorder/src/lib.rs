//! # dlt-recorder — the record half of the driverlet toolkit
//!
//! The paper's recorder instruments QEMU's dynamic binary translation with
//! S2E to (a) log every driver/device interaction, (b) discover which input
//! values change the device's state-transition path (selective symbolic
//! execution), and (c) discover how output values derive from earlier inputs
//! (dynamic taint tracking), plus a static pass that lifts polling loops into
//! meta events (§4, §6.1).
//!
//! No DBT or symbolic-execution engine is available in this reproduction, so
//! the same three questions are answered observationally — the substitution
//! DESIGN.md documents:
//!
//! * [`trace::TracingIo`] interposes on the gold drivers' kernel-environment
//!   interface and logs every register access, shared-memory access, DMA
//!   allocation, interrupt wait, delay and payload copy (the DBT substitute).
//! * [`analyze`] performs **differential concolic analysis**: the same record
//!   entry is executed several times with perturbed parameters and a skewed
//!   DMA allocator; aligning the traces reveals which values are constant
//!   (→ constraints), which follow a parameter or an earlier device-produced
//!   value (→ taint expressions / captures), and which are payload
//!   (→ user-data sinks). Runs that change the *shape* of the trace mark
//!   path boundaries and become parameter constraints.
//! * [`analyze::fold_adhoc_loops`] folds ad-hoc polling loops in a raw trace
//!   into `poll` meta events; `readl_poll`-style helpers are recorded as poll
//!   events directly (the static-loop-analysis substitute).
//! * [`campaign`] packages record campaigns for the three devices (MMC, USB
//!   mass storage, VCHIQ camera) into signed [`dlt_template::Driverlet`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod campaign;
pub mod trace;

pub use analyze::{synthesize_template, RecordRun, TemplateSpec};
pub use campaign::{
    emit_binary_bundle, record_camera_driverlet, record_mmc_driverlet, record_usb_driverlet,
    DEV_KEY,
};
pub use trace::{Trace, TraceOp, TracingIo};

/// Errors produced by the recording toolkit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecorderError {
    /// A gold-driver run failed while recording.
    DriverFailed(String),
    /// Perturbed runs could not be aligned with the base run.
    Misaligned(String),
    /// Expression synthesis failed for a value that must be generalised.
    Unsynthesizable(String),
    /// The generated template failed static vetting.
    Invalid(String),
}

impl std::fmt::Display for RecorderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecorderError::DriverFailed(s) => write!(f, "gold driver failed during recording: {s}"),
            RecorderError::Misaligned(s) => write!(f, "trace alignment failed: {s}"),
            RecorderError::Unsynthesizable(s) => write!(f, "cannot synthesize expression: {s}"),
            RecorderError::Invalid(s) => write!(f, "generated template invalid: {s}"),
        }
    }
}

impl std::error::Error for RecorderError {}
