//! Service-layer throughput measurement and the `BENCH_serve.json` emitter.
//!
//! Four experiments over `dlt-serve` (all numbers are **virtual time**, so
//! reruns reproduce them exactly):
//!
//! 1. **Coalescing speedup** — 8 concurrent sessions issue striped
//!    single-block reads over one MMC device. The coalesced arm drains
//!    them through the scheduler (the anticipatory hold captures each
//!    stripe, which merges into one 8-block replay); the serial arm issues
//!    the same requests one at a time with coalescing disabled. The
//!    acceptance bar is coalesced ≥ 2x the serial requests/s.
//! 2. **Mixed traffic under LongBurst camera load** — block sessions
//!    drive MMC + USB while a camera session runs a LongBurst capture on
//!    the VCHIQ lane. Per-lane clocks keep the block lanes' completion
//!    latency on their own timelines: the report carries per-device
//!    p50/p99 and the block-read p99, which must stay **under 1 s** even
//!    though the capture takes tens of virtual seconds (the single-clock
//!    service inflated it to 4.7 s).
//! 3. **Device scaling** — weak scaling from 1 lane (MMC) over 2
//!    (MMC+USB) to 3 (MMC+USB+VCHIQ): every block lane is filled with
//!    coalescible stripes up to the same per-lane busy-time budget, the
//!    camera lane captures within that budget, and the metric is total
//!    requests per second of *makespan* (the service-time merge rule).
//!    Acceptance: 3-device throughput ≥ 1.8x the 1-device run.
//! 4. **Anticipatory-hold sweep** — one session issues 8-block bursts
//!    separated by client think time, swept over hold budgets. The merge
//!    ratio rises with the budget while p50 must stay within 10% of the
//!    no-hold baseline at the default budget (the knob's whole point).
//! 5. **Ring vs legacy submission** — one heterogeneous open-loop
//!    schedule (per-session Poisson arrivals over hot-range readers,
//!    sequential streamers and a bursty camera tenant on MMC+USB+VCHIQ)
//!    driven down both submit modes. Acceptance: ring-mode block request
//!    rate ≥ 1.5x legacy at doorbell batch 16, SMCs-per-request ≤ 0.25,
//!    and closed-loop batch-1 p50 no worse than the per-call path.
//! 6. **Wall-clock lane parallelism** — the one experiment measured in
//!    *host* time, not virtual time: N replica MMC lanes each replay the
//!    same uncoalesced read workload, sequential vs per-lane OS threads
//!    ([`ExecMode::Threaded`]), at 1/2/4/8 lanes. Acceptance (CI, when
//!    the host has ≥ 4 cores): threaded ≥ 2x sequential at 4 lanes.
//! 7. **Adversarial isolation** — the robustness plane's SLO section:
//!    a flooder tenant hammers the shared MMC lane under admission QoS
//!    while two victims run a fixed workload. Acceptance: victim p99
//!    under attack ≤ 2x the flooder-free baseline, zero victim
//!    rejections, flooder visibly throttled. Two sub-experiments ride
//!    along: a **failover storm** (sticky read fault on one replica of a
//!    3-lane fleet; ≥ 99% of clean reads must still complete via retries
//!    on siblings, the sick lane must quarantine and return to Healthy)
//!    and a **session-churn** sweep (open/close cycles must leak zero
//!    metrics series). All numbers virtual time.

use dlt_core::FaultPlan;
use dlt_obs::ObsConfig;
use dlt_recorder::campaign::{
    record_camera_driverlet_subset, record_mmc_driverlet_subset, record_usb_driverlet_subset,
};
use dlt_serve::{
    Completion, Device, DriverletService, ExecMode, FailoverConfig, LaneId, LaneState, Policy,
    QosConfig, Request, RouteConfig, RoutePolicy, ServeConfig, ServeError, SessionId, SessionQos,
    SubmitMode, SuperviseConfig, BLOCK,
};
use serde::{Deserialize, Serialize};

use crate::arrivals::{
    heterogeneous_schedule, mixed_tenant_specs, replica_fleet_specs, ArrivalEvent,
};

/// Result of the 8-session coalescing experiment (the acceptance metric).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoalescingSample {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Requests issued per arm.
    pub requests: u64,
    /// Requests per second of virtual time, serial uncoalesced arm.
    pub serial_rps: f64,
    /// Requests per second of virtual time, coalesced scheduler arm.
    pub coalesced_rps: f64,
    /// `coalesced_rps / serial_rps` — must be ≥ 2.0.
    pub speedup: f64,
    /// Mean requests folded into one replay on the coalesced arm.
    pub coalescing_ratio: f64,
}

/// Latency percentiles of one completion population (virtual microseconds).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencySample {
    /// Median completion latency.
    pub p50_us: u64,
    /// 99th-percentile completion latency.
    pub p99_us: u64,
    /// Worst completion latency.
    pub max_us: u64,
}

/// Per-device completion-latency percentiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceLatency {
    /// Device name (`mmc`, `usb`, `vchiq`).
    pub device: String,
    /// Completions on this device.
    pub completions: u64,
    /// Latency percentiles for this device.
    pub latency: LatencySample,
}

/// Result of the mixed-traffic experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MixedTrafficSample {
    /// Concurrent sessions.
    pub sessions: usize,
    /// Total requests completed.
    pub requests: u64,
    /// Requests per second of virtual time.
    pub rps: f64,
    /// Completion-latency percentiles over every request.
    pub latency: LatencySample,
    /// Per-device completion-latency percentiles (the multi-core payoff:
    /// block lanes no longer inherit camera time).
    pub per_device: Vec<DeviceLatency>,
    /// p99 of block (MMC+USB) completions while the LongBurst capture ran
    /// — the acceptance metric: must be < 1 s (was 4.7 s on one clock).
    pub block_p99_us: u64,
    /// Frames in the concurrent LongBurst capture.
    pub long_burst_frames: u32,
    /// Mean requests folded into one replay.
    pub coalescing_ratio: f64,
    /// Submits rejected by queue-full backpressure (each retried after a
    /// per-device drain).
    pub backpressure_rejections: u64,
}

/// One point of the device-scaling experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of served devices (lanes / TEE cores).
    pub devices: usize,
    /// Requests completed.
    pub requests: u64,
    /// Virtual makespan of the run (service-time delta).
    pub elapsed_ms: f64,
    /// Requests per second of virtual makespan.
    pub rps: f64,
}

/// Result of the 1→3-device scaling experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingSample {
    /// Per-lane busy-time fill budget (milliseconds).
    pub lane_budget_ms: f64,
    /// Throughput at 1, 2 and 3 devices.
    pub points: Vec<ScalingPoint>,
    /// `rps(3 devices) / rps(1 device)` — must be ≥ 1.8.
    pub ratio_3v1: f64,
}

/// One point of the anticipatory-hold sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HoldSweepPoint {
    /// Hold budget in microseconds (0 = holding disabled).
    pub hold_budget_us: u64,
    /// Whether this is the service default budget.
    pub is_default: bool,
    /// Completion-latency percentiles.
    pub latency: LatencySample,
    /// Mean requests folded into one replay.
    pub coalescing_ratio: f64,
    /// Dispatches that anticipated (plug engaged).
    pub holds: u64,
}

/// One arm (submit mode) of the ring-vs-legacy comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingArmSample {
    /// Submit mode label (`per-call` or `ring`).
    pub mode: String,
    /// Requests completed (block + camera).
    pub requests: u64,
    /// Block (MMC+USB) requests completed — the throughput numerator.
    pub block_requests: u64,
    /// Block-plane makespan in virtual milliseconds: the max of the
    /// control (submission) clock and the block lanes' clocks. The camera
    /// lane is excluded — its multi-second sensor-init floor is identical
    /// in both modes and overlaps the block plane by the multi-core model,
    /// so including it would only mask the submission-spine difference
    /// under comparison.
    pub elapsed_ms: f64,
    /// Block requests per second of block-plane makespan.
    pub rps: f64,
    /// World switches performed over the run (doorbells, per-call
    /// invokes, reaps and waits — everything).
    pub smcs: u64,
    /// `smcs / requests` — the amortisation acceptance metric.
    pub smcs_per_request: f64,
    /// Doorbell SMCs rung (0 on the per-call arm).
    pub doorbells: u64,
    /// Mean submission-ring entries admitted per doorbell.
    pub mean_doorbell_batch: f64,
    /// Peak submission-ring occupancy across lanes (high-water / depth).
    pub sq_occupancy: f64,
    /// Block-request completion-latency percentiles.
    pub block_latency: LatencySample,
    /// Mean requests folded into one replay.
    pub coalescing_ratio: f64,
}

/// Closed-loop p50 submit latency at doorbell batch 1 — the "rings must
/// not tax the latency-sensitive client" check.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubmitLatencySample {
    /// Closed-loop single-block reads issued per arm.
    pub requests: u64,
    /// p50 request latency on the per-call path (microseconds).
    pub legacy_p50_us: u64,
    /// p50 request latency with a doorbell after every enqueue.
    pub ring_p50_us: u64,
}

/// The ring-vs-legacy submission-spine comparison over one heterogeneous
/// open-loop schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RingComparisonSample {
    /// Entries staged between doorbells on the ring arm.
    pub doorbell_batch: usize,
    /// The one-SMC-per-operation arm.
    pub legacy: RingArmSample,
    /// The shared-memory-ring arm (same schedule, same bundles).
    pub ring: RingArmSample,
    /// `ring.rps / legacy.rps` — must be ≥ 1.5.
    pub speedup: f64,
    /// The batch-1 closed-loop latency check (ring p50 must not exceed
    /// legacy p50).
    pub batch1: SubmitLatencySample,
}

/// One lane count of the wall-clock lane-parallelism experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WallClockPoint {
    /// Replica MMC lanes (each its own TEE core; on the threaded arm,
    /// each its own OS thread).
    pub lanes: usize,
    /// Total requests completed per arm (`lanes * requests_per_lane`).
    pub requests: u64,
    /// Host wall-clock makespan of the sequential arm (milliseconds).
    pub sequential_ms: f64,
    /// Host wall-clock makespan of the threaded arm (milliseconds).
    pub threaded_ms: f64,
    /// `sequential_ms / threaded_ms` — the CI gate demands ≥ 2.0 at 4
    /// lanes when the host has ≥ 4 cores.
    pub speedup: f64,
}

/// The wall-clock lane-parallelism experiment. Unlike every other section
/// of this report these numbers are **host time** (`std::time::Instant`),
/// so they vary run to run and machine to machine; `host_cores` records
/// how much hardware parallelism the measurement had, and the ≥ 2x gate
/// at 4 lanes only applies when `host_cores >= 4`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WallClockSample {
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_cores: usize,
    /// Uncoalesced 8-block reads issued per lane, per arm.
    pub requests_per_lane: u64,
    /// One point per lane count (1, 2, 4, 8).
    pub points: Vec<WallClockPoint>,
}

/// One lane count of the routed weak-scaling experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutedScalingPoint {
    /// Replica MMC lanes behind the shard router.
    pub lanes: usize,
    /// Open-loop tenant sessions offered (three per lane).
    pub sessions: usize,
    /// Requests completed (scales with the lane count: weak scaling).
    pub requests: u64,
    /// Host wall-clock makespan in milliseconds.
    pub elapsed_ms: f64,
    /// Requests per second of host time.
    pub rps: f64,
    /// Clean reads shed from a saturated home shard to a sibling.
    pub spills: u64,
    /// Spans split across more than one replica.
    pub stripe_fanouts: u64,
}

/// The deterministic spill experiment: four replicas behind tiny queues,
/// a balanced arm (each tenant on its own home shard) vs a skewed arm
/// (every tenant hammering one shard's extent), all numbers virtual time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutedSpillSample {
    /// Replica lanes in the fleet.
    pub replicas: usize,
    /// Per-lane queue capacity (kept tiny so the hot shard saturates).
    pub queue_capacity: usize,
    /// Reads completed per arm.
    pub requests: u64,
    /// p99 completion latency of the balanced arm (virtual microseconds).
    pub balanced_p99_us: u64,
    /// p99 of the skewed arm, spill enabled.
    pub skewed_p99_us: u64,
    /// `skewed_p99_us / balanced_p99_us` — the acceptance gate demands
    /// ≤ 2.0: shedding must keep the victim's tail near the balanced
    /// baseline instead of serialising on the hot shard.
    pub p99_ratio: f64,
    /// Clean reads shed to siblings on the skewed arm (must be > 0).
    pub spills: u64,
    /// Fleet-wide rejections on the skewed arm.
    pub rejections: u64,
}

/// The routed replica-fleet section: host-time weak scaling out to 8–16
/// lanes plus the spill experiment. Scaling numbers are **host time**
/// (like [`WallClockSample`]); `host_cores` in the wall-clock section
/// records how much hardware parallelism they had, and the ≥ 1.7x gate at
/// 8 vs 4 lanes only applies when it is ≥ 8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutedSample {
    /// Placement policy of the scaling curve (`stripe` — consecutive hot
    /// chunks round-robin exactly one tenant group per replica).
    pub policy: String,
    /// Requests each open-loop session submits.
    pub requests_per_session: u32,
    /// One point per lane count (1/2/4/8, plus 16 on full runs).
    pub points: Vec<RoutedScalingPoint>,
    /// `rps(8 lanes) / rps(4 lanes)` — near-linear weak scaling wants
    /// 2.0; the gate (on ≥ 8-core hosts) demands ≥ 1.7.
    pub ratio_8v4: f64,
    /// The deterministic spill experiment.
    pub spill: RoutedSpillSample,
}

/// The failover-storm sub-experiment: a sticky read fault on one replica
/// of a 3-lane MMC fleet, failover + supervision enabled. Clean reads
/// homed on the sick shard must retry on siblings, the watchdog must
/// quarantine and then restore the lane, and nothing may be lost.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailoverSample {
    /// Replica lanes in the fleet.
    pub replicas: usize,
    /// Clean single-block reads submitted (storm + recovery phases).
    pub clean_reads: u64,
    /// Completions that carried a successful payload.
    pub completed_ok: u64,
    /// `completed_ok / clean_reads` — the gate demands ≥ 0.99.
    pub completion_rate: f64,
    /// Reads that never produced a completion at all — must be 0.
    pub lost: u64,
    /// Diverged executions retried on a healthy sibling (must be > 0).
    pub failovers: u64,
    /// Watchdog quarantine trips (must be ≥ 1; stale pre-reset
    /// divergences reaped during probation may legitimately re-trip it).
    pub quarantines: u64,
    /// Whether the faulted lane finished the run back in
    /// [`LaneState::Healthy`] after serving its probation.
    pub lane_restored: bool,
}

/// The session-churn sub-experiment: open/submit/close cycles against a
/// long-lived resident. The gate demands zero leaked per-session metrics
/// series once the churn quiesces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChurnSample {
    /// Ephemeral open/close cycles driven through the gate trustlet.
    pub cycles: u64,
    /// Metrics series still alive beyond the resident baseline — must
    /// be 0.
    pub leaked_series: u64,
}

/// The adversarial-isolation experiment: a flooder tenant vs two victims
/// on one MMC lane under admission QoS, plus the failover-storm and
/// session-churn sub-experiments. All numbers are virtual time, so the
/// sample reproduces exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IsolationSample {
    /// Victim sessions sharing the lane with the flooder.
    pub victims: usize,
    /// Victim reads completed per arm.
    pub victim_requests: u64,
    /// Victim p99 completion latency with no flooder (virtual
    /// microseconds).
    pub baseline_p99_us: u64,
    /// Victim p99 with the flooder hammering the same lane under QoS.
    pub attack_p99_us: u64,
    /// `attack_p99_us / baseline_p99_us` — the gate demands ≤ 2.0: the
    /// admission gate must keep the flood from reaching the victims'
    /// tail.
    pub p99_ratio: f64,
    /// Victim submits rejected or throttled on the attack arm — must
    /// be 0 (the whole point of per-tenant admission).
    pub victim_rejections: u64,
    /// Flooder submits turned away with [`ServeError::Throttled`]
    /// (must be > 0: the flood is real and the gate visibly bites).
    pub flooder_throttled: u64,
    /// Flooder requests that were admitted and completed.
    pub flooder_completed: u64,
    /// The failover-storm sub-experiment.
    pub failover: FailoverSample,
    /// The session-churn sub-experiment.
    pub churn: ChurnSample,
}

/// The persisted `BENCH_serve.json` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchReport {
    /// Workload description.
    pub workload: String,
    /// The 8-session coalescing acceptance experiment.
    pub coalescing: CoalescingSample,
    /// The mixed-traffic experiment (per-device latency under camera load).
    pub mixed: MixedTrafficSample,
    /// The 1→3-device scaling experiment.
    pub scaling: ScalingSample,
    /// The anticipatory-hold budget sweep.
    pub hold_sweep: Vec<HoldSweepPoint>,
    /// The ring-vs-legacy submission comparison (world-switch
    /// amortisation).
    pub ring: RingComparisonSample,
    /// The sequential-vs-threaded wall-clock comparison (host time).
    pub wall_clock: WallClockSample,
    /// The routed replica-fleet weak-scaling and spill experiments.
    /// Reports persisted before the shard router existed fail to parse
    /// (this field is required); consumers treat that as a stale artifact
    /// and regenerate.
    pub routed: RoutedSample,
    /// The adversarial-isolation experiment (admission QoS, failover
    /// storm, session churn). Required for the same reason as `routed`:
    /// artifacts persisted before the robustness plane fail to parse and
    /// get regenerated.
    pub isolation: IsolationSample,
}

fn mmc_config(coalesce: bool) -> ServeConfig {
    ServeConfig {
        coalesce,
        policy: Policy::Fifo,
        block_granularities: vec![1, 8, 32],
        ..ServeConfig::default()
    }
}

/// The coalescing experiment: `sessions` clients read a striped sequential
/// range (session i reads block `base + round*sessions + i`), `rounds`
/// times.
pub fn run_coalescing_bench(sessions: usize, rounds: u32) -> CoalescingSample {
    // Coalesced arm: all sessions submit, then one drain per round; the
    // anticipatory hold captures the whole stripe, which merges into a
    // single multi-block replay.
    let mut service =
        DriverletService::new(&[Device::Mmc], mmc_config(true)).expect("build coalesced service");
    let ids: Vec<u32> = (0..sessions).map(|_| service.open_session().unwrap()).collect();
    let t0 = service.now_ns();
    let mut completed = 0u64;
    for round in 0..rounds {
        for (i, session) in ids.iter().enumerate() {
            let blkid = 1024 + round * sessions as u32 + i as u32;
            service
                .submit(*session, Request::Read { device: Device::Mmc, blkid, blkcnt: 1 })
                .expect("submit");
        }
        completed += service.drain_all().len() as u64;
    }
    let coalesced_elapsed = service.now_ns() - t0;
    let coalescing_ratio = service.stats().coalescing_ratio();

    // Serial arm: the same requests, one submit + drain at a time, no
    // coalescing — each read pays its own replay.
    let mut service =
        DriverletService::new(&[Device::Mmc], mmc_config(false)).expect("build serial service");
    let ids: Vec<u32> = (0..sessions).map(|_| service.open_session().unwrap()).collect();
    let t0 = service.now_ns();
    let mut serial_completed = 0u64;
    for round in 0..rounds {
        for (i, session) in ids.iter().enumerate() {
            let blkid = 1024 + round * sessions as u32 + i as u32;
            service
                .submit(*session, Request::Read { device: Device::Mmc, blkid, blkcnt: 1 })
                .expect("submit");
            serial_completed += service.drain_all().len() as u64;
        }
    }
    let serial_elapsed = service.now_ns() - t0;

    assert_eq!(completed, serial_completed, "both arms must serve every request");
    let secs = |ns: u64| (ns as f64 / 1e9).max(1e-12);
    let coalesced_rps = completed as f64 / secs(coalesced_elapsed);
    let serial_rps = serial_completed as f64 / secs(serial_elapsed);
    CoalescingSample {
        sessions,
        requests: completed,
        serial_rps,
        coalesced_rps,
        speedup: coalesced_rps / serial_rps.max(1e-12),
        coalescing_ratio,
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn latency_sample(latencies_us: &mut [u64]) -> LatencySample {
    latencies_us.sort_unstable();
    LatencySample {
        p50_us: percentile(latencies_us, 0.50),
        p99_us: percentile(latencies_us, 0.99),
        max_us: latencies_us.last().copied().unwrap_or(0),
    }
}

/// The mixed-traffic experiment: block sessions on MMC and USB race a
/// LongBurst camera capture on VCHIQ, all multiplexed through one service
/// under deficit round-robin. Per-lane clocks keep block latency on the
/// block lanes' own timelines.
pub fn run_mixed_bench(rounds: u32, long_burst_frames: u32) -> MixedTrafficSample {
    let config = ServeConfig {
        policy: Policy::DeficitRoundRobin { quantum_blocks: 64 },
        block_granularities: vec![1, 8, 32],
        camera_bursts: vec![1, long_burst_frames],
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let mut service = DriverletService::new(&[Device::Mmc, Device::Usb, Device::Vchiq], config)
        .expect("build mixed service");

    // 4 MMC + 4 USB block sessions and 2 camera sessions.
    let mmc: Vec<u32> = (0..4).map(|_| service.open_session().unwrap()).collect();
    let usb: Vec<u32> = (0..4).map(|_| service.open_session().unwrap()).collect();
    let cam: Vec<u32> = (0..2).map(|_| service.open_session().unwrap()).collect();

    let mut all_us: Vec<u64> = Vec::new();
    let mut block_us: Vec<u64> = Vec::new();
    let mut per_device: Vec<(String, Vec<u64>)> = Vec::new();
    let mut completed = 0u64;
    let mut record =
        |completions: &[Completion], all_us: &mut Vec<u64>, block_us: &mut Vec<u64>| {
            for c in completions {
                c.result.as_ref().expect("mixed traffic stays in coverage");
                let us = c.latency_ns() / 1_000;
                all_us.push(us);
                if c.device != Device::Vchiq {
                    block_us.push(us);
                }
                let name = c.device.to_string();
                match per_device.iter_mut().find(|(d, _)| *d == name) {
                    Some((_, v)) => v.push(us),
                    None => per_device.push((name, vec![us])),
                }
            }
        };
    // Closed-loop block clients: each round they *observe* (take) their
    // own completions — which syncs their normal-world timeline to the
    // block lanes — while never waiting on the camera session's burst.
    let block_sessions: Vec<u32> = mmc.iter().chain(usb.iter()).copied().collect();

    let t0 = service.now_ns();
    // The LongBurst capture starts first: every block completion below
    // races it on the camera lane's timeline.
    service
        .submit(cam[0], Request::Capture { frames: long_burst_frames, resolution: 720 })
        .expect("submit long burst");

    // A deterministic xorshift stream decides each session's next request.
    let mut rng = crate::arrivals::Rng::new(0x243f_6a88_85a3_08d3);
    let mut next = move || rng.next();
    for round in 0..rounds {
        for (lane, sessions) in [(Device::Mmc, &mmc), (Device::Usb, &usb)] {
            for (i, session) in sessions.iter().enumerate() {
                let r = next();
                // Hot range per session with frequent adjacency.
                let blkid = 2048 + (i as u32) * 64 + (r % 48) as u32;
                let blkcnt = [1u32, 1, 8, 8, 32][(r >> 8) as usize % 5];
                let req = if r % 4 == 0 {
                    Request::Write {
                        device: lane,
                        blkid,
                        data: vec![(r >> 16) as u8; blkcnt as usize * BLOCK],
                    }
                } else {
                    Request::Read { device: lane, blkid, blkcnt }
                };
                // Backpressure: the error names the saturated device, so
                // back off by draining only that lane, then retry.
                if let Err(ServeError::QueueFull { device, .. }) =
                    service.submit(*session, req.clone())
                {
                    service.drain_device(device);
                    service.submit(*session, req).expect("submit after device drain");
                }
            }
        }
        if round == rounds / 2 {
            // A OneShot capture midway keeps the second camera session live.
            service
                .submit(cam[1], Request::Capture { frames: 1, resolution: 720 })
                .expect("submit capture");
        }
        // Drain the block lanes this round; the camera lane keeps its
        // burst in flight on its own core.
        service.drain_device(Device::Mmc);
        service.drain_device(Device::Usb);
        for session in &block_sessions {
            let done = service.take_completions(*session);
            record(&done, &mut all_us, &mut block_us);
            completed += done.len() as u64;
        }
    }
    // Finally join on the camera lane and observe its captures.
    service.drain_all();
    for session in &cam {
        let done = service.take_completions(*session);
        record(&done, &mut all_us, &mut block_us);
        completed += done.len() as u64;
    }
    let elapsed = service.now_ns() - t0;

    let per_device = per_device
        .into_iter()
        .map(|(device, mut us)| DeviceLatency {
            device,
            completions: us.len() as u64,
            latency: latency_sample(&mut us),
        })
        .collect();
    MixedTrafficSample {
        sessions: mmc.len() + usb.len() + cam.len(),
        requests: completed,
        rps: completed as f64 / (elapsed as f64 / 1e9).max(1e-12),
        latency: latency_sample(&mut all_us),
        per_device,
        block_p99_us: percentile(
            &{
                block_us.sort_unstable();
                block_us
            },
            0.99,
        ),
        long_burst_frames,
        coalescing_ratio: service.stats().coalescing_ratio(),
        backpressure_rejections: service.stats().rejected,
    }
}

/// The scaling experiment: fill every block lane with coalescible stripes
/// up to `lane_budget_ns` of lane busy time (weak scaling), let the camera
/// lane capture within the same budget, and measure total requests per
/// second of makespan at 1, 2 and 3 devices.
pub fn run_scaling_bench(lane_budget_ns: u64) -> ScalingSample {
    let device_sets: [&[Device]; 3] =
        [&[Device::Mmc], &[Device::Mmc, Device::Usb], &[Device::Mmc, Device::Usb, Device::Vchiq]];
    let mut points = Vec::new();
    for devices in device_sets {
        let config = ServeConfig {
            policy: Policy::Fifo,
            block_granularities: vec![1, 8, 32],
            camera_bursts: vec![1],
            ..ServeConfig::default()
        };
        let mut service = DriverletService::new(devices, config).expect("build scaling service");
        let sessions: Vec<SessionId> = (0..8).map(|_| service.open_session().unwrap()).collect();
        let block_devices: Vec<Device> =
            devices.iter().copied().filter(|d| *d != Device::Vchiq).collect();
        let has_camera = devices.contains(&Device::Vchiq);

        let t0 = service.now_ns();
        let mut completed = 0u64;
        // The camera lane contributes a capture only when it fits inside
        // the same busy budget as the block lanes (OneShot ≈ 2.3 s of
        // virtual time — sensor init dominates); a capture larger than the
        // budget would turn weak scaling into a camera-latency benchmark.
        if has_camera && lane_budget_ns >= 2_400_000_000 {
            service
                .submit(sessions[0], Request::Capture { frames: 1, resolution: 720 })
                .expect("submit capture");
        }
        let busy = |service: &DriverletService, d: Device| {
            service.lane_status().iter().find(|l| l.device == d).map(|l| l.busy_ns).unwrap_or(0)
        };
        let mut round = 0u32;
        loop {
            let open: Vec<Device> = block_devices
                .iter()
                .copied()
                .filter(|d| busy(&service, *d) < lane_budget_ns)
                .collect();
            if open.is_empty() {
                break;
            }
            for device in open {
                for (i, session) in sessions.iter().enumerate() {
                    let blkid = 1024 + round * 8 + i as u32;
                    service
                        .submit(*session, Request::Read { device, blkid, blkcnt: 1 })
                        .expect("submit stripe read");
                }
            }
            completed += service.drain_all().len() as u64;
            round += 1;
        }
        completed += service.drain_all().len() as u64;
        let elapsed = service.now_ns() - t0;
        points.push(ScalingPoint {
            devices: devices.len(),
            requests: completed,
            elapsed_ms: elapsed as f64 / 1e6,
            rps: completed as f64 / (elapsed as f64 / 1e9).max(1e-12),
        });
    }
    let ratio_3v1 = points[2].rps / points[0].rps.max(1e-12);
    ScalingSample { lane_budget_ms: lane_budget_ns as f64 / 1e6, points, ratio_3v1 }
}

/// The anticipatory-hold sweep: one session issues `bursts` bursts of 8
/// adjacent single-block reads (back-to-back submits) separated by 2 ms of
/// client think time, at each hold budget. Holding captures a whole burst
/// in one plug window and serves it as a single 8-block replay; without
/// holding the first read of each burst dispatches alone and the rest
/// fragment into single-block replays.
pub fn run_hold_sweep(bursts: u32, budgets_us: &[u64]) -> Vec<HoldSweepPoint> {
    let bundle = record_mmc_driverlet_subset(&[1, 8]).expect("record mmc");
    let default_us = ServeConfig::default().hold_budget_ns / 1_000;
    let mut out = Vec::new();
    for &budget_us in budgets_us {
        let config = ServeConfig {
            policy: Policy::Fifo,
            hold_budget_ns: budget_us * 1_000,
            block_granularities: vec![1, 8],
            queue_capacity: (bursts as usize + 1) * 8,
            ..ServeConfig::default()
        };
        let mut service =
            DriverletService::with_driverlets(&[(Device::Mmc, bundle.clone())], config)
                .expect("build sweep service");
        let session = service.open_session().unwrap();
        for burst in 0..bursts {
            for i in 0..8u32 {
                service
                    .submit(
                        session,
                        Request::Read {
                            device: Device::Mmc,
                            blkid: 512 + burst * 8 + i,
                            blkcnt: 1,
                        },
                    )
                    .expect("submit burst read");
            }
            service.client_think_ns(2_000_000);
        }
        let done = service.drain_all();
        assert_eq!(done.len(), bursts as usize * 8);
        let mut us: Vec<u64> = done.iter().map(|c| c.latency_ns() / 1_000).collect();
        out.push(HoldSweepPoint {
            hold_budget_us: budget_us,
            is_default: budget_us == default_us,
            latency: latency_sample(&mut us),
            coalescing_ratio: service.stats().coalescing_ratio(),
            holds: service.stats().holds,
        });
    }
    out
}

/// Drive one heterogeneous open-loop schedule through the service in one
/// submit mode. Both arms share the schedule and the recorded bundles, so
/// the only variable is the submission spine.
fn drive_mixed_arm(
    mode: SubmitMode,
    doorbell_batch: usize,
    schedule: &[ArrivalEvent],
    bundles: &[(Device, dlt_template::Driverlet)],
    session_count: usize,
) -> RingArmSample {
    let config = ServeConfig {
        policy: Policy::Fifo,
        submit_mode: mode,
        sq_depth: 64.max(doorbell_batch),
        // The arms drain at the end of the run (virtual-time lanes replay
        // the whole arrival timeline regardless), so the lane queues must
        // hold the full backlog: this bench measures the submission spine,
        // not admission-control backpressure.
        queue_capacity: schedule.len().max(128),
        // Wide dispatch windows: a saturated lane must be able to fold a
        // deep backlog of overlapping hot reads into few spans, otherwise
        // per-span device overheads — identical in both arms — cap the
        // lane rate below the arrival rate and mask the submission spine.
        coalesce_window: 256,
        max_sessions: session_count.max(64),
        block_granularities: vec![1, 8, 32],
        camera_bursts: vec![1],
        ..ServeConfig::default()
    };
    let mut service =
        DriverletService::with_driverlets(bundles, config).expect("build ring-arm service");
    let ids: Vec<SessionId> = (0..session_count).map(|_| service.open_session().unwrap()).collect();
    let mut staged = 0usize;
    for ev in schedule {
        service.client_think_ns(ev.gap_ns);
        service.submit(ids[ev.session_idx], ev.req.clone()).expect("open-loop submit");
        if mode == SubmitMode::Ring {
            staged += 1;
            if staged >= doorbell_batch {
                service.ring_doorbell().expect("doorbell");
                staged = 0;
            }
        }
    }
    let done = service.drain_all();
    // Block-plane makespan, captured before any completion observation
    // fast-forwards the control clock to lane time.
    let status = service.lane_status();
    let block_lane_ns =
        status.iter().filter(|l| l.device != Device::Vchiq).map(|l| l.now_ns).max().unwrap_or(0);
    let elapsed_ns = service.control_now_ns().max(block_lane_ns);
    let sq_occupancy =
        status.iter().map(|l| l.sq_high_water as f64 / l.sq_depth as f64).fold(0.0f64, f64::max);
    let mut block_us: Vec<u64> = Vec::new();
    let mut block_requests = 0u64;
    for c in &done {
        c.result.as_ref().expect("mixed schedule stays in coverage");
        if c.device != Device::Vchiq {
            block_requests += 1;
            block_us.push(c.latency_ns() / 1_000);
        }
    }
    // The clients reap their completions (per-call reaps pay their SMC;
    // ring reaps are free) so the world-switch count covers the whole
    // submit→reap round trip.
    for id in &ids {
        service.take_completions(*id);
    }
    let stats = service.stats();
    let smcs = service.smc_calls();
    RingArmSample {
        mode: match mode {
            SubmitMode::PerCall => "per-call".into(),
            SubmitMode::Ring => "ring".into(),
        },
        requests: done.len() as u64,
        block_requests,
        elapsed_ms: elapsed_ns as f64 / 1e6,
        rps: block_requests as f64 / (elapsed_ns as f64 / 1e9).max(1e-12),
        smcs,
        smcs_per_request: smcs as f64 / (done.len() as f64).max(1.0),
        doorbells: stats.doorbells,
        mean_doorbell_batch: stats.mean_doorbell_batch(),
        sq_occupancy,
        block_latency: latency_sample(&mut block_us),
        coalescing_ratio: stats.coalescing_ratio(),
    }
}

/// Closed-loop single-block reads, one at a time: the p50 a
/// latency-sensitive client sees when every enqueue is followed by its own
/// doorbell (batch 1). Holding is disabled — a single-op closed-loop
/// client keeps `hold_budget_ns` at 0, as the config documents.
fn submit_latency_p50(mode: SubmitMode, bundle: &dlt_template::Driverlet, requests: u32) -> u64 {
    let config = ServeConfig {
        submit_mode: mode,
        hold_budget_ns: 0,
        block_granularities: vec![1, 8],
        ..ServeConfig::default()
    };
    let mut service = DriverletService::with_driverlets(&[(Device::Mmc, bundle.clone())], config)
        .expect("build latency service");
    let session = service.open_session().unwrap();
    let mut us: Vec<u64> = Vec::new();
    for i in 0..requests {
        service
            .submit(session, Request::Read { device: Device::Mmc, blkid: 512 + i, blkcnt: 1 })
            .expect("closed-loop submit");
        let done = service.drain_all();
        assert_eq!(done.len(), 1);
        us.push(done[0].latency_ns() / 1_000);
        // Observe the completion so the next submit is stamped after it
        // (a closed-loop client).
        service.take_completions(session);
    }
    us.sort_unstable();
    percentile(&us, 0.50)
}

/// The ring-vs-legacy comparison: one heterogeneous open-loop schedule
/// (per-session Poisson arrivals, hot-range readers, streamers, a bursty
/// camera tenant) driven down both submission paths, plus the batch-1
/// closed-loop latency check.
pub fn run_ring_bench(requests_per_session: u32, doorbell_batch: usize) -> RingComparisonSample {
    let specs = mixed_tenant_specs(requests_per_session, 60_000);
    let schedule = heterogeneous_schedule(&specs, 0x5eed);
    let bundles = vec![
        (Device::Mmc, record_mmc_driverlet_subset(&[1, 8, 32]).expect("record mmc")),
        (Device::Usb, record_usb_driverlet_subset(&[1, 8, 32]).expect("record usb")),
        (Device::Vchiq, record_camera_driverlet_subset(&[1]).expect("record camera")),
    ];
    let legacy =
        drive_mixed_arm(SubmitMode::PerCall, doorbell_batch, &schedule, &bundles, specs.len());
    let ring = drive_mixed_arm(SubmitMode::Ring, doorbell_batch, &schedule, &bundles, specs.len());
    assert_eq!(legacy.requests, ring.requests, "both arms must complete the identical schedule");
    let speedup = ring.rps / legacy.rps.max(1e-12);
    let latency_requests = 64;
    let batch1 = SubmitLatencySample {
        requests: latency_requests as u64,
        legacy_p50_us: submit_latency_p50(SubmitMode::PerCall, &bundles[0].1, latency_requests),
        ring_p50_us: submit_latency_p50(SubmitMode::Ring, &bundles[0].1, latency_requests),
    };
    RingComparisonSample { doorbell_batch, legacy, ring, speedup, batch1 }
}

/// One arm of the wall-clock experiment: `lanes` replica MMC lanes, each
/// fed `requests_per_lane` uncoalesced 8-block reads, measured in host
/// time from first submit to quiescence (`drain_all`).
fn wall_clock_arm(
    exec_mode: ExecMode,
    bundle: &dlt_template::Driverlet,
    lanes: usize,
    requests_per_lane: u64,
) -> f64 {
    let devices: Vec<_> = (0..lanes).map(|_| (Device::Mmc, bundle.clone())).collect();
    let config = ServeConfig {
        exec_mode,
        // Coalescing and anticipation off: every request pays its own
        // replay, so the workload is pure per-lane compute and the only
        // variable between the arms is where that compute runs.
        coalesce: false,
        hold_budget_ns: 0,
        queue_capacity: requests_per_lane as usize,
        block_granularities: vec![1, 8],
        ..ServeConfig::default()
    };
    let mut service = DriverletService::with_driverlets(&devices, config).expect("build service");
    let session = service.open_session().unwrap();
    let expected = requests_per_lane * lanes as u64;
    let start = std::time::Instant::now();
    // Round-robin across the lanes so threaded workers start chewing on
    // their backlog while the front-end is still submitting.
    for i in 0..requests_per_lane {
        for lane in 0..lanes {
            let blkid = 1024 + (i % 48) as u32 * 8;
            service
                .submit_to_lane(
                    lane,
                    session,
                    Request::Read { device: Device::Mmc, blkid, blkcnt: 8 },
                )
                .expect("wall-clock submit");
        }
    }
    let completed = service.drain_all().len() as u64;
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(completed, expected, "every wall-clock request must complete");
    elapsed_ms
}

/// The wall-clock lane-parallelism experiment: sequential vs threaded
/// execution of identical replica-lane workloads at each lane count.
pub fn run_wall_clock_bench(lane_counts: &[usize], requests_per_lane: u64) -> WallClockSample {
    let bundle = record_mmc_driverlet_subset(&[1, 8]).expect("record mmc");
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let points = lane_counts
        .iter()
        .map(|&lanes| {
            let sequential_ms =
                wall_clock_arm(ExecMode::Sequential, &bundle, lanes, requests_per_lane);
            let threaded_ms = wall_clock_arm(ExecMode::Threaded, &bundle, lanes, requests_per_lane);
            WallClockPoint {
                lanes,
                requests: requests_per_lane * lanes as u64,
                sequential_ms,
                threaded_ms,
                speedup: sequential_ms / threaded_ms.max(1e-9),
            }
        })
        .collect();
    WallClockSample { host_cores, requests_per_lane, points }
}

/// The deterministic spill experiment: four MMC replicas behind
/// `queue_capacity`-deep lanes under hash placement. Each round submits
/// exactly one fleet's worth of single-block reads (replicas x capacity).
/// The balanced arm gives every tenant its own home shard (extents found
/// with the public placement probe); the skewed arm points every tenant
/// at shard 0's extent, so after the home fills, every further clean read
/// must spill to the least-loaded sibling. All numbers are virtual time,
/// so the sample reproduces exactly.
fn run_spill_experiment() -> RoutedSpillSample {
    const REPLICAS: usize = 4;
    const CAPACITY: usize = 8;
    const ROUNDS: u32 = 6;
    let bundle = record_mmc_driverlet_subset(&[1, 8]).expect("record mmc");
    let policy = RoutePolicy::HashShard { chunk_blocks: 256 };
    // One never-written extent homed on each replica, by probing
    // consecutive chunks until every shard owns one.
    let mut extents: Vec<Option<u32>> = vec![None; REPLICAS];
    let mut chunk = 4u32;
    while extents.iter().any(Option::is_none) {
        let blkid = chunk * 256;
        let home = policy.replica_for(blkid, REPLICAS);
        extents[home].get_or_insert(blkid);
        chunk += 1;
    }
    let extents: Vec<u32> = extents.into_iter().map(|e| e.expect("probed")).collect();

    let arm = |skewed: bool| -> (Vec<u64>, u64, u64) {
        let devices: Vec<_> = (0..REPLICAS).map(|_| (Device::Mmc, bundle.clone())).collect();
        let config = ServeConfig {
            policy: Policy::Fifo,
            coalesce: false,
            hold_budget_ns: 0,
            queue_capacity: CAPACITY,
            route: RouteConfig { policy, spill: true },
            block_granularities: vec![1, 8],
            ..ServeConfig::default()
        };
        let mut service =
            DriverletService::with_driverlets(&devices, config).expect("build spill service");
        let sessions: Vec<SessionId> =
            (0..REPLICAS).map(|_| service.open_session().unwrap()).collect();
        let mut us: Vec<u64> = Vec::new();
        for round in 0..ROUNDS {
            for burst in 0..CAPACITY as u32 {
                for (s, session) in sessions.iter().enumerate() {
                    let extent = if skewed { extents[0] } else { extents[s] };
                    let blkid = extent + (round * CAPACITY as u32 + burst) % 64;
                    service
                        .submit(*session, Request::Read { device: Device::Mmc, blkid, blkcnt: 1 })
                        .expect("spill-arm submit (one fleet's worth per round fits exactly)");
                }
            }
            us.extend(service.drain_all().iter().map(|c| c.latency_ns() / 1_000));
        }
        let stats = service.stats();
        (us, stats.route_spills, stats.rejected)
    };

    let (mut balanced_us, _, _) = arm(false);
    let (mut skewed_us, spills, rejections) = arm(true);
    assert_eq!(balanced_us.len(), skewed_us.len(), "both arms complete every read");
    let balanced_p99_us = latency_sample(&mut balanced_us).p99_us;
    let skewed_p99_us = latency_sample(&mut skewed_us).p99_us;
    RoutedSpillSample {
        replicas: REPLICAS,
        queue_capacity: CAPACITY,
        requests: skewed_us.len() as u64,
        balanced_p99_us,
        skewed_p99_us,
        p99_ratio: skewed_p99_us as f64 / (balanced_p99_us as f64).max(1e-9),
        spills,
        rejections,
    }
}

/// The routed weak-scaling experiment: at each lane count, a fleet of
/// replica MMC lanes (per-lane OS threads) serves `replica_fleet_specs`'
/// open-loop schedule through the default routed `submit()` under stripe
/// placement, measured in **host** time from first submit to quiescence.
/// The tenant population scales with the fleet (three read-only sessions
/// per lane), so near-linear scaling holds rps growing with the lane
/// count.
pub fn run_routed_bench(lane_counts: &[usize], requests_per_session: u32) -> RoutedSample {
    let bundle = record_mmc_driverlet_subset(&[1, 8]).expect("record mmc");
    let mut points = Vec::new();
    for &lanes in lane_counts {
        let specs = replica_fleet_specs(lanes, requests_per_session);
        let schedule = heterogeneous_schedule(&specs, 0x10c4_7e50 ^ lanes as u64);
        let devices: Vec<_> = (0..lanes).map(|_| (Device::Mmc, bundle.clone())).collect();
        let config = ServeConfig {
            policy: Policy::Fifo,
            exec_mode: ExecMode::Threaded,
            // Uncoalesced, so the workload is pure per-lane replay compute
            // and the curve measures where that compute runs.
            coalesce: false,
            hold_budget_ns: 0,
            queue_capacity: schedule.len().max(128),
            max_sessions: specs.len().max(64),
            route: RouteConfig { policy: RoutePolicy::Stripe { stripe_blocks: 256 }, spill: true },
            block_granularities: vec![1, 8],
            ..ServeConfig::default()
        };
        let mut service =
            DriverletService::with_driverlets(&devices, config).expect("build routed service");
        let ids: Vec<SessionId> =
            (0..specs.len()).map(|_| service.open_session().unwrap()).collect();
        let start = std::time::Instant::now();
        for ev in &schedule {
            service.client_think_ns(ev.gap_ns);
            service.submit(ids[ev.session_idx], ev.req.clone()).expect("routed open-loop submit");
        }
        let completed = service.drain_all().len() as u64;
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(completed, schedule.len() as u64, "every routed request must complete");
        let stats = service.stats();
        assert_eq!(stats.routed, completed, "every default submit rides the router");
        points.push(RoutedScalingPoint {
            lanes,
            sessions: specs.len(),
            requests: completed,
            elapsed_ms,
            rps: completed as f64 / (elapsed_ms / 1e3).max(1e-9),
            spills: stats.route_spills,
            stripe_fanouts: stats.stripe_fanouts,
        });
    }
    let rps_at = |lanes: usize| {
        points.iter().find(|p: &&RoutedScalingPoint| p.lanes == lanes).map(|p| p.rps)
    };
    let ratio_8v4 = match (rps_at(8), rps_at(4)) {
        (Some(eight), Some(four)) => eight / four.max(1e-12),
        _ => 0.0,
    };
    RoutedSample {
        policy: "stripe".into(),
        requests_per_session,
        points,
        ratio_8v4,
        spill: run_spill_experiment(),
    }
}

/// The failover-storm sub-experiment: three replica MMC lanes behind the
/// hash-shard router, failover and supervision on, a sticky read fault on
/// replica 0. The storm submits clean single-block reads across the whole
/// fleet; reads homed on the sick shard diverge, retry on a sibling under
/// the retry budget, and the watchdog quarantines the lane (its soft
/// reset clears the fault, so a recovery phase of homed reads then walks
/// it through probation back to [`LaneState::Healthy`]). Sequential exec
/// mode keeps the whole storm deterministic virtual time.
fn run_failover_experiment() -> FailoverSample {
    const REPLICAS: usize = 3;
    const STORM_READS: u32 = 72;
    const RECOVERY_READS: usize = 8;
    let bundle = record_mmc_driverlet_subset(&[1, 8]).expect("record mmc");
    let policy = RoutePolicy::HashShard { chunk_blocks: 16 };
    let devices: Vec<_> = (0..REPLICAS).map(|_| (Device::Mmc, bundle.clone())).collect();
    let config = ServeConfig {
        policy: Policy::Fifo,
        coalesce: false,
        hold_budget_ns: 0,
        queue_capacity: 128,
        route: RouteConfig { policy, spill: true },
        failover: FailoverConfig { enabled: true, retry_budget: 2, backoff_base_ns: 50_000 },
        supervise: SuperviseConfig {
            enabled: true,
            divergence_threshold: 2,
            window: 16,
            probation_ok: 4,
        },
        block_granularities: vec![1, 8],
        ..ServeConfig::default()
    };
    let mut service =
        DriverletService::with_driverlets(&devices, config).expect("build failover service");
    let session = service.open_session().expect("open session");
    service
        .inject_fault_at(
            LaneId { device: Device::Mmc, replica: 0 },
            FaultPlan { template: Some("_rd_".into()), sticky: true, ..FaultPlan::default() },
        )
        .expect("inject fault");

    // Storm: never-written (clean) extents spread over every shard, so a
    // fixed fraction homes on the faulted replica and must fail over.
    let mut submitted = 0u64;
    let mut completions: Vec<Completion> = Vec::new();
    for blkid in 0..STORM_READS {
        service
            .submit(session, Request::Read { device: Device::Mmc, blkid, blkcnt: 1 })
            .expect("storm read");
        submitted += 1;
    }
    completions.extend(service.drain_all());

    // Recovery: clean reads homed on the reset shard serve its probation.
    let homed: Vec<u32> =
        (0..4096).filter(|b| policy.replica_for(*b, REPLICAS) == 0).take(RECOVERY_READS).collect();
    for blkid in homed {
        service
            .submit(session, Request::Read { device: Device::Mmc, blkid, blkcnt: 1 })
            .expect("recovery read");
        submitted += 1;
    }
    completions.extend(service.drain_all());

    let completed_ok = completions.iter().filter(|c| c.result.is_ok()).count() as u64;
    let lost = submitted - completions.len() as u64;
    let stats = service.stats();
    let health = service
        .lane_health_check_at(LaneId { device: Device::Mmc, replica: 0 })
        .expect("health check");
    FailoverSample {
        replicas: REPLICAS,
        clean_reads: submitted,
        completed_ok,
        completion_rate: completed_ok as f64 / (submitted as f64).max(1.0),
        lost,
        failovers: stats.failovers,
        quarantines: stats.quarantines,
        lane_restored: stats.lane_restores >= 1 && health.state == LaneState::Healthy,
    }
}

/// The session-churn sub-experiment: `cycles` ephemeral sessions open,
/// touch the device and close against one long-lived resident; half close
/// with the read still in flight (orphan path), half reap first. The
/// sample records how many per-session metrics series outlived their
/// session.
fn run_churn_experiment(cycles: u64) -> ChurnSample {
    let config = ServeConfig {
        obs: ObsConfig::MetricsOnly,
        block_granularities: vec![1],
        ..ServeConfig::default()
    };
    let mut service = DriverletService::new(&[Device::Mmc], config).expect("build churn service");
    let resident = service.open_session().expect("resident session");
    let baseline = service.metrics_snapshot().expect("metrics plane is on").sessions.len() as u64;
    for i in 0..cycles {
        let s = service.open_session().expect("churn session");
        service
            .submit(s, Request::Read { device: Device::Mmc, blkid: (i % 32) as u32, blkcnt: 1 })
            .expect("churn read");
        if i % 2 == 0 {
            service.close_session(s);
            service.drain_all();
        } else {
            service.drain_all();
            service.take_completions(s);
            service.close_session(s);
        }
    }
    service.drain_all();
    service.take_completions(resident);
    let series = service.metrics_snapshot().expect("metrics plane is on").sessions.len() as u64;
    ChurnSample { cycles, leaked_series: series.saturating_sub(baseline) }
}

/// The adversarial-isolation experiment: two victim tenants run a fixed
/// read workload on one MMC lane; the attack arm adds a flooder that
/// bursts 12 submits per round against a per-tenant token bucket and a
/// 1/9 max-min share. Victim latency is compared across the arms — with
/// admission QoS doing its job, the flood lands on the flooder
/// ([`ServeError::Throttled`]) instead of the victims' tail.
pub fn run_isolation_bench(rounds: u32, churn_cycles: u64) -> IsolationSample {
    const VICTIMS: usize = 2;
    const VICTIM_READS_PER_ROUND: u32 = 4;
    const FLOOD_PER_ROUND: u32 = 12;
    let bundle = record_mmc_driverlet_subset(&[1, 8]).expect("record mmc");

    // (victim latencies, victim rejections, flooder throttled, flooder
    // completed) for one arm.
    let arm = |with_flooder: bool| -> (Vec<u64>, u64, u64, u64) {
        let config = ServeConfig {
            policy: Policy::Fifo,
            coalesce: false,
            hold_budget_ns: 0,
            queue_capacity: 16,
            qos: QosConfig {
                enabled: true,
                default_qos: SessionQos { rate_rps: 0, burst: 16, weight: 4 },
            },
            block_granularities: vec![1, 8],
            ..ServeConfig::default()
        };
        let mut service =
            DriverletService::with_driverlets(&[(Device::Mmc, bundle.clone())], config)
                .expect("build isolation service");
        let victims: Vec<SessionId> =
            (0..VICTIMS).map(|_| service.open_session().unwrap()).collect();
        let flooder = service.open_session().unwrap();
        service
            .set_session_qos(flooder, SessionQos { rate_rps: 200, burst: 4, weight: 1 })
            .expect("flooder qos");

        let mut victim_us: Vec<u64> = Vec::new();
        let mut victim_rejections = 0u64;
        let mut throttled = 0u64;
        let mut flooder_completed = 0u64;
        for round in 0..rounds {
            if with_flooder {
                // The flood goes first each round: whatever the gate
                // admits lands *ahead* of the victims in the FIFO queue,
                // so any leak through admission shows up in victim p99.
                for burst in 0..FLOOD_PER_ROUND {
                    let blkid = 4096 + (round * FLOOD_PER_ROUND + burst) % 64;
                    match service
                        .submit(flooder, Request::Read { device: Device::Mmc, blkid, blkcnt: 1 })
                    {
                        Ok(_) => {}
                        Err(ServeError::Throttled { .. }) => throttled += 1,
                        Err(e) => panic!("unexpected flooder submit error: {e}"),
                    }
                }
            }
            for (v, session) in victims.iter().enumerate() {
                for r in 0..VICTIM_READS_PER_ROUND {
                    let blkid = (round * VICTIM_READS_PER_ROUND + r) % 64 + 64 * (v as u32 + 1);
                    if service
                        .submit(*session, Request::Read { device: Device::Mmc, blkid, blkcnt: 1 })
                        .is_err()
                    {
                        victim_rejections += 1;
                    }
                }
            }
            for c in service.drain_all() {
                if c.session == flooder {
                    flooder_completed += 1;
                } else {
                    victim_us.push(c.latency_ns() / 1_000);
                }
            }
        }
        (victim_us, victim_rejections, throttled, flooder_completed)
    };

    let (mut baseline_us, baseline_rejections, _, _) = arm(false);
    let (mut attack_us, victim_rejections, flooder_throttled, flooder_completed) = arm(true);
    assert_eq!(baseline_rejections, 0, "the flooder-free arm must admit every victim read");
    assert_eq!(baseline_us.len(), attack_us.len(), "both arms complete every victim read");
    let baseline_p99_us = latency_sample(&mut baseline_us).p99_us;
    let attack_p99_us = latency_sample(&mut attack_us).p99_us;
    IsolationSample {
        victims: VICTIMS,
        victim_requests: attack_us.len() as u64,
        baseline_p99_us,
        attack_p99_us,
        p99_ratio: attack_p99_us as f64 / (baseline_p99_us as f64).max(1e-9),
        victim_rejections,
        flooder_throttled,
        flooder_completed,
        failover: run_failover_experiment(),
        churn: run_churn_experiment(churn_cycles),
    }
}

/// Run all the experiments.
pub fn run_serve_bench(quick: bool) -> ServeBenchReport {
    // The scaling lane budget stays at 2.4 s even in quick mode: a OneShot
    // capture costs ~2.3 s of camera-lane time (sensor init dominates), so
    // a smaller budget would leave the third lane idle and the CI
    // acceptance gate on ratio_3v1 would only measure 1→2-device scaling.
    // wall_requests stays modest even in full mode: the wall-clock arms
    // retain every 8-block read payload until the final reap, and past
    // ~16k in-flight requests the footprint (>64 MB of payloads) starts
    // measuring the allocator rather than lane parallelism.
    let (rounds, mixed_rounds, frames, budget_ns, bursts, ring_requests, wall_requests) = if quick {
        (6, 4, 10, 2_400_000_000, 30, 64, 512)
    } else {
        (24, 12, 100, 2_400_000_000, 200, 192, 1024)
    };
    let (routed_lanes, routed_requests): (&[usize], u32) =
        if quick { (&[1, 2, 4, 8], 48) } else { (&[1, 2, 4, 8, 16], 128) };
    let (isolation_rounds, churn_cycles) = if quick { (12, 60) } else { (40, 200) };
    let coalescing = run_coalescing_bench(8, rounds);
    let mixed = run_mixed_bench(mixed_rounds, frames);
    let scaling = run_scaling_bench(budget_ns);
    let hold_sweep = run_hold_sweep(bursts, &[0, 25, 100, 400, 3200]);
    let ring = run_ring_bench(ring_requests, 16);
    let wall_clock = run_wall_clock_bench(&[1, 2, 4, 8], wall_requests);
    let routed = run_routed_bench(routed_lanes, routed_requests);
    let isolation = run_isolation_bench(isolation_rounds, churn_cycles);
    ServeBenchReport {
        workload: format!(
            "serve layer: 8-session striped reads x {rounds} rounds (MMC); 10-session mixed \
             MMC+USB+VCHIQ x {mixed_rounds} rounds vs a {frames}-frame LongBurst; 1->3 device \
             weak scaling at {:.0} ms/lane; hold sweep over {bursts} bursts; ring-vs-legacy \
             open-loop Poisson mix at {ring_requests} requests/session, doorbell batch 16; \
             wall-clock sequential-vs-threaded at 1/2/4/8 replica MMC lanes x {wall_requests} \
             8-block reads/lane; routed replica-fleet weak scaling at {routed_requests} \
             requests/session plus the 4-replica spill experiment; adversarial isolation \
             (flooder vs 2 victims under QoS x {isolation_rounds} rounds, 3-replica failover \
             storm, {churn_cycles}-cycle session churn)",
            budget_ns as f64 / 1e6
        ),
        coalescing,
        mixed,
        scaling,
        hold_sweep,
        ring,
        wall_clock,
        routed,
        isolation,
    }
}

/// Serialise the report as pretty JSON.
pub fn report_json(report: &ServeBenchReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialisation cannot fail")
}

/// Parse a previously persisted report.
pub fn parse_report(json: &str) -> Result<ServeBenchReport, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// Write the report to `path` (default artifact name: `BENCH_serve.json`).
pub fn emit_report(report: &ServeBenchReport, path: &str) -> std::io::Result<()> {
    std::fs::write(path, report_json(report))
}

/// Render the human-readable summary the bench prints.
pub fn describe(report: &ServeBenchReport) -> String {
    let c = &report.coalescing;
    let m = &report.mixed;
    let s = &report.scaling;
    let mut out = String::new();
    out.push_str(&format!("workload: {}\n", report.workload));
    out.push_str(&format!(
        "coalescing: {} sessions, {} requests: {:.0} req/s serial -> {:.0} req/s coalesced \
         ({:.2}x, {:.2} requests/replay)\n",
        c.sessions, c.requests, c.serial_rps, c.coalesced_rps, c.speedup, c.coalescing_ratio
    ));
    out.push_str(&format!(
        "mixed ({}-frame LongBurst racing): {} sessions, {} requests, {:.0} req/s, \
         block p99 {} us, {:.2} requests/replay, {} backpressure rejections\n",
        m.long_burst_frames,
        m.sessions,
        m.requests,
        m.rps,
        m.block_p99_us,
        m.coalescing_ratio,
        m.backpressure_rejections
    ));
    for d in &m.per_device {
        out.push_str(&format!(
            "  {:<6} {} completions: p50 {} us, p99 {} us, max {} us\n",
            d.device, d.completions, d.latency.p50_us, d.latency.p99_us, d.latency.max_us
        ));
    }
    for p in &s.points {
        out.push_str(&format!(
            "scaling: {} device(s): {} requests in {:.1} ms -> {:.0} req/s\n",
            p.devices, p.requests, p.elapsed_ms, p.rps
        ));
    }
    out.push_str(&format!("scaling ratio 3 vs 1 devices: {:.2}x\n", s.ratio_3v1));
    let r = &report.ring;
    for arm in [&r.legacy, &r.ring] {
        out.push_str(&format!(
            "submit {:<8}: {} block requests in {:.1} ms -> {:.0} req/s, {:.3} SMCs/request \
             ({} SMCs, {} doorbells, mean batch {:.1}, SQ occupancy {:.2}), p50 {} us, p99 {} us, \
             {:.2} requests/replay\n",
            arm.mode,
            arm.block_requests,
            arm.elapsed_ms,
            arm.rps,
            arm.smcs_per_request,
            arm.smcs,
            arm.doorbells,
            arm.mean_doorbell_batch,
            arm.sq_occupancy,
            arm.block_latency.p50_us,
            arm.block_latency.p99_us,
            arm.coalescing_ratio
        ));
    }
    out.push_str(&format!(
        "ring vs legacy at doorbell batch {}: {:.2}x request rate; closed-loop batch-1 p50 \
         {} us (ring) vs {} us (per-call)\n",
        r.doorbell_batch, r.speedup, r.batch1.ring_p50_us, r.batch1.legacy_p50_us
    ));
    for h in &report.hold_sweep {
        out.push_str(&format!(
            "hold {:>5} us{}: p50 {} us, p99 {} us, {:.2} requests/replay, {} holds\n",
            h.hold_budget_us,
            if h.is_default { " (default)" } else { "" },
            h.latency.p50_us,
            h.latency.p99_us,
            h.coalescing_ratio,
            h.holds
        ));
    }
    let w = &report.wall_clock;
    out.push_str(&format!(
        "wall-clock (host time, {} core(s), {} reads/lane):\n",
        w.host_cores, w.requests_per_lane
    ));
    for p in &w.points {
        out.push_str(&format!(
            "  {} lane(s): {} requests, sequential {:.1} ms vs threaded {:.1} ms -> {:.2}x\n",
            p.lanes, p.requests, p.sequential_ms, p.threaded_ms, p.speedup
        ));
    }
    let rt = &report.routed;
    out.push_str(&format!(
        "routed weak scaling ({} placement, host time, {} requests/session):\n",
        rt.policy, rt.requests_per_session
    ));
    for p in &rt.points {
        out.push_str(&format!(
            "  {} lane(s): {} sessions, {} requests in {:.1} ms -> {:.0} req/s \
             ({} spills, {} fan-outs)\n",
            p.lanes, p.sessions, p.requests, p.elapsed_ms, p.rps, p.spills, p.stripe_fanouts
        ));
    }
    out.push_str(&format!("routed scaling ratio 8 vs 4 lanes: {:.2}x\n", rt.ratio_8v4));
    let sp = &rt.spill;
    out.push_str(&format!(
        "spill ({} replicas, capacity {}): balanced p99 {} us vs skewed p99 {} us \
         ({:.2}x, {} spills, {} rejections over {} reads/arm)\n",
        sp.replicas,
        sp.queue_capacity,
        sp.balanced_p99_us,
        sp.skewed_p99_us,
        sp.p99_ratio,
        sp.spills,
        sp.rejections,
        sp.requests
    ));
    let iso = &report.isolation;
    out.push_str(&format!(
        "isolation ({} victims, {} victim reads/arm): baseline p99 {} us vs under-attack p99 \
         {} us ({:.2}x); {} victim rejections, flooder throttled {} / completed {}\n",
        iso.victims,
        iso.victim_requests,
        iso.baseline_p99_us,
        iso.attack_p99_us,
        iso.p99_ratio,
        iso.victim_rejections,
        iso.flooder_throttled,
        iso.flooder_completed
    ));
    let fo = &iso.failover;
    out.push_str(&format!(
        "failover storm ({} replicas, sticky read fault on replica 0): {}/{} clean reads \
         completed ({:.1}%), {} lost, {} failovers, {} quarantine(s), lane restored: {}\n",
        fo.replicas,
        fo.completed_ok,
        fo.clean_reads,
        fo.completion_rate * 100.0,
        fo.lost,
        fo.failovers,
        fo.quarantines,
        fo.lane_restored
    ));
    out.push_str(&format!(
        "session churn: {} open/close cycles, {} leaked metrics series\n",
        iso.churn.cycles, iso.churn.leaked_series
    ));
    out
}

/// One-line record for log scraping.
pub fn summary_line(report: &ServeBenchReport) -> String {
    let wall_4 =
        report.wall_clock.points.iter().find(|p| p.lanes == 4).map(|p| p.speedup).unwrap_or(0.0);
    format!(
        "serve_throughput coalesced={:.0} serial={:.0} speedup={:.2} scaling_3v1={:.2} \
         block_p99_us={} ring_speedup={:.2} ring_smcs_per_req={:.3} wall_4lane={:.2} cores={} \
         routed_8v4={:.2} spill_p99_ratio={:.2} spills={} iso_p99_ratio={:.2} \
         iso_victim_rejections={} failover_rate={:.3} quarantines={} churn_leaked={}",
        report.coalescing.coalesced_rps,
        report.coalescing.serial_rps,
        report.coalescing.speedup,
        report.scaling.ratio_3v1,
        report.mixed.block_p99_us,
        report.ring.speedup,
        report.ring.ring.smcs_per_request,
        wall_4,
        report.wall_clock.host_cores,
        report.routed.ratio_8v4,
        report.routed.spill.p99_ratio,
        report.routed.spill.spills,
        report.isolation.p99_ratio,
        report.isolation.victim_rejections,
        report.isolation.failover.completion_rate,
        report.isolation.failover.quarantines,
        report.isolation.churn.leaked_series
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_coalesced_sessions_double_the_serial_request_rate() {
        // The PR 3 acceptance bar, preserved across the multi-core
        // refactor: 8 concurrent sessions over one MMC device reach ≥ 2x
        // the requests/s of the same sessions issuing serially without
        // coalescing (the anticipatory hold captures each stripe).
        let sample = run_coalescing_bench(8, 4);
        assert_eq!(sample.requests, 32);
        assert!(
            sample.speedup >= 2.0,
            "coalesced {:.0} req/s vs serial {:.0} req/s is only {:.2}x",
            sample.coalesced_rps,
            sample.serial_rps,
            sample.speedup
        );
        assert!(sample.coalescing_ratio > 4.0, "stripes of 8 should fold into few replays");
    }

    #[test]
    fn block_p99_stays_in_lane_under_camera_load() {
        let m = run_mixed_bench(2, 10);
        assert!(m.requests > 0);
        assert!(m.latency.p99_us >= m.latency.p50_us);
        for d in ["mmc", "usb", "vchiq"] {
            assert!(m.per_device.iter().any(|l| l.device == d), "missing device {d}");
        }
        // The multi-core acceptance metric: block completions never
        // inherit the camera lane's burst time.
        assert!(
            m.block_p99_us < 1_000_000,
            "block p99 {} us must stay under 1 s despite the LongBurst",
            m.block_p99_us
        );
    }

    #[test]
    fn three_lanes_scale_mixed_throughput() {
        let s = run_scaling_bench(300_000_000);
        assert_eq!(s.points.len(), 3);
        assert!(
            s.ratio_3v1 >= 1.8,
            "3-device throughput must scale >= 1.8x over 1 device, got {:.2}x",
            s.ratio_3v1
        );
    }

    #[test]
    fn hold_budget_trades_latency_for_merge_ratio() {
        let sweep = run_hold_sweep(12, &[0, 100, 3200]);
        let baseline = &sweep[0];
        let default = &sweep[1];
        let greedy = &sweep[2];
        assert!(default.is_default);
        assert!(
            default.coalescing_ratio > baseline.coalescing_ratio * 2.0,
            "the default hold must merge far more than no-hold ({:.2} vs {:.2})",
            default.coalescing_ratio,
            baseline.coalescing_ratio
        );
        let p50_limit = baseline.latency.p50_us as f64 * 1.10;
        assert!(
            (default.latency.p50_us as f64) <= p50_limit,
            "default-budget p50 {} us must stay within 10% of the no-hold baseline {} us",
            default.latency.p50_us,
            baseline.latency.p50_us
        );
        assert!(greedy.holds > 0 && default.holds > 0);
        assert!(
            greedy.latency.p50_us > default.latency.p50_us,
            "an oversized budget should visibly trade p50 for ratio"
        );
    }

    #[test]
    fn rings_amortise_world_switches_into_throughput() {
        let r = run_ring_bench(48, 16);
        assert_eq!(r.legacy.requests, r.ring.requests);
        assert!(r.ring.doorbells > 0 && r.legacy.doorbells == 0);
        assert!(
            r.ring.mean_doorbell_batch >= 8.0,
            "doorbells must amortise several entries, got {:.1}",
            r.ring.mean_doorbell_batch
        );
        assert!(
            r.ring.smcs_per_request <= 0.25,
            "ring mode must stay under 0.25 SMCs/request at batch 16, got {:.3}",
            r.ring.smcs_per_request
        );
        assert!(
            r.legacy.smcs_per_request >= 1.0,
            "the per-call arm pays at least one switch per request, got {:.3}",
            r.legacy.smcs_per_request
        );
        assert!(
            r.speedup >= 1.5,
            "ring mode must reach >= 1.5x the legacy request rate, got {:.2}x \
             ({:.0} vs {:.0} req/s)",
            r.speedup,
            r.ring.rps,
            r.legacy.rps
        );
        assert!(
            r.batch1.ring_p50_us <= r.batch1.legacy_p50_us,
            "batch-1 ring p50 ({} us) must be no worse than per-call ({} us)",
            r.batch1.ring_p50_us,
            r.batch1.legacy_p50_us
        );
    }

    #[test]
    fn wall_clock_points_complete_every_request_on_both_arms() {
        // The wall-clock experiment measures host time, so no speedup
        // assertion here (the dev container may have one core — the
        // conditional ≥ 2x gate lives in the serve_throughput bench).
        // What must hold anywhere: both arms finish the full workload at
        // every lane count and report positive makespans.
        let sample = run_wall_clock_bench(&[1, 2], 48);
        assert!(sample.host_cores >= 1);
        assert_eq!(sample.points.len(), 2);
        for p in &sample.points {
            assert_eq!(p.requests, 48 * p.lanes as u64);
            assert!(p.sequential_ms > 0.0 && p.threaded_ms > 0.0);
            assert!(p.speedup > 0.0);
        }
    }

    #[test]
    fn routed_fleet_completes_and_spill_stays_bounded() {
        // Small lane counts keep this unit-sized; the 4/8/16-lane curve
        // (and its conditional ≥ 1.7x gate) lives in the serve_throughput
        // bench. What must hold anywhere: every request completes through
        // the router, the skewed arm actually sheds load, nothing is
        // rejected (one fleet's worth per round fits exactly), and the
        // victim's virtual-time p99 stays within 2x the balanced baseline.
        let sample = run_routed_bench(&[1, 2], 12);
        assert_eq!(sample.points.len(), 2);
        for p in &sample.points {
            assert_eq!(p.sessions, 3 * p.lanes, "three read-only sessions per lane");
            assert_eq!(p.requests, 3 * 12 * p.lanes as u64, "weak scaling: load grows with lanes");
            assert!(p.elapsed_ms > 0.0 && p.rps > 0.0);
        }
        let sp = &sample.spill;
        assert!(sp.spills > 0, "the skewed arm must shed clean reads to siblings");
        assert_eq!(sp.rejections, 0, "one fleet's worth per round never overflows the fleet");
        assert!(
            sp.p99_ratio <= 2.0,
            "spill must keep the hot shard's p99 within 2x balanced, got {:.2}x \
             ({} us vs {} us)",
            sp.p99_ratio,
            sp.skewed_p99_us,
            sp.balanced_p99_us
        );
    }

    #[test]
    fn isolation_gates_hold() {
        // The robustness-plane SLOs at unit scale; the CI-sized run (and
        // its gates) lives in the serve_throughput bench. All virtual
        // time, so the sample reproduces exactly.
        let iso = run_isolation_bench(8, 24);
        assert_eq!(
            iso.victim_rejections, 0,
            "admission QoS must never turn the victims away while the flooder hammers the lane"
        );
        assert!(iso.flooder_throttled > 0, "the gate must visibly throttle the flooder");
        assert!(
            iso.p99_ratio <= 2.0,
            "victim p99 under attack must stay within 2x the flooder-free baseline, got {:.2}x \
             ({} us vs {} us)",
            iso.p99_ratio,
            iso.attack_p99_us,
            iso.baseline_p99_us
        );
        let fo = &iso.failover;
        assert!(
            fo.completion_rate >= 0.99,
            "failover must carry >= 99% of clean reads past the sticky fault, got {:.3}",
            fo.completion_rate
        );
        assert_eq!(fo.lost, 0, "no read may vanish during the storm");
        assert!(fo.failovers >= 1, "reads homed on the sick shard must retry on a sibling");
        assert!(fo.quarantines >= 1, "the watchdog must trip the diverging lane");
        assert!(fo.lane_restored, "the lane must serve its probation back to Healthy");
        assert_eq!(iso.churn.leaked_series, 0, "session churn must leak no metrics series");
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = run_serve_bench(true);
        let json = report_json(&report);
        assert!(json.contains("coalescing"));
        assert!(json.contains("block_p99_us"));
        assert!(json.contains("ratio_3v1"));
        assert!(json.contains("wall_clock"));
        assert!(json.contains("routed"));
        assert!(json.contains("p99_ratio"));
        assert!(json.contains("isolation"));
        assert!(json.contains("flooder_throttled"));
        assert!(json.contains("leaked_series"));
        let parsed = parse_report(&json).expect("parse persisted report");
        assert_eq!(parsed.scaling.points.len(), report.scaling.points.len());
        assert!((parsed.scaling.ratio_3v1 - report.scaling.ratio_3v1).abs() < 1e-9);
        assert_eq!(parsed.wall_clock.points.len(), report.wall_clock.points.len());
        assert_eq!(parsed.wall_clock.host_cores, report.wall_clock.host_cores);
        assert_eq!(parsed.routed.points.len(), report.routed.points.len());
        assert_eq!(parsed.routed.spill.spills, report.routed.spill.spills);
        assert_eq!(parsed.isolation.victim_rejections, report.isolation.victim_rejections);
        assert_eq!(parsed.isolation.failover.quarantines, report.isolation.failover.quarantines);
        // A pre-robustness artifact (no `isolation` section) must fail to
        // parse the same way, so stale SLO numbers never get reprinted.
        let stale_iso = json.replace("\"isolation\"", "\"isolation_gone\"");
        assert!(parse_report(&stale_iso).is_err(), "pre-robustness schema must be rejected");
        // A pre-router artifact (no `routed` section) must fail to parse,
        // so the report binary regenerates instead of printing stale data.
        let stale = json.replace("\"routed\"", "\"routed_gone\"");
        assert!(parse_report(&stale).is_err(), "stale schema must be rejected");
    }
}
