//! Record campaigns for the three devices.
//!
//! A campaign (§4 "How to use") exercises the gold driver with a set of
//! sample invocations — each on a fresh, freshly-booted platform so every run
//! starts from the same device state — synthesises one template per sample,
//! reports cumulative coverage and signs the resulting driverlet.
//!
//! The sample sets mirror the paper's: read/write of 1, 8, 32, 128 and 256
//! blocks for MMC and USB mass storage (Table 3), and captures of 1, 10 and
//! 100 frames for the camera (Table 5).

use std::collections::HashMap;

use dlt_dev_mmc::{MmcSubsystem, CARD_BLOCKS, SDHOST_BASE};
use dlt_dev_usb::{UsbSubsystem, USB_BASE, USB_DISK_BLOCKS};
use dlt_dev_vchiq::msg::CameraResolution;
use dlt_dev_vchiq::{VchiqSubsystem, VCHIQ_BASE};
use dlt_gold_drivers::kenv::{BusIo, IoFlags, Rw};
use dlt_gold_drivers::mmc::MmcHost;
use dlt_gold_drivers::usb::{UsbHcd, UsbStorageDriver};
use dlt_gold_drivers::vchiq::VchiqDriver;
use dlt_hw::irq::lines;
use dlt_hw::{DmaRegion, Platform};
use dlt_template::{Constraint, DataDirection, Driverlet, ParamSpec, SymExpr, Template};

use crate::analyze::{synthesize_template, ProbeOutcome, RecordRun, TemplateSpec};
use crate::trace::TracingIo;
use crate::RecorderError;

/// The developer signing key used by the bundled campaigns. On a real
/// deployment this lives on the (trusted) developer machine; here it is a
/// constant so the replayer side can verify the bundles in tests and
/// examples.
pub const DEV_KEY: &[u8] = b"driverlet-developer-signing-key-v1";

/// Normal-world DMA window used by the gold drivers during recording.
const RECORD_DMA_BASE: u64 = 0x0200_0000;
const RECORD_DMA_LEN: usize = 0x0100_0000;

/// Serialise a recorded driverlet in the compact binary bundle form the TEE
/// deploys (§8.3.4). The JSON document remains the review/interchange
/// format; this is what a campaign ships to the device. The signature is
/// computed over exactly these bytes (minus the trailing signature record),
/// so `Driverlet::from_binary(..)` followed by `verify` round-trips.
pub fn emit_binary_bundle(driverlet: &Driverlet) -> Vec<u8> {
    driverlet.to_binary()
}

/// Fill a payload buffer with a pattern whose 8-byte windows are unique, so
/// payload copies can be located in the buffer unambiguously.
pub fn pattern_buf(len: usize, seed: u64) -> Vec<u8> {
    let mut out = vec![0u8; len];
    for (i, chunk) in out.chunks_mut(8).enumerate() {
        let word = ((i as u64) ^ seed.wrapping_mul(0x00ff_51af_d7ed_558d))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let bytes = word.to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&bytes[..n]);
    }
    out
}

fn mmc_reg_names() -> HashMap<u64, String> {
    let mut m: HashMap<u64, String> = dlt_dev_mmc::regs::SDHOST_REGISTERS
        .iter()
        .map(|(off, name)| (SDHOST_BASE + off, (*name).to_string()))
        .collect();
    for (off, name) in dlt_dev_mmc::regs::dmareg::DMA_REGISTERS {
        m.insert(dlt_dev_mmc::DMA_BASE + off, (*name).to_string());
    }
    m
}

fn usb_reg_names() -> HashMap<u64, String> {
    dlt_dev_usb::regs::USB_REGISTERS
        .iter()
        .map(|(off, name)| (USB_BASE + off, (*name).to_string()))
        .collect()
}

fn vchiq_reg_names() -> HashMap<u64, String> {
    dlt_dev_vchiq::regs::VCHIQ_REGISTERS
        .iter()
        .map(|(off, name)| (VCHIQ_BASE + off, (*name).to_string()))
        .collect()
}

// ---------------------------------------------------------------------------
// MMC
// ---------------------------------------------------------------------------

fn mmc_run(
    rw: Rw,
    blkcnt: u32,
    blkid: u32,
    dma_skew: u64,
    seed: u64,
) -> Result<RecordRun, RecorderError> {
    let platform = Platform::new();
    let sys =
        MmcSubsystem::attach(&platform).map_err(|e| RecorderError::DriverFailed(e.to_string()))?;
    let total = blkcnt as usize * dlt_dev_mmc::BLOCK_SIZE;

    // For reads, pre-populate the card so payload-sink discovery has unique
    // data to match against.
    if matches!(rw, Rw::Read) {
        let fixture = pattern_buf(total, seed ^ 0xfeed);
        let mut host_dev = sys.sdhost.lock();
        for b in 0..blkcnt as usize {
            host_dev.card_mut().poke_block(
                u64::from(blkid) + b as u64,
                &fixture[b * dlt_dev_mmc::BLOCK_SIZE..(b + 1) * dlt_dev_mmc::BLOCK_SIZE],
            );
        }
    }

    let io = BusIo::normal_world(
        platform.bus.clone(),
        DmaRegion::new(RECORD_DMA_BASE + dma_skew, RECORD_DMA_LEN),
    );
    let tio = TracingIo::new(io, mmc_reg_names(), "bcm2835-sdhost.c");
    let mut host = MmcHost::new(tio);
    host.set_record_mode(true);
    host.probe().map_err(|e| RecorderError::DriverFailed(e.to_string()))?;

    let mut buf = match rw {
        Rw::Write => pattern_buf(total, seed),
        Rw::Read => vec![0u8; total],
    };
    let input_buf = buf.clone();
    host.io_mut().set_enabled(true);
    host.do_io(rw, blkcnt, blkid, IoFlags::none(), &mut buf)
        .map_err(|e| RecorderError::DriverFailed(e.to_string()))?;
    host.io_mut().set_enabled(false);
    let trace = host.into_io().into_trace();
    let mut params: HashMap<String, u64> = HashMap::new();
    params.insert("rw".into(), rw.encode());
    params.insert("blkcnt".into(), u64::from(blkcnt));
    params.insert("blkid".into(), u64::from(blkid));
    params.insert("flag".into(), 0);
    Ok(RecordRun { params, input_buf, output_buf: buf, trace })
}

/// Record one MMC template (one read/write granularity).
pub fn record_mmc_template(rw: Rw, blkcnt: u32) -> Result<Template, RecorderError> {
    let base = mmc_run(rw, blkcnt, 1024, 0, 1)?;
    let variants =
        vec![mmc_run(rw, blkcnt, 8192, 0x4000, 2)?, mmc_run(rw, blkcnt, 262_144, 0x8000, 3)?];

    // Boundary probing: the last block id that stays on the recorded path.
    let candidate = CARD_BLOCKS - u64::from(blkcnt);
    let probe = |blkid: u64| -> ProbeOutcome {
        match mmc_run(rw, blkcnt, blkid as u32, 0, 9) {
            Ok(run) if run.trace.same_shape(&base.trace) => ProbeOutcome::SamePath,
            _ => ProbeOutcome::Diverged,
        }
    };
    let upper = match probe(candidate) {
        ProbeOutcome::SamePath => candidate,
        ProbeOutcome::Diverged => crate::analyze::bisect_upper_bound(262_144, candidate, probe),
    };

    let dir = match rw {
        Rw::Read => DataDirection::DeviceToUser,
        Rw::Write => DataDirection::UserToDevice,
    };
    let spec = TemplateSpec {
        name: format!("mmc_{}_{}", if matches!(rw, Rw::Read) { "rd" } else { "wr" }, blkcnt),
        entry: "replay_mmc".into(),
        device: "sdhost".into(),
        params: vec![
            ParamSpec { name: "rw".into(), constraint: Constraint::eq_const(rw.encode()) },
            ParamSpec {
                name: "blkcnt".into(),
                constraint: Constraint::eq_const(u64::from(blkcnt)),
            },
            ParamSpec {
                name: "blkid".into(),
                constraint: Constraint::InRange { min: 0, max: upper },
            },
            ParamSpec { name: "flag".into(), constraint: Constraint::Any },
        ],
        direction: dir,
        data_len: SymExpr::Const(u64::from(blkcnt) * 512),
        irq_line: Some(lines::MMC),
        reg_names: mmc_reg_names(),
        driver_tag: "bcm2835-sdhost.c".into(),
    };
    synthesize_template(&spec, &base, &variants)
}

/// Record the full MMC driverlet: read/write of 1, 8, 32, 128, 256 blocks
/// (the paper's ten-template campaign, Table 3), signed with [`DEV_KEY`].
pub fn record_mmc_driverlet() -> Result<Driverlet, RecorderError> {
    record_mmc_driverlet_subset(&[1, 8, 32, 128, 256])
}

/// Record an MMC driverlet restricted to the given block granularities
/// (useful for fast tests; the full campaign uses all five).
pub fn record_mmc_driverlet_subset(granularities: &[u32]) -> Result<Driverlet, RecorderError> {
    let mut templates = Vec::new();
    for &blkcnt in granularities {
        templates.push(record_mmc_template(Rw::Read, blkcnt)?);
        templates.push(record_mmc_template(Rw::Write, blkcnt)?);
    }
    let mut d = Driverlet::new("sdhost", "replay_mmc", templates);
    d.sign(DEV_KEY);
    Ok(d)
}

// ---------------------------------------------------------------------------
// USB mass storage
// ---------------------------------------------------------------------------

fn usb_run(
    rw: Rw,
    blkcnt: u32,
    blkid: u32,
    dma_skew: u64,
    seed: u64,
) -> Result<RecordRun, RecorderError> {
    let platform = Platform::new();
    let sys =
        UsbSubsystem::attach(&platform).map_err(|e| RecorderError::DriverFailed(e.to_string()))?;
    let total = blkcnt as usize * dlt_dev_usb::USB_BLOCK_SIZE;
    if matches!(rw, Rw::Read) {
        let fixture = pattern_buf(total, seed ^ 0xbeef);
        let mut hc = sys.hostctrl.lock();
        for b in 0..blkcnt as usize {
            hc.device_mut().disk_mut().poke_block(
                u64::from(blkid) + b as u64,
                &fixture[b * dlt_dev_usb::USB_BLOCK_SIZE..(b + 1) * dlt_dev_usb::USB_BLOCK_SIZE],
            );
        }
    }

    let io = BusIo::normal_world(
        platform.bus.clone(),
        DmaRegion::new(RECORD_DMA_BASE + dma_skew, RECORD_DMA_LEN),
    );
    let tio = TracingIo::new(io, usb_reg_names(), "dwc2-hcd.c");
    let mut drv = UsbStorageDriver::new(UsbHcd::new(tio));
    drv.init().map_err(|e| RecorderError::DriverFailed(e.to_string()))?;

    let mut buf = match rw {
        Rw::Write => pattern_buf(total, seed),
        Rw::Read => vec![0u8; total],
    };
    let input_buf = buf.clone();
    drv.hcd_mut().io_mut().set_enabled(true);
    drv.do_io(rw, blkcnt, blkid, IoFlags::none(), &mut buf)
        .map_err(|e| RecorderError::DriverFailed(e.to_string()))?;
    drv.hcd_mut().io_mut().set_enabled(false);
    let trace = {
        let hcd = drv.hcd_mut();
        std::mem::replace(
            hcd.io_mut(),
            TracingIo::new(
                BusIo::normal_world(platform.bus.clone(), DmaRegion::new(0x0700_0000, 0x1000)),
                HashMap::new(),
                "dwc2-hcd.c",
            ),
        )
        .into_trace()
    };
    let mut params: HashMap<String, u64> = HashMap::new();
    params.insert("rw".into(), rw.encode());
    params.insert("blkcnt".into(), u64::from(blkcnt));
    params.insert("blkid".into(), u64::from(blkid));
    params.insert("flag".into(), 0);
    Ok(RecordRun { params, input_buf, output_buf: buf, trace })
}

/// Record one USB mass-storage template.
pub fn record_usb_template(rw: Rw, blkcnt: u32) -> Result<Template, RecorderError> {
    let base = usb_run(rw, blkcnt, 2048, 0, 11)?;
    let variants =
        vec![usb_run(rw, blkcnt, 65_536, 0x4000, 12)?, usb_run(rw, blkcnt, 500_000, 0x8000, 13)?];
    let candidate = USB_DISK_BLOCKS - u64::from(blkcnt);
    let probe = |blkid: u64| -> ProbeOutcome {
        match usb_run(rw, blkcnt, blkid as u32, 0, 19) {
            Ok(run) if run.trace.same_shape(&base.trace) => ProbeOutcome::SamePath,
            _ => ProbeOutcome::Diverged,
        }
    };
    let upper = match probe(candidate) {
        ProbeOutcome::SamePath => candidate,
        ProbeOutcome::Diverged => crate::analyze::bisect_upper_bound(500_000, candidate, probe),
    };
    let dir = match rw {
        Rw::Read => DataDirection::DeviceToUser,
        Rw::Write => DataDirection::UserToDevice,
    };
    let spec = TemplateSpec {
        name: format!("usb_{}_{}", if matches!(rw, Rw::Read) { "rd" } else { "wr" }, blkcnt),
        entry: "replay_usb".into(),
        device: "dwc2".into(),
        params: vec![
            ParamSpec { name: "rw".into(), constraint: Constraint::eq_const(rw.encode()) },
            ParamSpec {
                name: "blkcnt".into(),
                constraint: Constraint::eq_const(u64::from(blkcnt)),
            },
            ParamSpec {
                name: "blkid".into(),
                constraint: Constraint::InRange { min: 0, max: upper },
            },
            ParamSpec { name: "flag".into(), constraint: Constraint::Any },
        ],
        direction: dir,
        data_len: SymExpr::Const(u64::from(blkcnt) * 512),
        irq_line: Some(lines::USB),
        reg_names: usb_reg_names(),
        driver_tag: "dwc2-hcd.c".into(),
    };
    synthesize_template(&spec, &base, &variants)
}

/// Record the full USB mass-storage driverlet (ten templates), signed.
pub fn record_usb_driverlet() -> Result<Driverlet, RecorderError> {
    record_usb_driverlet_subset(&[1, 8, 32, 128, 256])
}

/// Record a USB driverlet restricted to the given block granularities.
pub fn record_usb_driverlet_subset(granularities: &[u32]) -> Result<Driverlet, RecorderError> {
    let mut templates = Vec::new();
    for &blkcnt in granularities {
        templates.push(record_usb_template(Rw::Read, blkcnt)?);
        templates.push(record_usb_template(Rw::Write, blkcnt)?);
    }
    let mut d = Driverlet::new("dwc2", "replay_usb", templates);
    d.sign(DEV_KEY);
    Ok(d)
}

// ---------------------------------------------------------------------------
// Camera (VCHIQ / MMAL)
// ---------------------------------------------------------------------------

fn camera_run(
    frames: u32,
    resolution: CameraResolution,
    buf_size: usize,
    dma_skew: u64,
) -> Result<RecordRun, RecorderError> {
    let platform = Platform::new();
    let _sys = VchiqSubsystem::attach(&platform)
        .map_err(|e| RecorderError::DriverFailed(e.to_string()))?;
    let io = BusIo::normal_world(
        platform.bus.clone(),
        DmaRegion::new(RECORD_DMA_BASE + dma_skew, RECORD_DMA_LEN),
    );
    let tio = TracingIo::new(io, vchiq_reg_names(), "vchiq-mmal.c");
    let mut drv = VchiqDriver::new(tio);
    // Record with per-frame port re-arming so every frame of a burst starts
    // from an identical device state (and the replayed template pays the
    // paper's per-frame re-initialisation, §8.3.2).
    drv.set_record_mode(true);

    let mut buf = vec![0u8; buf_size];
    let input_buf = buf.clone();
    drv.io_mut().set_enabled(true);
    drv.capture(frames, resolution, &mut buf)
        .map_err(|e| RecorderError::DriverFailed(e.to_string()))?;
    drv.io_mut().set_enabled(false);
    let trace = std::mem::replace(
        drv.io_mut(),
        TracingIo::new(
            BusIo::normal_world(platform.bus.clone(), DmaRegion::new(0x0700_0000, 0x1000)),
            HashMap::new(),
            "vchiq-mmal.c",
        ),
    )
    .into_trace();
    let mut params: HashMap<String, u64> = HashMap::new();
    params.insert("frames".into(), u64::from(frames));
    params.insert("resolution".into(), u64::from(resolution.code()));
    params.insert("buf_size".into(), buf_size as u64);
    Ok(RecordRun { params, input_buf, output_buf: buf, trace })
}

/// Record one camera template (OneShot = 1 frame, ShortBurst = 10,
/// LongBurst = 100).
pub fn record_camera_template(frames: u32) -> Result<Template, RecorderError> {
    let buf_bytes = 2 << 20;
    let base = camera_run(frames, CameraResolution::R720p, buf_bytes, 0)?;
    let variants = vec![
        camera_run(frames, CameraResolution::R1080p, buf_bytes, 0x4000)?,
        camera_run(frames, CameraResolution::R1440p, buf_bytes, 0x8000)?,
        camera_run(frames, CameraResolution::R720p, buf_bytes + 0x1000, 0xc000)?,
    ];
    let name = match frames {
        1 => "camera_oneshot".to_string(),
        10 => "camera_shortburst".to_string(),
        100 => "camera_longburst".to_string(),
        n => format!("camera_burst_{n}"),
    };
    let spec = TemplateSpec {
        name,
        entry: "replay_cam".into(),
        device: "vchiq".into(),
        params: vec![
            ParamSpec {
                name: "frames".into(),
                constraint: Constraint::eq_const(u64::from(frames)),
            },
            ParamSpec {
                name: "resolution".into(),
                constraint: Constraint::OneOf(
                    CameraResolution::all().iter().map(|r| u64::from(r.code())).collect(),
                ),
            },
            ParamSpec {
                name: "buf_size".into(),
                constraint: Constraint::InRange {
                    min: u64::from(CameraResolution::R1440p.frame_bytes()),
                    max: u64::from(u32::MAX),
                },
            },
        ],
        direction: DataDirection::DeviceToUser,
        data_len: SymExpr::Const(0),
        irq_line: Some(lines::VCHIQ),
        reg_names: vchiq_reg_names(),
        driver_tag: "vchiq-mmal.c".into(),
    };
    synthesize_template(&spec, &base, &variants)
}

/// Record the camera driverlet (OneShot, ShortBurst, LongBurst), signed.
pub fn record_camera_driverlet() -> Result<Driverlet, RecorderError> {
    record_camera_driverlet_subset(&[1, 10, 100])
}

/// Record a camera driverlet restricted to the given burst sizes.
pub fn record_camera_driverlet_subset(bursts: &[u32]) -> Result<Driverlet, RecorderError> {
    let mut templates = Vec::new();
    for &frames in bursts {
        templates.push(record_camera_template(frames)?);
    }
    let mut d = Driverlet::new("vchiq", "replay_cam", templates);
    d.sign(DEV_KEY);
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_template::{Event, ReadSink};

    #[test]
    fn pattern_buffers_have_unique_windows() {
        let b = pattern_buf(4096, 7);
        let mut seen = std::collections::HashSet::new();
        for chunk in b.chunks(8) {
            assert!(seen.insert(chunk.to_vec()));
        }
        assert_ne!(pattern_buf(64, 1), pattern_buf(64, 2));
    }

    #[test]
    fn mmc_read_template_generalises_blkid_and_finds_the_payload_tail() {
        let t = record_mmc_template(Rw::Read, 8).unwrap();
        assert_eq!(t.device, "sdhost");
        assert!(t.validate().is_ok());
        let b = t.breakdown();
        assert!(b.input >= 5, "expected several input events, got {b:?}");
        assert!(b.output >= 10, "expected many output events, got {b:?}");
        assert!(b.meta >= 2, "expected poll/delay meta events, got {b:?}");
        // SDARG must have been generalised to the blkid parameter.
        let sdarg_addr = SDHOST_BASE + dlt_dev_mmc::regs::SDARG;
        let generalised = t.events.iter().any(|re| match &re.event {
            Event::Write { iface: dlt_template::Iface::Reg { addr, .. }, value } => {
                *addr == sdarg_addr && *value == SymExpr::Param("blkid".into())
            }
            _ => false,
        });
        assert!(generalised, "SDARG write was not parameterised on blkid");
        // The last three words of the read arrive via SDDATA as user data.
        let tail_reads = t
            .events
            .iter()
            .filter(|re| matches!(&re.event, Event::Read { sink: ReadSink::UserData { .. }, .. }))
            .count();
        assert_eq!(tail_reads, 3, "expected the 3-word PIO tail to be user data");
        // blkid coverage reaches (almost) the whole card.
        let blkid = t.params.iter().find(|p| p.name == "blkid").unwrap();
        match &blkid.constraint {
            Constraint::InRange { min, max } => {
                assert_eq!(*min, 0);
                assert_eq!(*max, CARD_BLOCKS - 8);
            }
            other => panic!("unexpected constraint {other:?}"),
        }
    }

    #[test]
    fn mmc_write_template_copies_user_data_into_dma_pages() {
        let t = record_mmc_template(Rw::Write, 8).unwrap();
        let copies: Vec<_> = t
            .events
            .iter()
            .filter_map(|re| match &re.event {
                Event::CopyUserToDma { user_offset, .. } => Some(*user_offset),
                _ => None,
            })
            .collect();
        assert_eq!(copies, vec![0], "one 4 KiB page copied from offset 0");
        assert_eq!(t.direction, DataDirection::UserToDevice);
    }

    #[test]
    fn usb_template_parameterises_the_cbw_lba_field() {
        let t = record_usb_template(Rw::Read, 8).unwrap();
        assert_eq!(t.device, "dwc2");
        assert!(t.validate().is_ok());
        // Some shared-memory write (a CBW word) must reference blkid.
        let cbw_param = t.events.iter().any(|re| match &re.event {
            Event::Write { iface: dlt_template::Iface::Shm { .. }, value } => {
                value.referenced_params().contains(&"blkid".to_string())
            }
            _ => false,
        });
        assert!(cbw_param, "no CBW word was parameterised on blkid");
        // The bulk data lands in the user buffer via a DMA copy.
        assert!(t.events.iter().any(|re| matches!(&re.event, Event::CopyDmaToUser { .. })));
    }

    #[test]
    fn camera_oneshot_template_captures_img_size_and_covers_all_resolutions() {
        let t = record_camera_template(1).unwrap();
        assert_eq!(t.device, "vchiq");
        assert!(t.validate().is_ok());
        // The device-assigned image size is captured...
        let captured = t
            .events
            .iter()
            .any(|re| matches!(&re.event, Event::Read { sink: ReadSink::Capture(_), .. }));
        assert!(captured, "img_size was not captured");
        // ...and echoed back in a later shared-memory write.
        let echoed = t.events.iter().any(|re| match &re.event {
            Event::Write { iface: dlt_template::Iface::Shm { .. }, value } => {
                matches!(value, SymExpr::Captured(_))
                    || matches!(value, SymExpr::Add(a, _) if matches!(**a, SymExpr::Captured(_)))
            }
            _ => false,
        });
        assert!(echoed, "captured img_size is not echoed to the device");
        // Resolution coverage.
        let res = t.params.iter().find(|p| p.name == "resolution").unwrap();
        assert_eq!(res.constraint, Constraint::OneOf(vec![720, 1080, 1440]));
    }

    #[test]
    fn campaigns_emit_binary_bundles_that_round_trip() {
        let d = record_mmc_driverlet_subset(&[1]).unwrap();
        let bytes = emit_binary_bundle(&d);
        let back = dlt_template::Driverlet::from_binary(&bytes).unwrap();
        assert_eq!(back, d);
        assert!(back.verify(DEV_KEY).is_ok(), "signature must survive the binary round trip");
        assert!(
            bytes.len() * 5 <= d.compact_size(),
            "binary bundle ({} B) should be at least 5x smaller than compact JSON ({} B)",
            bytes.len(),
            d.compact_size()
        );
    }

    #[test]
    fn driverlet_bundles_are_signed_and_select_by_granularity() {
        let d = record_mmc_driverlet_subset(&[1, 8]).unwrap();
        assert!(d.verify(DEV_KEY).is_ok());
        assert_eq!(d.templates.len(), 4);
        let args: HashMap<String, u64> = [
            ("rw".to_string(), Rw::Read.encode()),
            ("blkcnt".to_string(), 8),
            ("blkid".to_string(), 4096),
            ("flag".to_string(), 0),
        ]
        .into_iter()
        .collect();
        assert_eq!(d.select(&args).unwrap().name, "mmc_rd_8");
        let mut oob = args.clone();
        oob.insert("blkid".to_string(), CARD_BLOCKS);
        assert!(d.select(&oob).is_none(), "out-of-coverage blkid must not select");
    }
}
