//! Shared-memory queue layout used by both the VC4 model and the gold driver.
//!
//! The queue lives in a DMA allocation owned by the CPU side. Slot 0 holds
//! the metadata both sides update (the paper: "Slot 0 is special, as it
//! contains metadata that describes the whole message queue and will be
//! updated by both CPU and VC4"); the remaining space is split into a CPU→VC4
//! (TX) slot area and a VC4→CPU (RX) slot area.

use dlt_hw::{HwResult, PhysMem};

use crate::msg::MmalMessage;

/// Magic value in slot 0 ("VCHQ").
pub const MAGIC: u32 = 0x5643_4851;
/// Queue protocol version.
pub const VERSION: u32 = 1;

/// Total queue size in bytes (slot 0 + TX area + RX area).
pub const QUEUE_BYTES: usize = SLOT0_BYTES + TX_AREA_BYTES + RX_AREA_BYTES;
/// Slot 0 (metadata) size.
pub const SLOT0_BYTES: usize = 0x1000;
/// CPU→VC4 slot area size.
pub const TX_AREA_BYTES: usize = 0x10000;
/// VC4→CPU slot area size.
pub const RX_AREA_BYTES: usize = 0x10000;

/// Offset of the TX area from the queue base.
pub const TX_AREA_OFF: u64 = SLOT0_BYTES as u64;
/// Offset of the RX area from the queue base.
pub const RX_AREA_OFF: u64 = (SLOT0_BYTES + TX_AREA_BYTES) as u64;

/// Required alignment of the queue base address (the driver publishes
/// `queue & !0x3fff`, so the low 14 bits must be zero — Table 6).
pub const QUEUE_ALIGN: u64 = 0x4000;

/// Slot 0 field offsets.
pub mod slot0 {
    /// Magic value.
    pub const MAGIC: u64 = 0x00;
    /// Protocol version.
    pub const VERSION: u64 = 0x04;
    /// Number of slots (informational).
    pub const NUM_SLOTS: u64 = 0x08;
    /// CPU write position in the TX area (bytes).
    pub const TX_POS: u64 = 0x0c;
    /// VC4 write position in the RX area (bytes).
    pub const RX_POS: u64 = 0x10;
    /// CPU-side slot index (informational).
    pub const CPU_SLOT: u64 = 0x14;
    /// VC4-side slot index (informational).
    pub const VC4_SLOT: u64 = 0x18;
}

/// Words the CPU must write to initialise slot 0. Returned as
/// `(offset-from-queue-base, value)` pairs so the gold driver can emit them
/// through its traced shared-memory interface.
pub fn slot0_init_words() -> Vec<(u64, u32)> {
    vec![
        (slot0::MAGIC, MAGIC),
        (slot0::VERSION, VERSION),
        (slot0::NUM_SLOTS, ((QUEUE_BYTES / 0x1000) as u32)),
        (slot0::TX_POS, 0),
        (slot0::RX_POS, 0),
        (slot0::CPU_SLOT, 1),
        (slot0::VC4_SLOT, (1 + TX_AREA_BYTES / 0x1000) as u32),
    ]
}

/// Words the CPU writes to append `msg` to the TX area at byte position
/// `pos`, plus the updated TX_POS word. Returns `(words, new_pos)`.
pub fn tx_message_words(pos: u32, msg: &MmalMessage) -> (Vec<(u64, u32)>, u32) {
    let mut words = Vec::new();
    let encoded = msg.encode();
    let base = TX_AREA_OFF + u64::from(pos);
    for (i, w) in encoded.iter().enumerate() {
        words.push((base + (i as u64) * 4, *w));
    }
    let new_pos = pos + msg.padded_len() as u32;
    words.push((slot0::TX_POS, new_pos));
    (words, new_pos)
}

/// Read one message from an area (`area_off` is [`TX_AREA_OFF`] or
/// [`RX_AREA_OFF`]) at byte position `pos` directly from physical memory.
/// Returns the message and the next position.
pub fn read_message(
    mem: &PhysMem,
    queue_base: u64,
    area_off: u64,
    pos: u32,
) -> HwResult<Option<(MmalMessage, u32)>> {
    let addr = queue_base + area_off + u64::from(pos);
    let mut header = [0u32; 3];
    for (i, h) in header.iter_mut().enumerate() {
        *h = mem.read32(addr + (i as u64) * 4)?;
    }
    let payload_words = (header[2] as usize) / 4;
    let mut words = header.to_vec();
    for i in 0..payload_words.min(crate::msg::MAX_PAYLOAD_WORDS) {
        words.push(mem.read32(addr + 12 + (i as u64) * 4)?);
    }
    match MmalMessage::decode(&words) {
        Some(msg) => {
            let next = pos + msg.padded_len() as u32;
            Ok(Some((msg, next)))
        }
        None => Ok(None),
    }
}

/// Write one message into an area directly (used by the VC4 device model for
/// its replies). Returns the next position.
pub fn write_message(
    mem: &mut PhysMem,
    queue_base: u64,
    area_off: u64,
    pos: u32,
    msg: &MmalMessage,
) -> HwResult<u32> {
    let addr = queue_base + area_off + u64::from(pos);
    for (i, w) in msg.encode().iter().enumerate() {
        mem.write32(addr + (i as u64) * 4, *w)?;
    }
    // Zero the padding so stale bytes from earlier sessions cannot be
    // misparsed as a message header.
    let wire = msg.wire_len();
    let padded = msg.padded_len();
    if padded > wire {
        mem.fill(addr + wire as u64, padded - wire, 0)?;
    }
    Ok(pos + padded as u32)
}

/// Offsets inside a host page list handed to VC4 with BufferFromHost.
pub mod pagelist {
    /// Total usable length of the buffer in bytes.
    pub const TOTAL_LEN: u64 = 0x00;
    /// Number of 4 KiB pages that follow.
    pub const NUM_PAGES: u64 = 0x04;
    /// First page physical address (subsequent pages every 4 bytes).
    pub const FIRST_PAGE: u64 = 0x08;
    /// Page size the list describes.
    pub const PAGE_BYTES: usize = 4096;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgType;

    #[test]
    fn layout_is_consistent() {
        assert_eq!(QUEUE_BYTES, 0x21000);
        assert_eq!(TX_AREA_OFF, 0x1000);
        assert_eq!(RX_AREA_OFF, 0x11000);
        assert_eq!(QUEUE_ALIGN & (QUEUE_ALIGN - 1), 0, "alignment must be a power of two");
    }

    #[test]
    fn slot0_init_words_cover_all_fields() {
        let words = slot0_init_words();
        assert_eq!(words.len(), 7);
        assert!(words.iter().any(|(o, v)| *o == slot0::MAGIC && *v == MAGIC));
        assert!(words.iter().any(|(o, v)| *o == slot0::TX_POS && *v == 0));
    }

    #[test]
    fn tx_words_then_device_read_round_trip() {
        let mut mem = PhysMem::new(0, 0x40000);
        let base = 0x8000u64;
        let msg = MmalMessage::new(MsgType::PortSetFormat, 3, vec![1080]);
        let (words, new_pos) = tx_message_words(0, &msg);
        for (off, w) in &words {
            mem.write32(base + off, *w).unwrap();
        }
        assert_eq!(new_pos, 64);
        let (back, next) = read_message(&mem, base, TX_AREA_OFF, 0).unwrap().unwrap();
        assert_eq!(back, msg);
        assert_eq!(next, 64);
        // TX_POS word was included.
        assert_eq!(mem.read32(base + slot0::TX_POS).unwrap(), 64);
    }

    #[test]
    fn device_write_then_read_round_trip() {
        let mut mem = PhysMem::new(0, 0x40000);
        let base = 0x4000u64;
        let m1 = MmalMessage::new(MsgType::ConnectAck, 0, vec![]);
        let m2 = MmalMessage::new(MsgType::BufferToHost, 9, vec![311_296]);
        let p1 = write_message(&mut mem, base, RX_AREA_OFF, 0, &m1).unwrap();
        let p2 = write_message(&mut mem, base, RX_AREA_OFF, p1, &m2).unwrap();
        assert!(p2 > p1);
        let (r1, n1) = read_message(&mem, base, RX_AREA_OFF, 0).unwrap().unwrap();
        let (r2, _n2) = read_message(&mem, base, RX_AREA_OFF, n1).unwrap().unwrap();
        assert_eq!(r1, m1);
        assert_eq!(r2, m2);
    }

    #[test]
    fn garbage_slot_reads_as_none() {
        let mem = PhysMem::new(0, 0x40000);
        // All zeros: type 0 is invalid.
        assert!(read_message(&mem, 0, TX_AREA_OFF, 0).unwrap().is_none());
    }

    #[test]
    fn out_of_bounds_read_is_an_error() {
        let mem = PhysMem::new(0, 0x1000);
        assert!(read_message(&mem, 0, RX_AREA_OFF, 0).is_err());
    }
}
