//! Error types for the hardware substrate.

use std::fmt;

/// Errors raised by the hardware substrate.
///
/// These model real bus/hardware failure modes: unmapped accesses, TZASC
/// permission faults, timeouts while waiting for device progress, and
/// out-of-bounds DMA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HwError {
    /// The physical address is not claimed by any device or memory region.
    Unmapped {
        /// Faulting physical address.
        addr: u64,
    },
    /// The access violated the address-space controller (TZASC) policy,
    /// e.g. the normal world touched a device assigned to the secure world.
    PermissionDenied {
        /// Faulting physical address.
        addr: u64,
        /// World that attempted the access.
        world: crate::bus::World,
    },
    /// A DMA or memory access fell outside the backing region.
    OutOfBounds {
        /// Faulting physical address.
        addr: u64,
        /// Number of bytes requested.
        len: usize,
    },
    /// The access was not naturally aligned for its width.
    Misaligned {
        /// Faulting physical address.
        addr: u64,
        /// Required alignment in bytes.
        align: u64,
    },
    /// Waiting for an interrupt or a register condition timed out.
    Timeout {
        /// Human-readable description of what was being waited for.
        what: String,
        /// How long (virtual microseconds) we waited before giving up.
        waited_us: u64,
    },
    /// A device rejected the operation (e.g. command sent while busy).
    DeviceError {
        /// Device name.
        device: String,
        /// Reason string from the device model.
        reason: String,
    },
    /// No device with the requested name is attached to the bus.
    NoSuchDevice {
        /// Requested device name.
        name: String,
    },
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::Unmapped { addr } => write!(f, "unmapped physical address {addr:#x}"),
            HwError::PermissionDenied { addr, world } => {
                write!(f, "TZASC permission denied at {addr:#x} from {world:?}")
            }
            HwError::OutOfBounds { addr, len } => {
                write!(f, "access out of bounds at {addr:#x} (+{len} bytes)")
            }
            HwError::Misaligned { addr, align } => {
                write!(f, "misaligned access at {addr:#x} (requires {align}-byte alignment)")
            }
            HwError::Timeout { what, waited_us } => {
                write!(f, "timeout after {waited_us} us waiting for {what}")
            }
            HwError::DeviceError { device, reason } => {
                write!(f, "device {device}: {reason}")
            }
            HwError::NoSuchDevice { name } => write!(f, "no such device: {name}"),
        }
    }
}

impl std::error::Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::World;

    #[test]
    fn display_formats_are_informative() {
        let e = HwError::Unmapped { addr: 0x3f30_0000 };
        assert!(e.to_string().contains("0x3f300000"));

        let e = HwError::PermissionDenied { addr: 0x10, world: World::NonSecure };
        assert!(e.to_string().contains("NonSecure"));

        let e = HwError::Timeout { what: "SDHSTS busy".into(), waited_us: 500 };
        assert!(e.to_string().contains("500 us"));
        assert!(e.to_string().contains("SDHSTS"));

        let e = HwError::OutOfBounds { addr: 0x100, len: 4096 };
        assert!(e.to_string().contains("4096"));

        let e = HwError::Misaligned { addr: 0x3, align: 4 };
        assert!(e.to_string().contains("4-byte"));

        let e = HwError::DeviceError { device: "sdhost".into(), reason: "busy".into() };
        assert!(e.to_string().contains("sdhost"));

        let e = HwError::NoSuchDevice { name: "nic".into() };
        assert!(e.to_string().contains("nic"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(HwError::Unmapped { addr: 1 }, HwError::Unmapped { addr: 1 });
        assert_ne!(HwError::Unmapped { addr: 1 }, HwError::Unmapped { addr: 2 });
    }
}
