//! Deterministic virtual clock.
//!
//! Every platform (one simulated TEE core) owns one [`VirtualClock`]; all
//! devices, drivers, the TEE and the replayer attached to that platform
//! share it. Time only advances when someone spends it: an MMIO access, a
//! DMA transfer, a flash program, a polling delay, a world switch. This
//! makes every experiment bit-for-bit reproducible while still producing
//! meaningful throughput/latency numbers for the Figure 5-7 reproductions.
//!
//! Multi-core setups (the `dlt-serve` lane-per-device model) run one
//! platform — and therefore one clock — per core, all starting from the
//! same epoch zero. A core that sits idle between batches of work is
//! fast-forwarded to the next event with [`VirtualClock::advance_idle_to`],
//! which books the skipped span as *idle* rather than busy time, so lane
//! utilisation can be reported as `busy_ns / now_ns`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cost::CostModel;

/// Lock-free published view of one [`VirtualClock`].
///
/// The clock itself lives behind its platform's mutex and is mutated only
/// by the thread driving that platform; every advance also stores the new
/// `now`/`idle` values here with `Release` ordering, so *other* threads
/// (the `dlt-serve` front-end computing the pointwise-max clock join, lane
/// status snapshots) can read a consistent recent value with an `Acquire`
/// load and **no lock**. Readers may observe a value that is a few
/// advances stale — never torn, never retreating — which is exactly the
/// monotone-lower-bound semantics a max-join needs.
#[derive(Debug, Default)]
pub struct ClockCell {
    now_ns: AtomicU64,
    idle_ns: AtomicU64,
}

impl ClockCell {
    /// Last published virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Acquire)
    }

    /// Last published idle span in nanoseconds.
    pub fn idle_ns(&self) -> u64 {
        self.idle_ns.load(Ordering::Acquire)
    }

    /// Last published busy span: `now_ns - idle_ns`.
    pub fn busy_ns(&self) -> u64 {
        // Load idle first: if the writer advances between the two loads the
        // subtraction can only *under*-report busy time, never go negative
        // past the saturation guard.
        let idle = self.idle_ns();
        self.now_ns().saturating_sub(idle)
    }
}

/// A monotonically increasing virtual clock measured in nanoseconds.
#[derive(Debug)]
pub struct VirtualClock {
    now_ns: u64,
    cost: CostModel,
    /// Number of `advance` calls, useful to sanity-check that a workload
    /// actually exercised the clock.
    advances: u64,
    /// Nanoseconds skipped via [`VirtualClock::advance_idle_to`] — time the
    /// owning core spent waiting for work rather than doing it.
    idle_ns: u64,
    /// Lock-free mirror of `now_ns`/`idle_ns` for cross-thread readers.
    cell: Arc<ClockCell>,
}

impl Clone for VirtualClock {
    fn clone(&self) -> Self {
        // A cloned clock is an independent timeline: it publishes into its
        // own cell, never the original's.
        let cell = Arc::new(ClockCell::default());
        cell.now_ns.store(self.now_ns, Ordering::Release);
        cell.idle_ns.store(self.idle_ns, Ordering::Release);
        VirtualClock {
            now_ns: self.now_ns,
            cost: self.cost.clone(),
            advances: self.advances,
            idle_ns: self.idle_ns,
            cell,
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new(CostModel::default())
    }
}

impl VirtualClock {
    /// Create a clock starting at time zero with the given cost model.
    pub fn new(cost: CostModel) -> Self {
        VirtualClock {
            now_ns: 0,
            cost,
            advances: 0,
            idle_ns: 0,
            cell: Arc::new(ClockCell::default()),
        }
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// The lock-free published view of this clock. Cross-thread readers
    /// (the serve front-end's max-scan clock join) hold this handle and
    /// never touch the platform mutex the clock itself lives behind.
    pub fn cell(&self) -> Arc<ClockCell> {
        Arc::clone(&self.cell)
    }

    /// Publish the current `now`/`idle` values into the lock-free cell.
    fn publish(&self) {
        self.cell.now_ns.store(self.now_ns, Ordering::Release);
        self.cell.idle_ns.store(self.idle_ns, Ordering::Release);
    }

    /// Current virtual time in microseconds (truncated).
    pub fn now_us(&self) -> u64 {
        self.now_ns / 1_000
    }

    /// Current virtual time in milliseconds (truncated).
    pub fn now_ms(&self) -> u64 {
        self.now_ns / 1_000_000
    }

    /// The shared cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Replace the cost model (used by ablation benchmarks).
    pub fn set_cost(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Advance time by `ns` nanoseconds.
    pub fn advance_ns(&mut self, ns: u64) {
        self.now_ns = self.now_ns.saturating_add(ns);
        self.advances += 1;
        self.publish();
    }

    /// Advance time by `us` microseconds.
    pub fn advance_us(&mut self, us: u64) {
        self.advance_ns(us.saturating_mul(1_000));
    }

    /// Advance the clock to `deadline_ns` if it is in the future; do nothing
    /// if the deadline has already passed.
    pub fn advance_to(&mut self, deadline_ns: u64) {
        if deadline_ns > self.now_ns {
            self.now_ns = deadline_ns;
            self.advances += 1;
            self.publish();
        }
    }

    /// Fast-forward to `deadline_ns`, booking the skipped span as idle
    /// time. This is the multi-core scheduler's "the core had nothing to do
    /// until the next request arrived" transition: the clock jumps, but the
    /// span does not count as busy time in [`VirtualClock::busy_ns`].
    pub fn advance_idle_to(&mut self, deadline_ns: u64) {
        if deadline_ns > self.now_ns {
            self.idle_ns += deadline_ns - self.now_ns;
            self.now_ns = deadline_ns;
            self.advances += 1;
            self.publish();
        }
    }

    /// Total nanoseconds skipped as idle via
    /// [`VirtualClock::advance_idle_to`].
    pub fn idle_ns(&self) -> u64 {
        self.idle_ns
    }

    /// Nanoseconds actually spent doing work: `now_ns - idle_ns`.
    pub fn busy_ns(&self) -> u64 {
        self.now_ns.saturating_sub(self.idle_ns)
    }

    /// A deadline `us` microseconds from now.
    pub fn deadline_after_us(&self, us: u64) -> u64 {
        self.now_ns.saturating_add(us.saturating_mul(1_000))
    }

    /// A deadline `ns` nanoseconds from now.
    pub fn deadline_after_ns(&self, ns: u64) -> u64 {
        self.now_ns.saturating_add(ns)
    }

    /// Number of times the clock was advanced.
    pub fn advance_count(&self) -> u64 {
        self.advances
    }

    /// Charge the cost of one MMIO access (cached or uncached mapping).
    pub fn charge_mmio(&mut self, uncached: bool) {
        self.advance_ns(self.cost.mmio(uncached));
    }

    /// Charge one world switch (SMC entry + exit).
    pub fn charge_world_switch(&mut self) {
        self.advance_ns(self.cost.world_switch_ns);
    }

    /// Charge a PIO copy of `words` 32-bit words.
    pub fn charge_pio_words(&mut self, words: u64) {
        self.advance_ns(self.cost.dram_word_copy_ns.saturating_mul(words));
    }

    /// Charge a DMA transfer covering `pages` 4 KiB pages.
    pub fn charge_dma(&mut self, pages: u64) {
        let ns = self.cost.dma_transfer(pages);
        self.advance_ns(ns);
    }
}

/// A simple elapsed-time scope: records the start time and reports the delta.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start_ns: u64,
}

impl Stopwatch {
    /// Start a stopwatch at the clock's current time.
    pub fn start(clock: &VirtualClock) -> Self {
        Stopwatch { start_ns: clock.now_ns() }
    }

    /// Elapsed virtual nanoseconds since the stopwatch started.
    pub fn elapsed_ns(&self, clock: &VirtualClock) -> u64 {
        clock.now_ns().saturating_sub(self.start_ns)
    }

    /// Elapsed virtual microseconds since the stopwatch started.
    pub fn elapsed_us(&self, clock: &VirtualClock) -> u64 {
        self.elapsed_ns(clock) / 1_000
    }

    /// Elapsed virtual milliseconds since the stopwatch started.
    pub fn elapsed_ms(&self, clock: &VirtualClock) -> u64 {
        self.elapsed_ns(clock) / 1_000_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut c = VirtualClock::default();
        assert_eq!(c.now_ns(), 0);
        c.advance_ns(1_500);
        assert_eq!(c.now_ns(), 1_500);
        assert_eq!(c.now_us(), 1);
        c.advance_us(10);
        assert_eq!(c.now_ns(), 11_500);
        assert_eq!(c.advance_count(), 2);
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut c = VirtualClock::default();
        c.advance_ns(100);
        c.advance_to(50); // in the past -> no-op
        assert_eq!(c.now_ns(), 100);
        c.advance_to(400);
        assert_eq!(c.now_ns(), 400);
    }

    #[test]
    fn deadlines_are_relative_to_now() {
        let mut c = VirtualClock::default();
        c.advance_us(5);
        assert_eq!(c.deadline_after_us(10), 15_000);
        assert_eq!(c.deadline_after_ns(1), 5_001);
    }

    #[test]
    fn charging_uses_the_cost_model() {
        let mut c = VirtualClock::default();
        let cached = c.cost().mmio_access_ns;
        let uncached = c.cost().mmio_uncached_ns;
        c.charge_mmio(false);
        assert_eq!(c.now_ns(), cached);
        c.charge_mmio(true);
        assert_eq!(c.now_ns(), cached + uncached);
    }

    #[test]
    fn stopwatch_measures_deltas() {
        let mut c = VirtualClock::default();
        c.advance_us(3);
        let sw = Stopwatch::start(&c);
        c.advance_us(7);
        assert_eq!(sw.elapsed_us(&c), 7);
        assert_eq!(sw.elapsed_ns(&c), 7_000);
    }

    #[test]
    fn idle_skips_are_booked_separately_from_busy_time() {
        let mut c = VirtualClock::default();
        c.advance_ns(1_000); // busy
        c.advance_idle_to(5_000); // core waits for the next arrival
        c.advance_ns(2_000); // busy again
        assert_eq!(c.now_ns(), 7_000);
        assert_eq!(c.idle_ns(), 4_000);
        assert_eq!(c.busy_ns(), 3_000);
        // Idle skips into the past are no-ops.
        c.advance_idle_to(6_000);
        assert_eq!(c.idle_ns(), 4_000);
    }

    #[test]
    fn published_cell_tracks_every_advance_kind() {
        let mut c = VirtualClock::default();
        let cell = c.cell();
        assert_eq!(cell.now_ns(), 0);
        c.advance_ns(1_000);
        assert_eq!(cell.now_ns(), 1_000);
        c.advance_idle_to(5_000);
        assert_eq!((cell.now_ns(), cell.idle_ns(), cell.busy_ns()), (5_000, 4_000, 1_000));
        c.advance_to(9_000);
        assert_eq!(cell.now_ns(), 9_000);
        // A clone publishes into its own cell, not the original's.
        let mut fork = c.clone();
        let fork_cell = fork.cell();
        assert_eq!(fork_cell.now_ns(), 9_000);
        fork.advance_ns(1);
        assert_eq!(fork_cell.now_ns(), 9_001);
        assert_eq!(cell.now_ns(), 9_000);
    }

    #[test]
    fn saturating_never_overflows() {
        let mut c = VirtualClock::default();
        c.advance_ns(u64::MAX);
        c.advance_ns(u64::MAX);
        assert_eq!(c.now_ns(), u64::MAX);
    }
}
