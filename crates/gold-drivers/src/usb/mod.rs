//! The USB gold-driver stack: host-controller driver plus mass-storage class.

pub mod hcd;
pub mod storage;

pub use hcd::UsbHcd;
pub use storage::UsbStorageDriver;
