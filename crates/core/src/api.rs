//! The trustlet-facing driverlet interfaces (`driverlet.h` in Figure 8).

use crate::replayer::{ReplayError, ReplayOutcome, Replayer};

/// MMC block size in bytes.
pub const MMC_BLOCK_SIZE: usize = 512;

fn block_args(rw: u64, blkcnt: u32, blkid: u32, flag: u64) -> [(&'static str, u64); 4] {
    [("rw", rw), ("blkcnt", u64::from(blkcnt)), ("blkid", u64::from(blkid)), ("flag", flag)]
}

/// `replay_mmc(rw, blkcnt, blkid, flag, buf)` — read or write `blkcnt`
/// 512-byte blocks starting at `blkid` on the secure SD card.
///
/// `rw` uses the paper's encoding: `0x1` = read, `0x10` = write.
///
/// # Example
///
/// Record a driverlet in the normal world, hand the controller to the TEE,
/// then round-trip a block through the secure SD card:
///
/// ```
/// use dlt_core::{replay_mmc, Replayer};
/// use dlt_dev_mmc::MmcSubsystem;
/// use dlt_hw::Platform;
/// use dlt_recorder::campaign::{record_mmc_driverlet_subset, DEV_KEY};
/// use dlt_tee::{SecureIo, TeeKernel};
///
/// let driverlet = record_mmc_driverlet_subset(&[1]).expect("record campaign");
///
/// let platform = Platform::new();
/// MmcSubsystem::attach(&platform).expect("attach MMC");
/// TeeKernel::install(&platform, &["sdhost", "dma"]).expect("install TEE");
/// let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
/// replayer.load_driverlet(driverlet, DEV_KEY).expect("verify + load");
///
/// let mut block = vec![0u8; 512];
/// block[..5].copy_from_slice(b"hello");
/// replay_mmc(&mut replayer, 0x10, 1, 42, 0, &mut block).expect("secure write");
///
/// let mut back = vec![0u8; 512];
/// replay_mmc(&mut replayer, 0x1, 1, 42, 0, &mut back).expect("secure read");
/// assert_eq!(&back[..5], b"hello");
/// ```
pub fn replay_mmc(
    replayer: &mut Replayer,
    rw: u64,
    blkcnt: u32,
    blkid: u32,
    flag: u64,
    buf: &mut [u8],
) -> Result<ReplayOutcome, ReplayError> {
    if buf.len() < blkcnt as usize * MMC_BLOCK_SIZE {
        return Err(ReplayError::Invalid("buffer smaller than the requested blocks".into()));
    }
    replayer.invoke_args("replay_mmc", &block_args(rw, blkcnt, blkid, flag), buf)
}

/// `replay_usb(rw, blkcnt, blkid, flag, buf)` — read or write `blkcnt`
/// 512-byte blocks on the secure USB mass-storage stick.
///
/// # Example
///
/// Same record-then-replay flow as [`replay_mmc`], against the DWC2 host
/// controller and its bulk-only-transport flash drive:
///
/// ```
/// use dlt_core::{replay_usb, Replayer};
/// use dlt_dev_usb::UsbSubsystem;
/// use dlt_hw::Platform;
/// use dlt_recorder::campaign::{record_usb_driverlet_subset, DEV_KEY};
/// use dlt_tee::{SecureIo, TeeKernel};
///
/// let driverlet = record_usb_driverlet_subset(&[8]).expect("record campaign");
///
/// let platform = Platform::new();
/// UsbSubsystem::attach(&platform).expect("attach USB");
/// TeeKernel::install(&platform, &["dwc2"]).expect("install TEE");
/// let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
/// replayer.load_driverlet(driverlet, DEV_KEY).expect("verify + load");
///
/// let mut buf = vec![0xabu8; 8 * 512];
/// replay_usb(&mut replayer, 0x10, 8, 2000, 0, &mut buf).expect("secure write");
/// let mut back = vec![0u8; 8 * 512];
/// replay_usb(&mut replayer, 0x1, 8, 2000, 0, &mut back).expect("secure read");
/// assert_eq!(back, buf);
/// ```
pub fn replay_usb(
    replayer: &mut Replayer,
    rw: u64,
    blkcnt: u32,
    blkid: u32,
    flag: u64,
    buf: &mut [u8],
) -> Result<ReplayOutcome, ReplayError> {
    if buf.len() < blkcnt as usize * MMC_BLOCK_SIZE {
        return Err(ReplayError::Invalid("buffer smaller than the requested blocks".into()));
    }
    replayer.invoke_args("replay_usb", &block_args(rw, blkcnt, blkid, flag), buf)
}

/// Block-granular secure IO, independent of who executes the replay.
///
/// Trustlets written against this trait hold *a handle* rather than a
/// [`Replayer`]: a bare replayer implements it directly (exclusive
/// ownership, as in the paper's single-trustlet deployments), and
/// `dlt-serve`'s session handles implement it by submitting into the
/// shared per-device scheduler — so the same trustlet code runs standalone
/// or multiplexed without changes.
pub trait SecureBlockIo {
    /// Read `blkcnt` 512-byte blocks starting at `blkid` into `buf`.
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), ReplayError>;
    /// Write whole 512-byte blocks from `data` starting at `blkid`.
    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), ReplayError>;
}

/// A bare replayer serves block IO through whichever block entry it has
/// loaded (`replay_mmc` or `replay_usb`) — the paper's exclusive-ownership
/// model.
impl SecureBlockIo for Replayer {
    fn read_blocks(&mut self, blkid: u32, blkcnt: u32, buf: &mut [u8]) -> Result<(), ReplayError> {
        let entry = self
            .entries()
            .into_iter()
            .find(|e| e == "replay_mmc" || e == "replay_usb")
            .ok_or_else(|| ReplayError::UnknownEntry("no block driverlet loaded".into()))?;
        if buf.len() < blkcnt as usize * MMC_BLOCK_SIZE {
            return Err(ReplayError::Invalid("buffer smaller than the requested blocks".into()));
        }
        self.invoke_args(&entry, &block_args(0x1, blkcnt, blkid, 0), buf).map(|_| ())
    }

    fn write_blocks(&mut self, blkid: u32, data: &[u8]) -> Result<(), ReplayError> {
        let entry = self
            .entries()
            .into_iter()
            .find(|e| e == "replay_mmc" || e == "replay_usb")
            .ok_or_else(|| ReplayError::UnknownEntry("no block driverlet loaded".into()))?;
        let blkcnt = (data.len() / MMC_BLOCK_SIZE) as u32;
        let mut scratch = data.to_vec();
        self.invoke_args(&entry, &block_args(0x10, blkcnt, blkid, 0), &mut scratch).map(|_| ())
    }
}

/// `replay_cam(frames, resolution, buf, buf_size, &size)` — capture `frames`
/// images at `resolution` (720, 1080 or 1440); the last frame lands in `buf`.
///
/// Returns the image size in bytes (the paper's `size` out-parameter).
///
/// # Example
///
/// Capture one 720p frame through the VCHIQ driverlet; the returned size is
/// the device-assigned image length the template captured at record time:
///
/// ```
/// use dlt_core::{replay_cam, Replayer};
/// use dlt_dev_vchiq::VchiqSubsystem;
/// use dlt_hw::Platform;
/// use dlt_recorder::campaign::{record_camera_driverlet_subset, DEV_KEY};
/// use dlt_tee::{SecureIo, TeeKernel};
///
/// let driverlet = record_camera_driverlet_subset(&[1]).expect("record campaign");
///
/// let platform = Platform::new();
/// VchiqSubsystem::attach(&platform).expect("attach VCHIQ");
/// TeeKernel::install(&platform, &["vchiq"]).expect("install TEE");
/// let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
/// replayer.load_driverlet(driverlet, DEV_KEY).expect("verify + load");
///
/// let mut buf = vec![0u8; 2 << 20];
/// let img = replay_cam(&mut replayer, 1, 720, &mut buf).expect("secure capture");
/// assert!(img > 0);
/// assert!(dlt_dev_vchiq::msg::is_valid_jpeg(&buf[..img as usize]));
/// ```
pub fn replay_cam(
    replayer: &mut Replayer,
    frames: u32,
    resolution: u32,
    buf: &mut [u8],
) -> Result<u32, ReplayError> {
    let args = [
        ("frames", u64::from(frames)),
        ("resolution", u64::from(resolution)),
        ("buf_size", buf.len() as u64),
    ];
    let outcome = replayer.invoke_args("replay_cam", &args, buf)?;
    // The image size is the device-assigned value the template captured; the
    // copy into the trustlet buffer is exactly that long.
    let img = outcome
        .captured
        .values()
        .copied()
        .filter(|v| *v > 0 && *v <= buf.len() as u64)
        .max()
        .unwrap_or(outcome.payload_bytes);
    Ok(img as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_tee::SecureIo;

    #[test]
    fn buffer_size_validation_happens_before_selection() {
        let platform = dlt_hw::Platform::new();
        let io = SecureIo::new(platform.bus.clone());
        let mut r = Replayer::new(io);
        let mut tiny = [0u8; 16];
        assert!(matches!(
            replay_mmc(&mut r, 0x1, 8, 0, 0, &mut tiny),
            Err(ReplayError::Invalid(_))
        ));
        assert!(matches!(
            replay_usb(&mut r, 0x1, 8, 0, 0, &mut tiny),
            Err(ReplayError::Invalid(_))
        ));
    }
}
