//! Constraint introspection and violating-value synthesis over compiled
//! replay programs.
//!
//! A compiled [`ReplayProgram`] *is* a constraint trace: every parameter
//! check, every constrained register read and every poll termination
//! condition is a postfix [`ConsOp`] subtree over the observed value and the
//! bound register file. This module walks that trace the way a concolic
//! executor walks a path condition (cf. Leaf-style concolic exploration):
//! [`ReplayProgram::constraint_sites`] enumerates every site with its
//! register/slot provenance, and [`ReplayProgram::solve_violation`]
//! synthesises, for any `ConsOp` in a site, a concrete observed value that
//! falsifies exactly that op's subtree — Eq/Ne/range/mask leaves are solved
//! directly, compound `All`/`AnyOf` trees via per-leaf flips.
//!
//! The solver is deliberately concrete, not symbolic: it runs against a
//! *live* register file (parameters bound, captures bound up to the site),
//! so `Eq(expr)` leaves are solved by evaluating `expr` exactly as the
//! replayer would and perturbing the result. That makes the synthesised
//! values valid at the precise execution point where the fault injector
//! (`dlt-core`'s `ResponseMutator`) applies them.

use crate::program::{CIface, ConsOp, EvalScratch, Op, OpRange, ReplayProgram, Slot};

/// Provenance of one constraint site inside a compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// A parameter-selection check: violating values are *invoke arguments*
    /// and surface as `OutOfCoverage` (no template matches).
    Param {
        /// Index into [`ReplayProgram::param_checks`].
        check: usize,
        /// Register-file slot of the checked parameter.
        slot: Slot,
    },
    /// The constraint on an [`Op::Read`]: violating values are *device
    /// responses* (register or DMA words) and surface as a divergence.
    Read {
        /// Index into [`ReplayProgram::ops`].
        op: usize,
        /// The read interface (register address or DMA allocation word).
        iface: CIface,
    },
    /// The termination condition of an [`Op::Poll`]: a persistently
    /// violating device response overruns `max_iters` and surfaces as a
    /// poll-timeout divergence.
    Poll {
        /// Index into [`ReplayProgram::ops`].
        op: usize,
        /// The polled interface.
        iface: CIface,
        /// Iteration bound before the replayer gives up.
        max_iters: u64,
    },
}

impl SiteKind {
    /// Short kind tag for ledgers and reports.
    pub fn tag(&self) -> &'static str {
        match self {
            SiteKind::Param { .. } => "param",
            SiteKind::Read { .. } => "read",
            SiteKind::Poll { .. } => "poll",
        }
    }
}

/// One enumerable constraint site: the root constraint range plus where it
/// sits in the program.
#[derive(Debug, Clone)]
pub struct ConstraintSite {
    /// Where the constraint is checked.
    pub kind: SiteKind,
    /// The site's root constraint (a subrange of
    /// [`ReplayProgram::cons_ops`]). Every `ConsOp` index in this range
    /// belongs to exactly this site — compiled sites never overlap.
    pub cons: OpRange,
    /// Human-readable rendering (the precompiled divergence string for
    /// read/poll sites, the parameter name for param checks).
    pub desc: String,
}

/// Outcome of solving one `ConsOp` for a violating observed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// `value` falsifies the target op's subtree *and* the site's root
    /// constraint: observing it must make the replayer reject the run.
    Violates {
        /// The violating observed value.
        value: u64,
    },
    /// `value` falsifies the target op's subtree but every such value keeps
    /// the site root satisfied (the leaf is shadowed, e.g. under an `AnyOf`
    /// whose sibling still holds): observing it must *not* diverge.
    Shadowed {
        /// A value falsifying only the subtree.
        value: u64,
    },
    /// No observed value can falsify the subtree (`Any`, a full-range
    /// `InRange`, a zero-mask `MaskClear`, ...).
    Unfalsifiable,
}

impl ReplayProgram {
    /// Enumerate every constraint site in the program, in program order:
    /// parameter checks first, then `Read`/`Poll` ops.
    pub fn constraint_sites(&self) -> Vec<ConstraintSite> {
        let mut sites = Vec::new();
        for (i, pc) in self.param_checks.iter().enumerate() {
            sites.push(ConstraintSite {
                kind: SiteKind::Param { check: i, slot: pc.slot },
                cons: pc.cons,
                desc: format!("param `{}`", self.param_names[pc.slot as usize]),
            });
        }
        for (i, op) in self.ops.iter().enumerate() {
            match *op {
                Op::Read { iface, cons, .. } => sites.push(ConstraintSite {
                    kind: SiteKind::Read { op: i, iface },
                    cons,
                    desc: self.meta[i].cons_desc.clone(),
                }),
                Op::Poll { iface, cons, max_iters, .. } => sites.push(ConstraintSite {
                    kind: SiteKind::Poll { op: i, iface, max_iters },
                    cons,
                    desc: self.meta[i].cons_desc.clone(),
                }),
                _ => {}
            }
        }
        sites
    }

    /// The subtree rooted at `cons_ops[index]`, found by a reverse arity
    /// walk over the postfix pool (compound ops consume their children,
    /// leaves consume nothing).
    pub fn cons_subtree(&self, index: usize) -> OpRange {
        let mut need = 1usize;
        let mut j = index + 1;
        while need > 0 && j > 0 {
            j -= 1;
            need -= 1;
            need += match self.cons_ops[j] {
                ConsOp::All(n) | ConsOp::AnyOf(n) => n as usize,
                _ => 0,
            };
        }
        OpRange { start: j as u32, len: (index + 1 - j) as u32 }
    }

    /// Synthesise an observed value that falsifies the subtree rooted at
    /// `cons_ops[index]` (which must lie inside `site`, the site's root
    /// range), preferring values that also falsify the site root.
    ///
    /// Candidates are gathered from every leaf in the *site* — a leaf under
    /// a disjunction often needs a sibling's violating value to flip the
    /// root too — then filtered concretely through [`Self::check_cons`]
    /// against the live register file, so the answer is exact for the
    /// execution point `regs`/`bound` describe.
    pub fn solve_violation(
        &self,
        site: OpRange,
        index: usize,
        regs: &[u64],
        bound: &[bool],
        scratch: &mut EvalScratch,
    ) -> Violation {
        let sub = self.cons_subtree(index);
        let mut candidates = Vec::new();
        for j in site.bounds() {
            self.leaf_candidates(j, regs, bound, scratch, &mut candidates);
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut shadowed = None;
        for v in candidates {
            if !self.check_cons(sub, v, regs, bound, scratch) {
                if !self.check_cons(site, v, regs, bound, scratch) {
                    return Violation::Violates { value: v };
                }
                shadowed.get_or_insert(v);
            }
        }
        match shadowed {
            Some(value) => Violation::Shadowed { value },
            None => Violation::Unfalsifiable,
        }
    }

    /// Push concrete candidate values that could falsify the single leaf op
    /// at `cons_ops[index]`. Compound ops contribute nothing themselves —
    /// their flips come from their descendants' candidates.
    fn leaf_candidates(
        &self,
        index: usize,
        regs: &[u64],
        bound: &[bool],
        scratch: &mut EvalScratch,
        out: &mut Vec<u64>,
    ) {
        match self.cons_ops[index] {
            ConsOp::True | ConsOp::All(_) | ConsOp::AnyOf(_) => {}
            ConsOp::Eq(e) => match self.eval_expr(e, regs, bound, scratch) {
                // Perturb the expected value three ways: bit flips survive
                // sibling mask constraints better than plain increments.
                Some(v) => out.extend([!v, v ^ 1, v.wrapping_add(1)]),
                // An unbound expression makes Eq false for *every* value.
                None => out.extend([0, !0u64]),
            },
            ConsOp::Ne(e) => {
                if let Some(v) = self.eval_expr(e, regs, bound, scratch) {
                    out.push(v);
                } else {
                    // Unbound Ne is already false for every observation.
                    out.push(0);
                }
            }
            ConsOp::InRange { min, max } => {
                if min > 0 {
                    out.push(min - 1);
                }
                if max < u64::MAX {
                    out.push(max + 1);
                }
            }
            ConsOp::OneOf(p) => {
                let pool = &self.pool[p.bounds()];
                // Among 0..=len at least one value is absent from the pool.
                if let Some(v) = (0..=pool.len() as u64).find(|v| !pool.contains(v)) {
                    out.push(v);
                }
                if !pool.contains(&u64::MAX) {
                    out.push(u64::MAX);
                }
            }
            ConsOp::MaskEq { mask, expected } => {
                if mask == 0 {
                    if expected != 0 {
                        // `v & 0 == expected` is false for every value.
                        out.push(0);
                    }
                } else {
                    // Flip every tested bit: (expected ^ mask) & mask is
                    // guaranteed to differ from expected & mask.
                    out.push(expected ^ mask);
                    out.push(!expected);
                }
            }
            ConsOp::MaskClear { mask } => {
                if mask != 0 {
                    out.push(mask);
                    out.push(!0u64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Constraint;
    use crate::event::{DataDirection, Event, Iface, ReadSink, RecordedEvent};
    use crate::expr::SymExpr;
    use crate::program::compile;
    use crate::template::{ParamSpec, Template, TemplateMeta};

    fn reg(name: &str, addr: u64) -> Iface {
        Iface::Reg { addr, name: name.to_string() }
    }

    /// A template covering every constraint shape the solver handles.
    fn probe_template() -> Template {
        Template {
            name: "probe".into(),
            entry: "replay_probe".into(),
            device: "dev".into(),
            params: vec![
                ParamSpec { name: "rw".into(), constraint: Constraint::eq_const(1) },
                ParamSpec {
                    name: "blkcnt".into(),
                    constraint: Constraint::InRange { min: 1, max: 8 },
                },
                ParamSpec {
                    name: "res".into(),
                    constraint: Constraint::OneOf(vec![720, 1080, 1440]),
                },
                ParamSpec { name: "flag".into(), constraint: Constraint::Any },
            ],
            direction: DataDirection::None,
            data_len: SymExpr::Const(0),
            irq_line: None,
            events: vec![
                RecordedEvent::bare(Event::Read {
                    iface: reg("STS", 0x100),
                    constraint: Constraint::All(vec![
                        Constraint::MaskClear { mask: 0x1 },
                        Constraint::InRange { min: 0, max: 0xffff },
                    ]),
                    len: 4,
                    sink: ReadSink::Discard,
                }),
                RecordedEvent::bare(Event::Read {
                    iface: reg("MODE", 0x104),
                    constraint: Constraint::AnyOf(vec![
                        Constraint::eq_const(3),
                        Constraint::MaskClear { mask: 0x1 },
                    ]),
                    len: 4,
                    sink: ReadSink::Discard,
                }),
                RecordedEvent::bare(Event::Poll {
                    iface: reg("BUSY", 0x108),
                    body: vec![],
                    cond: Constraint::MaskClear { mask: 0x8000 },
                    delay_us: 5,
                    max_iters: 50,
                }),
                RecordedEvent::bare(Event::Read {
                    iface: reg("ECHO", 0x10c),
                    constraint: Constraint::Eq(SymExpr::Param("blkcnt".into()).shl(9)),
                    len: 4,
                    sink: ReadSink::Discard,
                }),
            ],
            meta: TemplateMeta::default(),
        }
    }

    fn bound_file(prog: &ReplayProgram) -> (Vec<u64>, Vec<bool>) {
        let mut regs = vec![0u64; prog.num_slots()];
        let mut bound = vec![false; prog.num_slots()];
        let args: std::collections::HashMap<String, u64> = [
            ("rw".to_string(), 1u64),
            ("blkcnt".to_string(), 4),
            ("res".to_string(), 1080),
            ("flag".to_string(), 0),
        ]
        .into_iter()
        .collect();
        prog.bind_args(&args, &mut regs, &mut bound);
        (regs, bound)
    }

    #[test]
    fn sites_cover_params_reads_and_polls() {
        let prog = compile(&probe_template()).unwrap();
        let sites = prog.constraint_sites();
        assert_eq!(sites.len(), 4 + 4, "4 param checks + 3 reads + 1 poll");
        assert_eq!(sites.iter().filter(|s| s.kind.tag() == "param").count(), 4);
        assert_eq!(sites.iter().filter(|s| s.kind.tag() == "read").count(), 3);
        assert_eq!(sites.iter().filter(|s| s.kind.tag() == "poll").count(), 1);
        // Sites never overlap: every cons op belongs to at most one site.
        let mut seen = vec![false; prog.cons_ops.len()];
        for s in &sites {
            for i in s.cons.bounds() {
                assert!(!seen[i], "cons op {i} claimed by two sites");
                seen[i] = true;
            }
        }
    }

    #[test]
    fn subtree_walk_matches_postfix_structure() {
        let prog = compile(&probe_template()).unwrap();
        let sites = prog.constraint_sites();
        // The STS read site is All([MaskClear, InRange]): 3 ops, root last.
        let sts = sites.iter().find(|s| s.desc.contains("0xffff")).unwrap();
        assert_eq!(sts.cons.len, 3);
        let root = (sts.cons.start + sts.cons.len - 1) as usize;
        assert_eq!(prog.cons_subtree(root), sts.cons);
        // Each leaf is its own single-op subtree.
        for leaf in sts.cons.start as usize..root {
            assert_eq!(prog.cons_subtree(leaf).len, 1);
        }
    }

    #[test]
    fn every_falsifiable_op_gets_a_violating_value() {
        let prog = compile(&probe_template()).unwrap();
        let (regs, bound) = bound_file(&prog);
        let mut scratch = EvalScratch::default();
        for site in prog.constraint_sites() {
            for i in site.cons.bounds() {
                let sol = prog.solve_violation(site.cons, i, &regs, &bound, &mut scratch);
                match sol {
                    Violation::Violates { value } => {
                        let sub = prog.cons_subtree(i);
                        assert!(!prog.check_cons(sub, value, &regs, &bound, &mut scratch));
                        assert!(!prog.check_cons(site.cons, value, &regs, &bound, &mut scratch));
                    }
                    Violation::Shadowed { value } => {
                        let sub = prog.cons_subtree(i);
                        assert!(!prog.check_cons(sub, value, &regs, &bound, &mut scratch));
                        assert!(prog.check_cons(site.cons, value, &regs, &bound, &mut scratch));
                    }
                    Violation::Unfalsifiable => {
                        assert!(
                            matches!(prog.cons_ops[i], ConsOp::True),
                            "only `Any` is unfalsifiable in this template (op {i}: {:?})",
                            prog.cons_ops[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn symbolic_eq_solves_against_the_live_register_file() {
        // The ECHO read expects blkcnt << 9 = 2048 with blkcnt = 4; the
        // solver must perturb that concrete value, not a stale constant.
        let prog = compile(&probe_template()).unwrap();
        let (regs, bound) = bound_file(&prog);
        let mut scratch = EvalScratch::default();
        let sites = prog.constraint_sites();
        let echo = sites
            .iter()
            .find(|s| matches!(s.kind, SiteKind::Read { .. }) && s.desc.contains("blkcnt"))
            .unwrap();
        let root = (echo.cons.start + echo.cons.len - 1) as usize;
        match prog.solve_violation(echo.cons, root, &regs, &bound, &mut scratch) {
            Violation::Violates { value } => assert_ne!(value, 4 << 9),
            other => panic!("expected a violating value, got {other:?}"),
        }
        // The satisfying value passes, proving the solve was tight.
        assert!(prog.check_cons(echo.cons, 4 << 9, &regs, &bound, &mut scratch));
    }

    #[test]
    fn anyof_leaves_borrow_sibling_candidates_to_flip_the_root() {
        // AnyOf([Eq(3), MaskClear(1)]): flipping Eq(3) alone would leave the
        // even candidates satisfying the sibling; the solver must find an
        // odd value != 3 by combining both leaves' candidate sets.
        let prog = compile(&probe_template()).unwrap();
        let (regs, bound) = bound_file(&prog);
        let mut scratch = EvalScratch::default();
        let sites = prog.constraint_sites();
        let mode = sites
            .iter()
            .find(|s| matches!(s.kind, SiteKind::Read { .. }) && s.desc.contains("any of"))
            .unwrap_or_else(|| {
                sites
                    .iter()
                    .filter(|s| matches!(s.kind, SiteKind::Read { .. }))
                    .nth(1)
                    .expect("MODE read site")
            });
        for i in mode.cons.bounds() {
            let sol = prog.solve_violation(mode.cons, i, &regs, &bound, &mut scratch);
            if let Violation::Violates { value } = sol {
                assert!(
                    !prog.check_cons(mode.cons, value, &regs, &bound, &mut scratch),
                    "op {i}: {value:#x} must falsify the whole AnyOf"
                );
            }
        }
        // The root itself must be falsifiable (value 1: odd and != 3... 1 is
        // odd so MaskClear(1) fails, and 1 != 3 so Eq fails).
        let root = (mode.cons.start + mode.cons.len - 1) as usize;
        assert!(matches!(
            prog.solve_violation(mode.cons, root, &regs, &bound, &mut scratch),
            Violation::Violates { .. }
        ));
    }

    #[test]
    fn unfalsifiable_shapes_are_recognised() {
        let mut t = probe_template();
        t.events.push(RecordedEvent::bare(Event::Read {
            iface: reg("WIDE", 0x110),
            constraint: Constraint::All(vec![
                Constraint::InRange { min: 0, max: u64::MAX },
                Constraint::MaskClear { mask: 0 },
                Constraint::MaskEq { mask: 0, expected: 0 },
            ]),
            len: 4,
            sink: ReadSink::Discard,
        }));
        let prog = compile(&t).unwrap();
        let (regs, bound) = bound_file(&prog);
        let mut scratch = EvalScratch::default();
        let sites = prog.constraint_sites();
        let wide = sites.iter().find(|s| matches!(s.kind, SiteKind::Read { op, .. } if op == 4));
        let wide = wide.expect("WIDE read site");
        for i in wide.cons.bounds() {
            assert_eq!(
                prog.solve_violation(wide.cons, i, &regs, &bound, &mut scratch),
                Violation::Unfalsifiable,
                "op {i} admits every observation"
            );
        }
    }
}
