//! Criterion bench for the Figure 6 capture paths.

use criterion::{criterion_group, criterion_main, Criterion};
use dlt_dev_vchiq::msg::CameraResolution;
use dlt_workloads::camera::{native_capture, DriverletCamera};

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_camera_oneshot_720p");
    group.sample_size(10);
    group.bench_function("native", |b| {
        b.iter(|| native_capture(1, CameraResolution::R720p).latency_ns)
    });
    // Record once; measure repeated replay invocations.
    let mut rig = DriverletCamera::new(&[1]);
    group.bench_function("driverlet", |b| {
        b.iter(|| rig.capture(1, CameraResolution::R720p).latency_ns)
    });
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
