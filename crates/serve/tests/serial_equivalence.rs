//! Scheduler equivalence property: any interleaving of concurrent
//! sessions — any policy, coalescing on, **per-lane clocks and
//! anticipatory hold enabled** — produces the same device state and the
//! same read payloads as *some* serial order of the submitted requests,
//! and that serial order respects every session's submission order. The
//! witness order is the service's own dispatch log, and the serial
//! reference executes it on a fresh rig running the tree-walking
//! interpreter ([`ReplayMode::Interpreted`]) — so the property is also a
//! differential test across the two replay engines.
//!
//! Each generated program runs twice: once with the anticipatory-hold
//! default budget and once with holding disabled, because the plug changes
//! *when* batches dispatch (and therefore how requests merge) but must
//! never change any payload or violate per-session ordering.
//!
//! The `*_ring_batches_*` properties run the same generated programs down
//! the shared-memory ring path ([`SubmitMode::Ring`]) with random doorbell
//! batch sizes, interleaved with per-call submits from a legacy session —
//! proving the batched submission spine behaviour-identical to the
//! one-SMC-per-operation baseline.

use std::collections::HashMap;
use std::sync::OnceLock;

use dlt_core::{replay_cam, FaultPlan, ReplayConfig, ReplayError, Replayer};
use dlt_dev_mmc::MmcSubsystem;
use dlt_dev_usb::UsbSubsystem;
use dlt_dev_vchiq::VchiqSubsystem;
use dlt_hw::Platform;
use dlt_recorder::campaign::{
    record_camera_driverlet_subset, record_mmc_driverlet_subset, record_usb_driverlet_subset,
    DEV_KEY,
};
use dlt_serve::{
    Completion, Device, DriverletService, ExecMode, FailoverConfig, LaneId, LaneState, Payload,
    Policy, QosConfig, Request, RequestId, RouteConfig, RoutePolicy, ServeConfig, ServeError,
    SessionQos, SubmitMode, SuperviseConfig,
};
use dlt_tee::{SecureIo, TeeKernel};
use dlt_template::Driverlet;
use proptest::prelude::*;

const BLOCK: usize = 512;
/// Recorded granularities for the property rigs (kept small for speed).
const GRANULARITIES: [u32; 2] = [1, 8];

fn mmc_bundle() -> &'static Driverlet {
    static BUNDLE: OnceLock<Driverlet> = OnceLock::new();
    BUNDLE.get_or_init(|| record_mmc_driverlet_subset(&GRANULARITIES).expect("record mmc"))
}

fn usb_bundle() -> &'static Driverlet {
    static BUNDLE: OnceLock<Driverlet> = OnceLock::new();
    BUNDLE.get_or_init(|| record_usb_driverlet_subset(&GRANULARITIES).expect("record usb"))
}

fn cam_bundle() -> &'static Driverlet {
    static BUNDLE: OnceLock<Driverlet> = OnceLock::new();
    BUNDLE.get_or_init(|| record_camera_driverlet_subset(&[1]).expect("record camera"))
}

fn bundle_for(device: Device) -> &'static Driverlet {
    match device {
        Device::Mmc => mmc_bundle(),
        Device::Usb => usb_bundle(),
        Device::Vchiq => cam_bundle(),
    }
}

/// A serial reference rig: one interpreted replayer over a fresh platform.
fn serial_rig(device: Device) -> Replayer {
    let platform = Platform::new();
    let secure: &[&str] = match device {
        Device::Mmc => {
            MmcSubsystem::attach(&platform).expect("attach mmc");
            &["sdhost", "dma"]
        }
        Device::Usb => {
            UsbSubsystem::attach(&platform).expect("attach usb");
            &["dwc2"]
        }
        Device::Vchiq => {
            VchiqSubsystem::attach(&platform).expect("attach vchiq");
            &["vchiq"]
        }
    };
    TeeKernel::install(&platform, secure).expect("install tee");
    let mut replayer =
        Replayer::with_config(SecureIo::new(platform.bus.clone()), ReplayConfig::interpreted());
    replayer.load_driverlet(bundle_for(device).clone(), DEV_KEY).expect("load driverlet");
    replayer
}

fn entry_for(device: Device) -> &'static str {
    match device {
        Device::Mmc => "replay_mmc",
        Device::Usb => "replay_usb",
        Device::Vchiq => "replay_cam",
    }
}

/// Execute one block request serially on the reference rig, returning read
/// payloads.
fn serial_execute(replayer: &mut Replayer, device: Device, req: &Request) -> Option<Vec<u8>> {
    let entry = entry_for(device);
    match req {
        Request::Read { blkid, blkcnt, .. } => {
            let mut buf = vec![0u8; *blkcnt as usize * BLOCK];
            let mut done = 0u32;
            for part in decompose(*blkcnt) {
                let args = [
                    ("rw", 0x1u64),
                    ("blkcnt", u64::from(part)),
                    ("blkid", u64::from(blkid + done)),
                    ("flag", 0),
                ];
                let start = done as usize * BLOCK;
                let end = (done + part) as usize * BLOCK;
                replayer.invoke_args(entry, &args, &mut buf[start..end]).expect("serial read");
                done += part;
            }
            Some(buf)
        }
        Request::Write { blkid, data, .. } => {
            let mut scratch = data.clone();
            let blkcnt = (data.len() / BLOCK) as u32;
            let mut done = 0u32;
            for part in decompose(blkcnt) {
                let args = [
                    ("rw", 0x10u64),
                    ("blkcnt", u64::from(part)),
                    ("blkid", u64::from(blkid + done)),
                    ("flag", 0),
                ];
                let start = done as usize * BLOCK;
                let end = (done + part) as usize * BLOCK;
                replayer.invoke_args(entry, &args, &mut scratch[start..end]).expect("serial write");
                done += part;
            }
            None
        }
        Request::Capture { frames, resolution } => {
            let mut buf = vec![0u8; 2 << 20];
            let size =
                replay_cam(replayer, *frames, *resolution, &mut buf).expect("serial capture");
            buf.truncate(size as usize);
            Some(buf)
        }
    }
}

fn decompose(mut blkcnt: u32) -> Vec<u32> {
    let mut parts = Vec::new();
    while blkcnt > 0 {
        let g = if blkcnt >= 8 { 8 } else { 1 };
        parts.push(g);
        blkcnt -= g;
    }
    parts
}

/// Pattern data unique per (request, block) so stale writes are detectable.
fn pattern(tag: u64, blocks: u32) -> Vec<u8> {
    let mut data = vec![0u8; blocks as usize * BLOCK];
    for (i, b) in data.iter_mut().enumerate() {
        *b = ((tag as usize).wrapping_mul(131) ^ i.wrapping_mul(7)) as u8;
    }
    data
}

/// Drive the service with generated per-session traffic and check the
/// serial-equivalence property for one block device, at one
/// anticipatory-hold budget.
fn check_block_device_with_hold(
    device: Device,
    policy: Policy,
    choices: &[u8],
    hold_budget_ns: u64,
) {
    let config = ServeConfig {
        policy,
        coalesce: true,
        hold_budget_ns,
        block_granularities: GRANULARITIES.to_vec(),
        ..ServeConfig::default()
    };
    let mut service =
        DriverletService::with_driverlets(&[(device, bundle_for(device).clone())], config)
            .expect("build service");
    let sessions: Vec<u32> = (0..3).map(|_| service.open_session().unwrap()).collect();

    // Interpret the generated bytes as an interleaved request program over
    // a small hot range of the disk, so reads, writes, overlaps and
    // adjacency all occur. Every fourth request is preceded by client
    // think time so arrivals land both inside and outside hold windows.
    let mut requests: HashMap<RequestId, Request> = HashMap::new();
    let mut session_of: HashMap<RequestId, u32> = HashMap::new();
    for (i, &choice) in choices.iter().enumerate() {
        let session = sessions[i % sessions.len()];
        if i % 4 == 3 {
            service.client_think_ns(u64::from(choice) * 2_000);
        }
        let blkid = 64 + u32::from(choice % 48);
        let blkcnt = 1 + u32::from(choice % 8);
        let req = if choice % 3 == 0 {
            Request::Write { device, blkid, data: pattern(i as u64, blkcnt) }
        } else {
            Request::Read { device, blkid, blkcnt }
        };
        let id = service.submit(session, req.clone()).expect("submit");
        requests.insert(id, req);
        session_of.insert(id, session);
    }

    let completions = service.drain_all();
    let witness = service.take_exec_log();
    assert_eq!(completions.len(), choices.len());
    assert_eq!(witness.len(), choices.len());

    // Per-session ordering: within a session, the witness serial order may
    // reorder *reads among reads* (they commute inside a merged span), but
    // any pair involving a write must dispatch in submission order — ids
    // are handed out in submission order, so an inversion involving a
    // write would let a session observe its own operations out of order.
    let mut per_session: HashMap<u32, Vec<RequestId>> = HashMap::new();
    for id in &witness {
        per_session.entry(session_of[id]).or_default().push(*id);
    }
    for (session, order) in &per_session {
        for (i, &a) in order.iter().enumerate() {
            for &b in &order[i + 1..] {
                if a > b {
                    let both_reads = matches!(requests[&a], Request::Read { .. })
                        && matches!(requests[&b], Request::Read { .. });
                    assert!(
                        both_reads,
                        "session {session}: request {a} dispatched before earlier request {b} \
                         and at least one is a write (per-lane clocks or hold broke per-session \
                         ordering)"
                    );
                }
            }
        }
    }

    // Completions must carry a coherent lane timeline: never completed
    // before submitted.
    for c in &completions {
        assert!(
            c.completed_ns >= c.submitted_ns,
            "request {} completed at {} before its arrival {}",
            c.id,
            c.completed_ns,
            c.submitted_ns
        );
    }

    // Serial reference: execute the witness order on the interpreted rig.
    let mut rig = serial_rig(device);
    let mut serial_reads: HashMap<RequestId, Vec<u8>> = HashMap::new();
    for id in &witness {
        let req = &requests[id];
        if let Some(bytes) = serial_execute(&mut rig, device, req) {
            serial_reads.insert(*id, bytes);
        }
    }

    // Every read the service answered must be byte-identical to the serial
    // execution — merged spans included.
    for c in &completions {
        if let Ok(Payload::Read(bytes)) = &c.result {
            prop_assert_eq_bytes(&serial_reads[&c.id], bytes, c.id);
        } else {
            c.result.as_ref().expect("writes succeed");
        }
    }

    // Final device state: both rigs read back the whole hot range.
    let readback = Request::Read { device, blkid: 64, blkcnt: 56 };
    let session = sessions[0];
    let id = service.submit(session, readback.clone()).expect("submit readback");
    let final_completion =
        service.drain_all().into_iter().find(|c| c.id == id).expect("readback completion");
    let Ok(Payload::Read(service_state)) = final_completion.result else {
        panic!("readback failed");
    };
    let serial_state = serial_execute(&mut rig, device, &readback).expect("serial readback");
    prop_assert_eq_bytes(&serial_state, &service_state, id);
}

/// The property at both hold settings: anticipatory hold changes batch
/// boundaries, never payloads or ordering.
fn check_block_device(device: Device, policy: Policy, choices: &[u8]) {
    check_block_device_with_hold(device, policy, choices, ServeConfig::default().hold_budget_ns);
    check_block_device_with_hold(device, policy, choices, 0);
}

/// The ring-batched flavour of the property: the same generated program
/// driven through [`SubmitMode::Ring`], with doorbell batch sizes drawn
/// from the generated bytes and one session submitting through the legacy
/// per-call SMC path *interleaved* with the ring sessions (the syscall
/// beside io_uring). Ring batching changes **when** requests become
/// visible to the TEE — whole doorbell batches share one admission stamp —
/// but must never change any payload, violate per-session ordering, or
/// complete a request before it was submitted.
fn check_ring_batches(device: Device, policy: Policy, choices: &[u8]) {
    let config = ServeConfig {
        policy,
        coalesce: true,
        submit_mode: SubmitMode::Ring,
        block_granularities: GRANULARITIES.to_vec(),
        ..ServeConfig::default()
    };
    let mut service =
        DriverletService::with_driverlets(&[(device, bundle_for(device).clone())], config)
            .expect("build service");
    let sessions: Vec<u32> = (0..3).map(|_| service.open_session().unwrap()).collect();
    // Sessions 0 and 1 stage into the submission ring; session 2 pays one
    // SMC per call. Each path preserves its sessions' submission order on
    // its own (ring entries are admitted in enqueue order, per-call
    // submits are admitted immediately), so the per-session ordering
    // assertion below must survive any interleaving of the two.
    let legacy_session = sessions[2];

    let mut requests: HashMap<RequestId, Request> = HashMap::new();
    let mut session_of: HashMap<RequestId, u32> = HashMap::new();
    let mut staged_since_doorbell = 0usize;
    for (i, &choice) in choices.iter().enumerate() {
        let session = sessions[i % sessions.len()];
        if i % 4 == 3 {
            service.client_think_ns(u64::from(choice) * 2_000);
        }
        let blkid = 64 + u32::from(choice % 48);
        let blkcnt = 1 + u32::from(choice % 8);
        let req = if choice % 3 == 0 {
            Request::Write { device, blkid, data: pattern(i as u64, blkcnt) }
        } else {
            Request::Read { device, blkid, blkcnt }
        };
        let id = if session == legacy_session {
            service.submit_per_call(session, req.clone()).expect("legacy submit")
        } else {
            let id = service.submit(session, req.clone()).expect("ring enqueue");
            staged_since_doorbell += 1;
            // Random doorbell batch sizes: ring after 1..=5 staged entries.
            if staged_since_doorbell > usize::from(choice % 5) {
                service.ring_doorbell().expect("doorbell");
                staged_since_doorbell = 0;
            }
            id
        };
        requests.insert(id, req);
        session_of.insert(id, session);
    }

    // drain_all flushes the final (partial) doorbell batch itself.
    let completions = service.drain_all();
    let witness = service.take_exec_log();
    assert_eq!(completions.len(), choices.len());
    assert_eq!(witness.len(), choices.len());
    assert!(
        service.stats().completed >= service.stats().submitted,
        "every admitted request must complete ({} completed < {} submitted)",
        service.stats().completed,
        service.stats().submitted
    );

    // Per-session ordering: same invariant as the per-call property —
    // reads may commute within a session, anything involving a write must
    // dispatch in submission (id) order.
    let mut per_session: HashMap<u32, Vec<RequestId>> = HashMap::new();
    for id in &witness {
        per_session.entry(session_of[id]).or_default().push(*id);
    }
    for (session, order) in &per_session {
        for (i, &a) in order.iter().enumerate() {
            for &b in &order[i + 1..] {
                if a > b {
                    let both_reads = matches!(requests[&a], Request::Read { .. })
                        && matches!(requests[&b], Request::Read { .. });
                    assert!(
                        both_reads,
                        "session {session}: request {a} dispatched before earlier request {b} \
                         and at least one is a write (doorbell batching broke per-session \
                         ordering)"
                    );
                }
            }
        }
    }
    for c in &completions {
        assert!(
            c.completed_ns >= c.submitted_ns,
            "request {} completed at {} before its submission {}",
            c.id,
            c.completed_ns,
            c.submitted_ns
        );
    }

    // Byte identity against the interpreted serial reference, exactly as
    // on the per-call path.
    let mut rig = serial_rig(device);
    let mut serial_reads: HashMap<RequestId, Vec<u8>> = HashMap::new();
    for id in &witness {
        if let Some(bytes) = serial_execute(&mut rig, device, &requests[id]) {
            serial_reads.insert(*id, bytes);
        }
    }
    for c in &completions {
        if let Ok(Payload::Read(bytes)) = &c.result {
            prop_assert_eq_bytes(&serial_reads[&c.id], bytes, c.id);
        } else {
            c.result.as_ref().expect("writes succeed");
        }
    }

    // Final device state matches the serial reference too.
    let readback = Request::Read { device, blkid: 64, blkcnt: 56 };
    let id = service.submit(sessions[0], readback.clone()).expect("submit readback");
    let final_completion =
        service.drain_all().into_iter().find(|c| c.id == id).expect("readback completion");
    let Ok(Payload::Read(service_state)) = final_completion.result else {
        panic!("readback failed");
    };
    let serial_state = serial_execute(&mut rig, device, &readback).expect("serial readback");
    prop_assert_eq_bytes(&serial_state, &service_state, id);
}

/// The divergence-robustness flavour of the property: a **sticky
/// read-template fault** ([`FaultPlan`] over `"_rd_"`) engages after a
/// proptest-chosen number of read replays. From then on every read request
/// must surface as a typed [`ReplayError::Diverged`] completion — never a
/// panic, a hang, or a lost completion — while writes keep succeeding.
/// `completed + diverged == submitted` holds exactly, per-session ordering
/// survives, and after clearing the fault the lane passes its health check
/// and the written device state reads back byte-identical to the
/// interpreted serial reference.
fn check_block_device_with_divergences(
    device: Device,
    policy: Policy,
    choices: &[u8],
    skip: u64,
    submit_mode: SubmitMode,
) {
    let config = ServeConfig {
        policy,
        coalesce: true,
        submit_mode,
        block_granularities: GRANULARITIES.to_vec(),
        ..ServeConfig::default()
    };
    let mut service =
        DriverletService::with_driverlets(&[(device, bundle_for(device).clone())], config)
            .expect("build service");
    let sessions: Vec<u32> = (0..3).map(|_| service.open_session().unwrap()).collect();
    let outcome = service
        .inject_fault(
            device,
            FaultPlan {
                template: Some("_rd_".into()),
                skip_invocations: skip,
                sticky: true,
                ..FaultPlan::default()
            },
        )
        .expect("inject fault");

    let mut requests: HashMap<RequestId, Request> = HashMap::new();
    let mut session_of: HashMap<RequestId, u32> = HashMap::new();
    for (i, &choice) in choices.iter().enumerate() {
        let session = sessions[i % sessions.len()];
        if i % 4 == 3 {
            service.client_think_ns(u64::from(choice) * 2_000);
        }
        let blkid = 64 + u32::from(choice % 48);
        let blkcnt = 1 + u32::from(choice % 8);
        let req = if choice % 3 == 0 {
            Request::Write { device, blkid, data: pattern(i as u64, blkcnt) }
        } else {
            Request::Read { device, blkid, blkcnt }
        };
        let id = service.submit(session, req.clone()).expect("submit");
        requests.insert(id, req);
        session_of.insert(id, session);
    }

    let completions = service.drain_all();
    let witness = service.take_exec_log();
    assert_eq!(
        completions.len(),
        choices.len(),
        "every submitted request must surface exactly once, diverged or not"
    );

    let mut ok = 0usize;
    let mut diverged = 0usize;
    for c in &completions {
        match &c.result {
            Ok(_) => ok += 1,
            Err(ServeError::Replay(ReplayError::Diverged(_))) => {
                diverged += 1;
                assert!(
                    matches!(requests[&c.id], Request::Read { .. }),
                    "request {}: only reads can diverge under a read-template fault",
                    c.id
                );
            }
            other => panic!("request {} must complete or diverge typed, got {other:?}", c.id),
        }
        assert!(
            c.completed_ns >= c.submitted_ns,
            "request {} completed at {} before its submission {}",
            c.id,
            c.completed_ns,
            c.submitted_ns
        );
    }
    assert_eq!(ok + diverged, choices.len(), "completed + diverged == submitted");
    if diverged > 0 {
        assert!(
            outcome.lock().unwrap().engaged_invocations > 0,
            "divergences can only come from the injected fault"
        );
    }

    // Per-session ordering survives the fault: reads commute among reads,
    // any pair involving a write dispatches in submission order.
    let mut per_session: HashMap<u32, Vec<RequestId>> = HashMap::new();
    for id in &witness {
        per_session.entry(session_of[id]).or_default().push(*id);
    }
    for (session, order) in &per_session {
        for (i, &a) in order.iter().enumerate() {
            for &b in &order[i + 1..] {
                if a > b {
                    let both_reads = matches!(requests[&a], Request::Read { .. })
                        && matches!(requests[&b], Request::Read { .. });
                    assert!(
                        both_reads,
                        "session {session}: request {a} dispatched before earlier request {b} \
                         and at least one is a write (fault injection broke per-session ordering)"
                    );
                }
            }
        }
    }

    // Surviving reads keep byte identity with the interpreted serial
    // reference (diverged reads left no trace on device state, so the
    // reference executes the full witness order).
    let mut rig = serial_rig(device);
    let mut serial_reads: HashMap<RequestId, Vec<u8>> = HashMap::new();
    for id in &witness {
        if let Some(bytes) = serial_execute(&mut rig, device, &requests[id]) {
            serial_reads.insert(*id, bytes);
        }
    }
    for c in &completions {
        if let Ok(Payload::Read(bytes)) = &c.result {
            prop_assert_eq_bytes(&serial_reads[&c.id], bytes, c.id);
        }
    }

    // The lane recovers: fault cleared, health probe passes, and the whole
    // hot range — every surviving write included — reads back identical to
    // the serial reference.
    service.clear_fault(device).expect("clear fault");
    service.lane_health_check(device).expect("post-divergence lane health");
    let readback = Request::Read { device, blkid: 64, blkcnt: 56 };
    let id = service.submit(sessions[0], readback.clone()).expect("submit readback");
    let final_completion =
        service.drain_all().into_iter().find(|c| c.id == id).expect("readback completion");
    let Ok(Payload::Read(service_state)) = final_completion.result else {
        panic!("readback failed");
    };
    let serial_state = serial_execute(&mut rig, device, &readback).expect("serial readback");
    prop_assert_eq_bytes(&serial_state, &service_state, id);
}

/// The **parallel-lanes** flavour of the property: the same kind of random
/// traffic driven through [`ExecMode::Threaded`] — MMC and USB lanes each on
/// a real OS thread, executing concurrently with the submitting thread.
/// Sessions are pinned to one device each, so per-session ordering and byte
/// identity stay decidable: within a lane the scheduler is unchanged, and
/// the witness log filtered per device is that lane's execution order.
/// Threading may change batching (a lane may dispatch the moment work is
/// admitted) but must never change payloads, violate per-session ordering,
/// lose a completion, or complete before submission. With a fault injected
/// (`with_fault`), `completed + diverged == submitted` must hold exactly.
fn check_parallel_lanes(policy: Policy, choices: &[u8], fault_skip: Option<u64>) {
    let config = ServeConfig {
        policy,
        coalesce: true,
        exec_mode: ExecMode::Threaded,
        block_granularities: GRANULARITIES.to_vec(),
        ..ServeConfig::default()
    };
    let mut service = DriverletService::with_driverlets(
        &[(Device::Mmc, mmc_bundle().clone()), (Device::Usb, usb_bundle().clone())],
        config,
    )
    .expect("build service");
    // Two sessions per device, pinned: a session only ever talks to one
    // lane, so its ordering invariant is confined to that lane's timeline.
    let sessions: Vec<(u32, Device)> = vec![
        (service.open_session().unwrap(), Device::Mmc),
        (service.open_session().unwrap(), Device::Usb),
        (service.open_session().unwrap(), Device::Mmc),
        (service.open_session().unwrap(), Device::Usb),
    ];
    let outcome = fault_skip.map(|skip| {
        service
            .inject_fault(
                Device::Mmc,
                FaultPlan {
                    template: Some("_rd_".into()),
                    skip_invocations: skip,
                    sticky: true,
                    ..FaultPlan::default()
                },
            )
            .expect("inject fault")
    });

    let mut requests: HashMap<RequestId, Request> = HashMap::new();
    let mut session_of: HashMap<RequestId, u32> = HashMap::new();
    for (i, &choice) in choices.iter().enumerate() {
        let (session, device) = sessions[i % sessions.len()];
        if i % 4 == 3 {
            service.client_think_ns(u64::from(choice) * 2_000);
        }
        let blkid = 64 + u32::from(choice % 48);
        let blkcnt = 1 + u32::from(choice % 8);
        let req = if choice % 3 == 0 {
            Request::Write { device, blkid, data: pattern(i as u64, blkcnt) }
        } else {
            Request::Read { device, blkid, blkcnt }
        };
        let id = service.submit(session, req.clone()).expect("submit");
        requests.insert(id, req);
        session_of.insert(id, session);
    }

    let completions = service.drain_all();
    let witness = service.take_exec_log();
    assert_eq!(completions.len(), choices.len(), "no completion lost across lane threads");
    assert_eq!(witness.len(), choices.len());

    let mut ok = 0usize;
    let mut diverged = 0usize;
    for c in &completions {
        match &c.result {
            Ok(_) => ok += 1,
            Err(ServeError::Replay(ReplayError::Diverged(_))) if fault_skip.is_some() => {
                diverged += 1;
                assert!(
                    matches!(requests[&c.id], Request::Read { device: Device::Mmc, .. }),
                    "request {}: only MMC reads can diverge under this fault",
                    c.id
                );
            }
            other => panic!("request {} must complete (or diverge typed), got {other:?}", c.id),
        }
        assert!(
            c.completed_ns >= c.submitted_ns,
            "request {} completed at {} before its submission {}",
            c.id,
            c.completed_ns,
            c.submitted_ns
        );
    }
    assert_eq!(ok + diverged, choices.len(), "completed + diverged == submitted");
    if diverged > 0 {
        assert!(outcome.as_ref().unwrap().lock().unwrap().engaged_invocations > 0);
    }

    // Per-session ordering under real interleaving: a session is pinned to
    // one lane, so its dispatches appear in the witness in that lane's
    // execution order. Reads commute among reads; any pair involving a
    // write must dispatch in submission (id) order.
    let mut per_session: HashMap<u32, Vec<RequestId>> = HashMap::new();
    for id in &witness {
        per_session.entry(session_of[id]).or_default().push(*id);
    }
    for (session, order) in &per_session {
        for (i, &a) in order.iter().enumerate() {
            for &b in &order[i + 1..] {
                if a > b {
                    let both_reads = matches!(requests[&a], Request::Read { .. })
                        && matches!(requests[&b], Request::Read { .. });
                    assert!(
                        both_reads,
                        "session {session}: request {a} dispatched before earlier request {b} \
                         and at least one is a write (lane threading broke per-session ordering)"
                    );
                }
            }
        }
    }

    // Byte identity per lane: the witness filtered by device is that lane's
    // serial execution order; replay it on a fresh interpreted rig.
    for device in [Device::Mmc, Device::Usb] {
        let mut rig = serial_rig(device);
        let mut serial_reads: HashMap<RequestId, Vec<u8>> = HashMap::new();
        for id in witness.iter().filter(|id| requests[id].device() == device) {
            if let Some(bytes) = serial_execute(&mut rig, device, &requests[id]) {
                serial_reads.insert(*id, bytes);
            }
        }
        for c in completions.iter().filter(|c| c.device == device) {
            if let Ok(Payload::Read(bytes)) = &c.result {
                prop_assert_eq_bytes(&serial_reads[&c.id], bytes, c.id);
            }
        }
        // Final device state matches the per-lane serial reference.
        if fault_skip.is_some() {
            service.clear_fault(device).expect("clear fault");
            service.lane_health_check(device).expect("post-divergence lane health");
        }
        let readback = Request::Read { device, blkid: 64, blkcnt: 56 };
        let session = sessions.iter().find(|(_, d)| *d == device).unwrap().0;
        let id = service.submit(session, readback.clone()).expect("submit readback");
        let final_completion =
            service.drain_all().into_iter().find(|c| c.id == id).expect("readback completion");
        let Ok(Payload::Read(service_state)) = final_completion.result else {
            panic!("readback failed");
        };
        let serial_state = serial_execute(&mut rig, device, &readback).expect("serial readback");
        prop_assert_eq_bytes(&serial_state, &service_state, id);
    }
}

fn block_device_of(req: &Request) -> Device {
    match req {
        Request::Read { device, .. } | Request::Write { device, .. } => *device,
        Request::Capture { .. } => Device::Vchiq,
    }
}

/// The **routed-replica** flavour of the property: 2–4 MMC replica lanes plus
/// a 2-replica USB fleet, with the default `submit()` riding the shard
/// router (hash or stripe placement, spill enabled). Each block address has
/// one deterministic home shard, and FIFO lanes execute their queue in
/// admission order, so per block address the executed order **is** the
/// submission order; spilled reads only ever touch never-written chunks,
/// whose bytes equal the recorded bundle's state on every replica. A single
/// interpreted rig per device class executing the submissions in submission
/// order is therefore a valid serial reference — every reassembled read
/// payload must match it byte for byte, fan-outs and spills included.
fn check_routed_replicas(
    mmc_replicas: usize,
    policy: RoutePolicy,
    choices: &[u8],
    submit_mode: SubmitMode,
    exec_mode: ExecMode,
    fault_skip: Option<u64>,
) {
    let config = ServeConfig {
        policy: Policy::Fifo,
        coalesce: true,
        submit_mode,
        exec_mode,
        route: RouteConfig { policy, spill: true },
        block_granularities: GRANULARITIES.to_vec(),
        ..ServeConfig::default()
    };
    let mut fleet: Vec<(Device, Driverlet)> =
        (0..mmc_replicas).map(|_| (Device::Mmc, mmc_bundle().clone())).collect();
    fleet.push((Device::Usb, usb_bundle().clone()));
    fleet.push((Device::Usb, usb_bundle().clone()));
    let mut service = DriverletService::with_driverlets(&fleet, config).expect("build service");
    let sessions: Vec<u32> = (0..3).map(|_| service.open_session().unwrap()).collect();
    let outcome = fault_skip.map(|skip| {
        service
            .inject_fault(
                Device::Mmc,
                FaultPlan {
                    template: Some("_rd_".into()),
                    skip_invocations: skip,
                    sticky: true,
                    ..FaultPlan::default()
                },
            )
            .expect("inject fault")
    });

    let mut program: Vec<(RequestId, Request)> = Vec::new();
    for (i, &choice) in choices.iter().enumerate() {
        let session = sessions[i % sessions.len()];
        let device = if i % 3 == 2 { Device::Usb } else { Device::Mmc };
        if i % 4 == 3 {
            service.client_think_ns(u64::from(choice) * 2_000);
        }
        let blkid = 64 + u32::from(choice % 48);
        let blkcnt = 1 + u32::from(choice % 8);
        let req = if choice % 3 == 0 {
            Request::Write { device, blkid, data: pattern(i as u64, blkcnt) }
        } else {
            Request::Read { device, blkid, blkcnt }
        };
        let id = service.submit(session, req.clone()).expect("routed submit");
        program.push((id, req));
    }

    let completions = service.drain_all();
    assert_eq!(
        completions.len(),
        program.len(),
        "every routed submit surfaces exactly one reassembled completion"
    );
    assert_eq!(
        service.stats().routed as usize,
        program.len(),
        "every default submit rode the router"
    );

    let requests: HashMap<RequestId, &Request> =
        program.iter().map(|(id, req)| (*id, req)).collect();
    let mut ok = 0usize;
    let mut diverged = 0usize;
    for c in &completions {
        match &c.result {
            Ok(_) => ok += 1,
            Err(ServeError::Replay(ReplayError::Diverged(_))) if fault_skip.is_some() => {
                diverged += 1;
                let req = requests[&c.id];
                assert!(
                    matches!(req, Request::Read { .. }) && block_device_of(req) == Device::Mmc,
                    "request {}: only MMC reads can diverge under the injected read fault",
                    c.id
                );
            }
            other => panic!("request {} must complete or diverge typed, got {other:?}", c.id),
        }
        assert!(
            c.completed_ns >= c.submitted_ns,
            "request {} completed at {} before its submission {}",
            c.id,
            c.completed_ns,
            c.submitted_ns
        );
    }
    assert_eq!(ok + diverged, program.len(), "completed + diverged == submitted");
    if diverged > 0 {
        assert!(
            outcome.as_ref().unwrap().lock().unwrap().engaged_invocations > 0,
            "divergences can only come from the injected fault"
        );
    }

    if fault_skip.is_some() {
        service.clear_fault(Device::Mmc).expect("clear fault");
        service.lane_health_check(Device::Mmc).expect("post-divergence lane health");
    }

    // Serial reference per device class, in submission order (see above for
    // why that order is the right one), then a full hot-range readback
    // through the router — reassembled across however many shards the
    // policy splits it over — against the same rig.
    for device in [Device::Mmc, Device::Usb] {
        let mut rig = serial_rig(device);
        let mut serial_reads: HashMap<RequestId, Vec<u8>> = HashMap::new();
        for (id, req) in program.iter().filter(|(_, req)| block_device_of(req) == device) {
            if let Some(bytes) = serial_execute(&mut rig, device, req) {
                serial_reads.insert(*id, bytes);
            }
        }
        for c in completions.iter().filter(|c| c.device == device) {
            if let Ok(Payload::Read(bytes)) = &c.result {
                prop_assert_eq_bytes(&serial_reads[&c.id], bytes, c.id);
            }
        }
        let readback = Request::Read { device, blkid: 64, blkcnt: 56 };
        let id = service.submit(sessions[0], readback.clone()).expect("submit readback");
        let final_completion =
            service.drain_all().into_iter().find(|c| c.id == id).expect("readback completion");
        let Ok(Payload::Read(service_state)) = final_completion.result else {
            panic!("routed readback failed on {device:?}");
        };
        let serial_state = serial_execute(&mut rig, device, &readback).expect("serial readback");
        prop_assert_eq_bytes(&serial_state, &service_state, id);
    }
}

/// The **spill** flavour: three MMC replicas behind tiny per-lane queues and
/// read-heavy traffic, so saturated home shards shed clean reads to their
/// least-loaded siblings mid-run. Routed rejects must carry the whole
/// fleet's depth snapshot, and — spills or not — every read stays
/// byte-identical to the serial reference in submission order.
fn check_routed_spill(choices: &[u8]) {
    const REPLICAS: usize = 3;
    let config = ServeConfig {
        policy: Policy::Fifo,
        coalesce: true,
        queue_capacity: 4,
        route: RouteConfig { policy: RoutePolicy::HashShard { chunk_blocks: 16 }, spill: true },
        block_granularities: GRANULARITIES.to_vec(),
        ..ServeConfig::default()
    };
    let fleet: Vec<(Device, Driverlet)> =
        (0..REPLICAS).map(|_| (Device::Mmc, mmc_bundle().clone())).collect();
    let mut service = DriverletService::with_driverlets(&fleet, config).expect("build service");
    let sessions: Vec<u32> = (0..3).map(|_| service.open_session().unwrap()).collect();

    let mut program: Vec<(RequestId, Request)> = Vec::new();
    let mut completions: Vec<Completion> = Vec::new();
    for (i, &choice) in choices.iter().enumerate() {
        let session = sessions[i % sessions.len()];
        let blkid = 64 + u32::from(choice % 48);
        let blkcnt = 1 + u32::from(choice % 8);
        let req = if choice % 7 == 0 {
            Request::Write { device: Device::Mmc, blkid, data: pattern(i as u64, blkcnt) }
        } else {
            Request::Read { device: Device::Mmc, blkid, blkcnt }
        };
        let id = match service.submit(session, req.clone()) {
            Ok(id) => id,
            Err(ServeError::QueueFull { fleet, .. }) => {
                assert_eq!(fleet.len(), REPLICAS, "a routed reject reports every replica's depth");
                assert!(
                    fleet.iter().any(|r| r.depth >= r.capacity),
                    "a routed reject implies some saturated shard"
                );
                completions.extend(service.drain_all());
                service.submit(session, req.clone()).expect("submit after drain")
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        };
        program.push((id, req));
    }
    completions.extend(service.drain_all());
    assert_eq!(completions.len(), program.len(), "drained mid-run or not, nothing is lost");
    assert_eq!(service.stats().routed as usize, program.len());

    let mut rig = serial_rig(Device::Mmc);
    let mut serial_reads: HashMap<RequestId, Vec<u8>> = HashMap::new();
    for (id, req) in &program {
        if let Some(bytes) = serial_execute(&mut rig, Device::Mmc, req) {
            serial_reads.insert(*id, bytes);
        }
    }
    for c in &completions {
        match &c.result {
            Ok(Payload::Read(bytes)) => prop_assert_eq_bytes(&serial_reads[&c.id], bytes, c.id),
            Ok(_) => {}
            Err(other) => panic!("request {} failed under spill pressure: {other}", c.id),
        }
    }
    let readback = Request::Read { device: Device::Mmc, blkid: 64, blkcnt: 56 };
    let id = service.submit(sessions[0], readback.clone()).expect("submit readback");
    let final_completion =
        service.drain_all().into_iter().find(|c| c.id == id).expect("readback completion");
    let Ok(Payload::Read(service_state)) = final_completion.result else {
        panic!("readback failed");
    };
    let serial_state = serial_execute(&mut rig, Device::Mmc, &readback).expect("serial readback");
    prop_assert_eq_bytes(&serial_state, &service_state, id);
}

/// The **adversarial multi-tenancy** flavour of the property: a flooding
/// tenant capped by admission QoS, a mid-batch divergence storm on one
/// replica, failover retries across a 2–4-replica fleet, and the watchdog
/// quarantining and restoring the victimised lane — all in one run. The
/// invariants:
///
/// * the flooder's burst overflows its token bucket into typed
///   [`ServeError::Throttled`] rejects; victims are **never** rejected
///   (their submits `expect`, so any throttle or queue-full fails here);
/// * client-side conservation: every accepted request surfaces exactly one
///   completion (`ok + diverged/exhausted == accepted`), throttled submits
///   never got an id — `completed + diverged + throttled == submitted`;
/// * the storm's clean single-chunk reads complete `Ok` via sibling
///   failover, the sticky fault notwithstanding;
/// * every successful read stays byte-identical to the interpreted serial
///   reference executing the submissions in submission order (clean
///   retried reads touch never-written chunks, so the replica premise
///   keeps the single-rig reference valid);
/// * the watchdog trips on the storm, and post-storm traffic passes the
///   lane through probation back to `Healthy`.
fn check_adversarial_fleet(mmc_replicas: usize, choices: &[u8], skip: u64, exec_mode: ExecMode) {
    let route_policy = RoutePolicy::HashShard { chunk_blocks: 16 };
    let config = ServeConfig {
        policy: Policy::Fifo,
        coalesce: true,
        exec_mode,
        route: RouteConfig { policy: route_policy, spill: true },
        qos: QosConfig { enabled: true, default_qos: SessionQos::default() },
        failover: FailoverConfig { enabled: true, retry_budget: 2, backoff_base_ns: 50_000 },
        supervise: SuperviseConfig {
            enabled: true,
            divergence_threshold: 2,
            window: 16,
            probation_ok: 2,
        },
        block_granularities: GRANULARITIES.to_vec(),
        ..ServeConfig::default()
    };
    let fleet: Vec<(Device, Driverlet)> =
        (0..mmc_replicas).map(|_| (Device::Mmc, mmc_bundle().clone())).collect();
    let mut service = DriverletService::with_driverlets(&fleet, config).expect("build service");
    let flooder = service.open_session().unwrap();
    let victims: Vec<u32> = (0..2).map(|_| service.open_session().unwrap()).collect();
    // A tight bucket: 10 rps (one token per 100 virtual ms), burst 2.
    service
        .set_session_qos(flooder, SessionQos { rate_rps: 10, burst: 2, weight: 1 })
        .expect("flooder qos");

    let mut program: Vec<(RequestId, Request)> = Vec::new();
    let mut throttled = 0usize;

    // Phase 1 — the flood: back-to-back flooder reads, four times the
    // bucket's burst, with no virtual time for refill in between.
    for i in 0..8u32 {
        let req = Request::Read { device: Device::Mmc, blkid: i % 16, blkcnt: 1 };
        match service.submit(flooder, req.clone()) {
            Ok(id) => program.push((id, req)),
            Err(ServeError::Throttled { session, retry_after_ns, .. }) => {
                assert_eq!(session, flooder, "the throttle names the offending tenant");
                assert!(retry_after_ns > 0, "the throttle names its refill horizon");
                throttled += 1;
            }
            Err(other) => panic!("the flooder can only be throttled, got {other}"),
        }
    }
    assert!(throttled >= 1, "an 8-deep burst must overflow a burst-2 bucket");

    // Phase 2 — victim traffic with a mid-batch fault storm: halfway
    // through, replica 0 grows a sticky read fault and the storm reads
    // (clean, single-chunk, homed there) must survive via failover.
    let half = choices.len() / 2;
    let homed0: Vec<u32> =
        (0..64u32).filter(|b| route_policy.replica_for(*b, mmc_replicas) == 0).take(6).collect();
    let mut storm_ids: Vec<RequestId> = Vec::new();
    for (i, &choice) in choices.iter().enumerate() {
        if i == half {
            service
                .inject_fault_at(
                    LaneId { device: Device::Mmc, replica: 0 },
                    FaultPlan {
                        template: Some("_rd_".into()),
                        skip_invocations: skip,
                        sticky: true,
                        ..FaultPlan::default()
                    },
                )
                .expect("inject storm fault");
            for &b in &homed0 {
                let req = Request::Read { device: Device::Mmc, blkid: b, blkcnt: 1 };
                let id = service.submit(victims[0], req.clone()).expect("storm read accepted");
                storm_ids.push(id);
                program.push((id, req));
            }
        }
        let session = victims[i % victims.len()];
        let blkid = 64 + u32::from(choice % 48);
        let blkcnt = 1 + u32::from(choice % 8);
        let req = if choice % 3 == 0 {
            Request::Write { device: Device::Mmc, blkid, data: pattern(i as u64, blkcnt) }
        } else {
            Request::Read { device: Device::Mmc, blkid, blkcnt }
        };
        let id = service.submit(session, req.clone()).expect("victims are never rejected");
        program.push((id, req));
    }

    let completions = service.drain_all();
    let requests: HashMap<RequestId, &Request> =
        program.iter().map(|(id, req)| (*id, req)).collect();
    let mut seen_ids = std::collections::HashSet::new();
    for c in &completions {
        assert!(seen_ids.insert(c.id), "request {} delivered twice ({:?})", c.id, c.result);
        assert!(requests.contains_key(&c.id), "unknown completion {} ({:?})", c.id, c.result);
    }
    assert_eq!(completions.len(), program.len(), "accepted == delivered: zero lost");
    let mut ok = 0usize;
    let mut failed = 0usize;
    for c in &completions {
        match &c.result {
            Ok(_) => ok += 1,
            Err(ServeError::Replay(ReplayError::Diverged(_)))
            | Err(ServeError::Exhausted { .. }) => {
                assert!(
                    matches!(requests[&c.id], Request::Read { .. }),
                    "request {}: only reads can fail under a read-template fault",
                    c.id
                );
                failed += 1;
            }
            other => panic!("request {} must complete or fail typed, got {other:?}", c.id),
        }
        assert!(
            c.completed_ns >= c.submitted_ns,
            "request {} completed at {} before its submission {}",
            c.id,
            c.completed_ns,
            c.submitted_ns
        );
    }
    // Client-side conservation: completed + diverged + throttled ==
    // submitted (throttled submits never received an id).
    assert_eq!(ok + failed, program.len());
    assert_eq!(service.stats().throttled as usize, throttled);
    // The storm's retryable reads all completed Ok via the sibling.
    for id in &storm_ids {
        let c = completions.iter().find(|c| c.id == *id).unwrap();
        assert!(c.result.is_ok(), "storm read {id} must survive via failover: {:?}", c.result);
    }
    assert!(service.stats().failovers >= 1, "the storm must have exercised failover");
    assert!(service.stats().quarantines >= 1, "the storm must trip the watchdog");

    // Byte identity for every successful read against the interpreted
    // serial reference executing the submissions in submission order
    // (valid for routed fleets — each block address has one FIFO home
    // shard, and moved reads only touch never-written chunks; see
    // `check_routed_replicas`).
    let mut rig = serial_rig(Device::Mmc);
    let mut serial_reads: HashMap<RequestId, Vec<u8>> = HashMap::new();
    for (id, req) in &program {
        if let Some(bytes) = serial_execute(&mut rig, Device::Mmc, req) {
            serial_reads.insert(*id, bytes);
        }
    }
    for c in &completions {
        if let Ok(Payload::Read(bytes)) = &c.result {
            prop_assert_eq_bytes(&serial_reads[&c.id], bytes, c.id);
        }
    }

    // Phase 3 — recovery: the watchdog's soft reset cleared the sticky
    // fault; post-storm traffic homed on the victimised replica passes it
    // through probation back to healthy.
    for &b in &homed0 {
        service
            .submit(victims[1], Request::Read { device: Device::Mmc, blkid: b, blkcnt: 1 })
            .expect("post-storm read");
    }
    let tail = service.drain_all();
    assert_eq!(tail.len(), homed0.len());
    assert!(tail.iter().all(|c| c.result.is_ok()), "the fleet serves cleanly after the storm");
    assert!(service.stats().lane_restores >= 1, "probation restored the quarantined lane");
    let health = service
        .lane_health_check_at(LaneId { device: Device::Mmc, replica: 0 })
        .expect("post-probation health");
    assert_eq!(health.state, LaneState::Healthy);
}

fn prop_assert_eq_bytes(expected: &[u8], got: &[u8], id: RequestId) {
    assert_eq!(expected.len(), got.len(), "length mismatch for request {id}");
    if expected != got {
        let first = expected.iter().zip(got).position(|(a, b)| a != b).unwrap();
        panic!("request {id}: payload diverges from the serial order at byte {first}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn mmc_interleavings_match_a_serial_order_fifo(
        choices in proptest::collection::vec(any::<u8>(), 6..18)
    ) {
        check_block_device(Device::Mmc, Policy::Fifo, &choices);
    }

    #[test]
    fn mmc_interleavings_match_a_serial_order_drr(
        choices in proptest::collection::vec(any::<u8>(), 6..18)
    ) {
        check_block_device(
            Device::Mmc,
            Policy::DeficitRoundRobin { quantum_blocks: 16 },
            &choices,
        );
    }

    #[test]
    fn mmc_ring_batches_match_a_serial_order_fifo(
        choices in proptest::collection::vec(any::<u8>(), 6..18)
    ) {
        check_ring_batches(Device::Mmc, Policy::Fifo, &choices);
    }

    #[test]
    fn mmc_ring_batches_match_a_serial_order_drr(
        choices in proptest::collection::vec(any::<u8>(), 6..18)
    ) {
        check_ring_batches(
            Device::Mmc,
            Policy::DeficitRoundRobin { quantum_blocks: 16 },
            &choices,
        );
    }

    #[test]
    fn usb_ring_batches_match_a_serial_order_fifo(
        choices in proptest::collection::vec(any::<u8>(), 6..12)
    ) {
        check_ring_batches(Device::Usb, Policy::Fifo, &choices);
    }

    #[test]
    fn usb_interleavings_match_a_serial_order_fifo(
        choices in proptest::collection::vec(any::<u8>(), 6..12)
    ) {
        check_block_device(Device::Usb, Policy::Fifo, &choices);
    }

    #[test]
    fn mmc_interleavings_with_divergences_keep_surviving_sessions_identical(
        choices in proptest::collection::vec(any::<u8>(), 6..18),
        skip in 0u64..6,
    ) {
        check_block_device_with_divergences(
            Device::Mmc,
            Policy::Fifo,
            &choices,
            skip,
            SubmitMode::PerCall,
        );
    }

    #[test]
    fn mmc_ring_batches_with_divergences_keep_surviving_sessions_identical(
        choices in proptest::collection::vec(any::<u8>(), 6..18),
        skip in 0u64..6,
    ) {
        check_block_device_with_divergences(
            Device::Mmc,
            Policy::Fifo,
            &choices,
            skip,
            SubmitMode::Ring,
        );
    }

    #[test]
    fn usb_interleavings_with_divergences_keep_surviving_sessions_identical(
        choices in proptest::collection::vec(any::<u8>(), 6..12),
        skip in 0u64..4,
    ) {
        check_block_device_with_divergences(
            Device::Usb,
            Policy::DeficitRoundRobin { quantum_blocks: 8 },
            &choices,
            skip,
            SubmitMode::PerCall,
        );
    }

    #[test]
    fn mmc_usb_parallel_lanes_match_a_serial_order_fifo(
        choices in proptest::collection::vec(any::<u8>(), 8..20)
    ) {
        check_parallel_lanes(Policy::Fifo, &choices, None);
    }

    #[test]
    fn mmc_usb_parallel_lanes_match_a_serial_order_drr(
        choices in proptest::collection::vec(any::<u8>(), 8..20)
    ) {
        check_parallel_lanes(
            Policy::DeficitRoundRobin { quantum_blocks: 16 },
            &choices,
            None,
        );
    }

    #[test]
    fn mmc_usb_parallel_lanes_with_divergences_balance_exactly(
        choices in proptest::collection::vec(any::<u8>(), 8..20),
        skip in 0u64..6,
    ) {
        check_parallel_lanes(Policy::Fifo, &choices, Some(skip));
    }

    #[test]
    fn usb_interleavings_match_a_serial_order_drr(
        choices in proptest::collection::vec(any::<u8>(), 6..14)
    ) {
        check_block_device(
            Device::Usb,
            Policy::DeficitRoundRobin { quantum_blocks: 8 },
            &choices,
        );
    }

    #[test]
    fn mmc_usb_routed_replicas_hash_match_a_serial_order(
        choices in proptest::collection::vec(any::<u8>(), 8..20),
        replicas in 2usize..5,
    ) {
        // Small chunks so spans regularly straddle a chunk boundary and
        // fan out across shards.
        check_routed_replicas(
            replicas,
            RoutePolicy::HashShard { chunk_blocks: 16 },
            &choices,
            SubmitMode::PerCall,
            ExecMode::Sequential,
            None,
        );
    }

    #[test]
    fn mmc_usb_routed_replicas_stripe_ring_match_a_serial_order(
        choices in proptest::collection::vec(any::<u8>(), 8..20),
        replicas in 2usize..5,
    ) {
        check_routed_replicas(
            replicas,
            RoutePolicy::Stripe { stripe_blocks: 8 },
            &choices,
            SubmitMode::Ring,
            ExecMode::Sequential,
            None,
        );
    }

    #[test]
    fn mmc_usb_routed_replicas_threaded_match_a_serial_order(
        choices in proptest::collection::vec(any::<u8>(), 8..20),
        replicas in 2usize..4,
    ) {
        check_routed_replicas(
            replicas,
            RoutePolicy::HashShard { chunk_blocks: 16 },
            &choices,
            SubmitMode::PerCall,
            ExecMode::Threaded,
            None,
        );
    }

    #[test]
    fn mmc_usb_routed_replicas_with_divergences_keep_survivors_identical(
        choices in proptest::collection::vec(any::<u8>(), 8..20),
        replicas in 2usize..4,
        skip in 0u64..6,
    ) {
        check_routed_replicas(
            replicas,
            RoutePolicy::Stripe { stripe_blocks: 8 },
            &choices,
            SubmitMode::PerCall,
            ExecMode::Sequential,
            Some(skip),
        );
    }

    #[test]
    fn mmc_routed_spill_keeps_reads_byte_identical(
        choices in proptest::collection::vec(any::<u8>(), 10..24)
    ) {
        check_routed_spill(&choices);
    }

    #[test]
    fn mmc_adversarial_flood_storm_failover_matches_a_serial_order(
        choices in proptest::collection::vec(any::<u8>(), 8..20),
        replicas in 2usize..5,
        skip in 0u64..2,
    ) {
        check_adversarial_fleet(replicas, &choices, skip, ExecMode::Sequential);
    }

    #[test]
    fn mmc_adversarial_threaded_flood_storm_failover_matches_a_serial_order(
        choices in proptest::collection::vec(any::<u8>(), 8..16),
        replicas in 2usize..4,
        skip in 0u64..2,
    ) {
        check_adversarial_fleet(replicas, &choices, skip, ExecMode::Threaded);
    }
}

/// The camera lane: concurrent capture sessions produce exactly the frames
/// the serial interpreted replay produces, in dispatch order.
#[test]
fn vchiq_captures_match_the_serial_order() {
    let config =
        ServeConfig { policy: Policy::Fifo, camera_bursts: vec![1], ..ServeConfig::default() };
    let mut service =
        DriverletService::with_driverlets(&[(Device::Vchiq, cam_bundle().clone())], config)
            .expect("build service");
    let a = service.open_session().unwrap();
    let b = service.open_session().unwrap();
    let mut requests = HashMap::new();
    for (i, resolution) in [720u32, 1080, 720, 1440].iter().enumerate() {
        let session = if i % 2 == 0 { a } else { b };
        let req = Request::Capture { frames: 1, resolution: *resolution };
        let id = service.submit(session, req.clone()).unwrap();
        requests.insert(id, req);
    }
    let completions = service.drain_all();
    let witness = service.take_exec_log();
    assert_eq!(completions.len(), 4);

    let mut rig = serial_rig(Device::Vchiq);
    let mut serial_frames = HashMap::new();
    for id in &witness {
        serial_frames.insert(*id, serial_execute(&mut rig, Device::Vchiq, &requests[id]).unwrap());
    }
    for c in &completions {
        let Ok(Payload::Image { data }) = &c.result else {
            panic!("capture failed: {:?}", c.result);
        };
        assert!(dlt_dev_vchiq::msg::is_valid_jpeg(data));
        assert_eq!(
            &serial_frames[&c.id], data,
            "frame for request {} must match the serial interpreted replay",
            c.id
        );
    }
}
