//! Workspace-local minimal stand-in for the `parking_lot` crate.
//!
//! Provides parking_lot's panic-free lock signatures (`lock()` returns the
//! guard directly, no poisoning). The mutex is a spinlock with an inline
//! uncontended fast path: real parking_lot's selling point is exactly that
//! its fast path is a single compare-and-swap, and the driverlets simulation
//! takes these locks on every simulated register access, so the stand-in
//! mirrors that design instead of routing through `std::sync::Mutex`. The
//! simulation is effectively uncontended (one platform per thread);
//! contended acquisition spins with `spin_loop` hints, which stays correct —
//! merely less polite — when a test shares a platform across threads.

#![warn(missing_docs)]

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion primitive with parking_lot's API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// Safety: the lock provides exclusive access to the inner value, so the
// usual Mutex bounds apply.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    /// The guard must not change threads (the unlocking thread must be the
    /// locking one), so it is `!Send` like std's and parking_lot's guards;
    /// the raw-pointer marker opts out of the auto impls.
    _not_send: PhantomData<*const ()>,
}

// Safety: sharing `&MutexGuard<T>` only hands out `&T` (via Deref), which
// is sound exactly when `T: Sync` — the bound std and parking_lot use. The
// auto impl would have required only `T: Send`, which is unsound (e.g. it
// would let two threads share a `&Cell` through the guard).
unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex { locked: AtomicBool::new(false), value: UnsafeCell::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking (spinning) until available.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return MutexGuard { lock: self, _not_send: PhantomData };
        }
        self.lock_slow()
    }

    #[cold]
    fn lock_slow(&self) -> MutexGuard<'_, T> {
        loop {
            while self.locked.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return MutexGuard { lock: self, _not_send: PhantomData };
            }
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self.locked.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_ok() {
            Some(MutexGuard { lock: self, _not_send: PhantomData })
        } else {
            None
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // Safety: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // Safety: the guard holds the lock, so access is exclusive.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// Reader-writer lock, `std::sync::RwLock` with parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|_| panic!("rwlock poisoned by a panicking holder"))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|_| panic!("rwlock poisoned by a panicking holder"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_excludes_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn get_mut_and_debug() {
        let mut m = Mutex::new(7u32);
        *m.get_mut() = 9;
        assert!(format!("{m:?}").contains('9'));
    }
}
