//! # dlt-explore — concolic divergence-input generation for driverlets
//!
//! The paper's safety argument (§5, §8.2.1) is a *rejection* argument: a
//! replayed driverlet is safe because the replayer refuses any run that
//! strays from the recorded trace. That argument is only as strong as the
//! constraint pool it rests on — every `ConsOp` the compiler emitted must
//! actually fire when violated, and a violation must surface as a *typed*
//! error, never a panic, a hang, or a corrupted device lane.
//!
//! This crate turns that obligation into an exhaustive, gateable campaign:
//!
//! 1. **Enumerate** — every compiled [`dlt_template::ReplayProgram`] exposes
//!    its constraint pool through
//!    [`dlt_template::program::ReplayProgram::constraint_sites`]: parameter
//!    coverage checks, `Read`-op response constraints and `Poll`-op exit
//!    conditions, each with its register/slot provenance.
//! 2. **Solve** — for every single `ConsOp` (site roots *and* every leaf of
//!    compound trees) the concolic solver
//!    ([`dlt_template::program::ReplayProgram::solve_violation`]) synthesises
//!    a concrete violating observation against the live register file:
//!    invoke-argument values for parameter checks, device response
//!    register/DMA words for reads, and never-satisfied poll words that
//!    overrun the recorded iteration bound.
//! 3. **Drive** — each mutation runs through the full stack. Parameter
//!    violations are invoked as real arguments and must come back as
//!    [`dlt_core::ReplayError::OutOfCoverage`]. Response and poll violations
//!    are injected with a [`dlt_core::ConstraintFlipper`] on the replayer's
//!    device-read path and must come back as
//!    [`dlt_core::ReplayError::Diverged`]. A serve-layer gauntlet injects
//!    the same faults mid-batch through `dlt-serve`'s per-call and ring
//!    submission paths and asserts typed CQ errors plus post-divergence
//!    lane health: an untouched session's bytes must survive unchanged.
//! 4. **Gate** — the [`ExploreReport`] ledger (persisted as
//!    `BENCH_explore.json`) counts constraints total vs flipped vs
//!    confirmed-rejected; [`ExploreReport::gate`] fails unless every
//!    falsifiable constraint was flipped, every flip was rejected with the
//!    right type, and no case panicked, hung or left a lane unhealthy.
//!
//! Every case is deadline-wrapped (worker thread + `recv_timeout`) and
//! panic-wrapped (`catch_unwind`), so "no hang" and "no panic" are measured
//! properties, not hopes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use dlt_core::{ConstraintFlipper, FaultPlan, ReplayError, Replayer};
use dlt_dev_mmc::MmcSubsystem;
use dlt_dev_usb::UsbSubsystem;
use dlt_dev_vchiq::VchiqSubsystem;
use dlt_hw::Platform;
use dlt_recorder::campaign::{
    record_camera_driverlet_subset, record_mmc_driverlet_subset, record_usb_driverlet_subset,
    DEV_KEY,
};
use dlt_serve::{Device, DriverletService, Payload, Request, ServeConfig, ServeError, SubmitMode};
use dlt_tee::{SecureIo, TeeKernel};
use dlt_template::program::EvalScratch;
use dlt_template::{compile, Driverlet, SiteKind, Violation};
use serde::{Deserialize, Serialize};

/// Wall-clock deadline for a single divergence case (one solve plus at most
/// `max_attempts` replays). Generous: a healthy case is milliseconds; only
/// a genuine hang ever reaches this.
const CASE_DEADLINE: Duration = Duration::from_secs(60);

/// Wall-clock deadline for one serve-layer gauntlet case (service build,
/// seed traffic, faulted batch, health probe).
const SERVE_DEADLINE: Duration = Duration::from_secs(120);

/// The three gold drivers the campaign explores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreDevice {
    /// SDHOST + secure SD card (templates `mmc_{rd,wr}_{blkcnt}`).
    Mmc,
    /// DWC2 + USB mass storage (templates `usb_{rd,wr}_{blkcnt}`).
    Usb,
    /// VCHIQ + VC4 camera (capture templates).
    Cam,
}

impl ExploreDevice {
    fn name(self) -> &'static str {
        match self {
            ExploreDevice::Mmc => "mmc",
            ExploreDevice::Usb => "usb",
            ExploreDevice::Cam => "vchiq",
        }
    }
}

/// Per-device constraint-coverage ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceLedger {
    /// Device name (`mmc`/`usb`/`vchiq`).
    pub device: String,
    /// Templates in the recorded bundle.
    pub templates: usize,
    /// Total enumerated `ConsOp` cases across all compiled programs.
    pub constraints_total: usize,
    /// Cases where the solver synthesised a violating input and the harness
    /// injected it into a live replay.
    pub flipped: usize,
    /// Flipped cases the stack rejected with the expected typed error
    /// (`OutOfCoverage` for parameter flips, `Diverged` for response and
    /// poll flips).
    pub confirmed_rejected: usize,
    /// Cases whose flip is absorbed by a sibling disjunct or sibling
    /// template (the site root stays satisfiable) — verified to *succeed*.
    pub shadowed: usize,
    /// Cases the solver could not falsify from leaf candidates.
    pub unfalsifiable: usize,
    /// Cases that panicked (caught by the harness).
    pub panics: usize,
    /// Cases that exceeded the per-case deadline.
    pub hangs: usize,
    /// Cases with any other unexpected outcome (wrong error type, silent
    /// acceptance of a violating input, ...).
    pub anomalies: usize,
    /// Human-readable descriptions of every panic/hang/anomaly.
    pub notes: Vec<String>,
}

impl DeviceLedger {
    fn new(device: &str) -> Self {
        DeviceLedger {
            device: device.to_string(),
            templates: 0,
            constraints_total: 0,
            flipped: 0,
            confirmed_rejected: 0,
            shadowed: 0,
            unfalsifiable: 0,
            panics: 0,
            hangs: 0,
            anomalies: 0,
            notes: Vec::new(),
        }
    }
}

/// Serve-layer gauntlet ledger: mid-batch fault injection through the
/// multi-tenant service, per-call and ring submission paths.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeLedger {
    /// Gauntlet cases run (device × submission mode).
    pub cases: usize,
    /// Completions that surfaced as typed `Replay(Diverged)` CQ errors.
    pub cq_errors: usize,
    /// Cases whose lane passed the post-divergence health check *and*
    /// returned an untouched session's bytes unchanged.
    pub healthy_lanes: usize,
    /// Cases that panicked.
    pub panics: usize,
    /// Cases that exceeded the deadline.
    pub hangs: usize,
    /// Cases with any other unexpected outcome.
    pub anomalies: usize,
    /// Human-readable descriptions of every panic/hang/anomaly.
    pub notes: Vec<String>,
}

impl ServeLedger {
    fn new() -> Self {
        ServeLedger {
            cases: 0,
            cq_errors: 0,
            healthy_lanes: 0,
            panics: 0,
            hangs: 0,
            anomalies: 0,
            notes: Vec::new(),
        }
    }
}

/// The whole campaign's result: the artefact behind `BENCH_explore.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Whether the reduced (`--quick`) campaign produced this report.
    pub quick: bool,
    /// One ledger per gold driver.
    pub devices: Vec<DeviceLedger>,
    /// The serve-layer gauntlet ledger.
    pub serve: ServeLedger,
}

impl ExploreReport {
    /// The divergence-robustness gate: every falsifiable constraint flipped,
    /// every flip confirmed-rejected with the right type, zero
    /// panics/hangs/anomalies, and every gauntlet lane healthy after
    /// injected divergence. Returns the full list of violations on failure.
    pub fn gate(&self) -> Result<(), String> {
        let mut problems = Vec::new();
        if self.devices.is_empty() {
            problems.push("no devices explored".to_string());
        }
        for d in &self.devices {
            let falsifiable = d.constraints_total.saturating_sub(d.shadowed + d.unfalsifiable);
            if d.constraints_total == 0 {
                problems.push(format!("{}: no constraints enumerated", d.device));
            }
            if d.flipped != falsifiable {
                problems.push(format!(
                    "{}: flipped {} of {} falsifiable constraints",
                    d.device, d.flipped, falsifiable
                ));
            }
            if d.confirmed_rejected != d.flipped {
                problems.push(format!(
                    "{}: only {} of {} flips were rejected with a typed error",
                    d.device, d.confirmed_rejected, d.flipped
                ));
            }
            if d.panics + d.hangs + d.anomalies > 0 {
                problems.push(format!(
                    "{}: {} panics, {} hangs, {} anomalies: {:?}",
                    d.device, d.panics, d.hangs, d.anomalies, d.notes
                ));
            }
        }
        let s = &self.serve;
        if s.cases == 0 {
            problems.push("serve gauntlet ran no cases".to_string());
        }
        if s.cq_errors == 0 {
            problems.push("serve gauntlet produced no typed CQ errors".to_string());
        }
        if s.healthy_lanes != s.cases {
            problems.push(format!(
                "serve gauntlet: only {} of {} lanes healthy after divergence",
                s.healthy_lanes, s.cases
            ));
        }
        if s.panics + s.hangs + s.anomalies > 0 {
            problems.push(format!(
                "serve gauntlet: {} panics, {} hangs, {} anomalies: {:?}",
                s.panics, s.hangs, s.anomalies, s.notes
            ));
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("\n"))
        }
    }
}

/// Serialize a report as pretty JSON (the `BENCH_explore.json` format).
pub fn to_json(report: &ExploreReport) -> String {
    serde_json::to_string_pretty(report).expect("explore report serializes")
}

/// Parse a previously persisted `BENCH_explore.json`.
pub fn parse_report(json: &str) -> Result<ExploreReport, String> {
    serde_json::from_str(json).map_err(|e| format!("malformed explore report: {e}"))
}

/// Write the report next to the other bench artefacts. Honours the
/// `BENCH_EXPLORE_OUT` environment variable; defaults to
/// `crates/bench/BENCH_explore.json` when run from the workspace root.
pub fn persist(report: &ExploreReport) -> std::io::Result<String> {
    let path = std::env::var("BENCH_EXPLORE_OUT").unwrap_or_else(|_| {
        if std::path::Path::new("crates/bench").is_dir() {
            "crates/bench/BENCH_explore.json".to_string()
        } else {
            "BENCH_explore.json".to_string()
        }
    });
    std::fs::write(&path, to_json(report))?;
    Ok(path)
}

/// Render the ledger as the table the `report` binary prints.
pub fn describe(report: &ExploreReport) -> String {
    let mut out = String::new();
    let mode = if report.quick { "quick" } else { "full" };
    out.push_str(&format!("== dlt-explore divergence-robustness ledger ({mode}) ==\n"));
    out.push_str(
        "device  templates  constraints  flipped  rejected  shadowed  unfalsifiable  \
         panics  hangs  anomalies\n",
    );
    for d in &report.devices {
        out.push_str(&format!(
            "{:<7} {:>9} {:>12} {:>8} {:>9} {:>9} {:>14} {:>7} {:>6} {:>10}\n",
            d.device,
            d.templates,
            d.constraints_total,
            d.flipped,
            d.confirmed_rejected,
            d.shadowed,
            d.unfalsifiable,
            d.panics,
            d.hangs,
            d.anomalies
        ));
    }
    let s = &report.serve;
    out.push_str(&format!(
        "serve gauntlet: {} cases, {} typed CQ errors, {}/{} lanes healthy after divergence, \
         {} panics, {} hangs, {} anomalies\n",
        s.cases, s.cq_errors, s.healthy_lanes, s.cases, s.panics, s.hangs, s.anomalies
    ));
    out
}

/// One case's classified outcome.
enum CaseOutcome {
    /// Violating input synthesised *and* rejected with the expected type.
    Confirmed,
    /// The flip is absorbed (sibling disjunct / sibling template) and the
    /// replay correctly still succeeds.
    Shadowed,
    /// The solver found no falsifying value for this leaf.
    Unfalsifiable,
    /// Anything unexpected. `injected` records whether a violating input
    /// made it into the stack (it counts as flipped but not confirmed).
    Anomaly {
        /// Whether a violating input was actually driven into the stack.
        injected: bool,
        /// What went wrong.
        msg: String,
    },
    /// The case panicked (caught by the per-case `catch_unwind`).
    Panicked(String),
}

/// Messages a template worker streams back to the campaign driver.
enum CaseMsg {
    /// Announced first: how many cases this template will run.
    Plan(usize),
    /// One finished case.
    Case { desc: String, outcome: CaseOutcome },
    /// The worker could not even start (compile failure etc.).
    Fatal(String),
}

fn attach_and_install(dev: ExploreDevice) -> Platform {
    let platform = Platform::new();
    let secure: &[&str] = match dev {
        ExploreDevice::Mmc => {
            MmcSubsystem::attach(&platform).expect("attach mmc");
            &["sdhost", "dma"]
        }
        ExploreDevice::Usb => {
            UsbSubsystem::attach(&platform).expect("attach usb");
            &["dwc2"]
        }
        ExploreDevice::Cam => {
            VchiqSubsystem::attach(&platform).expect("attach vchiq");
            &["vchiq"]
        }
    };
    TeeKernel::install(&platform, secure).expect("install tee");
    platform
}

/// A production rig: compiled-mode replayer over a fresh simulated platform
/// with the bundle loaded and verified.
fn build_rig(dev: ExploreDevice, bundle: &Driverlet) -> Replayer {
    let platform = attach_and_install(dev);
    let mut replayer = Replayer::new(SecureIo::new(platform.bus.clone()));
    replayer.load_driverlet(bundle.clone(), DEV_KEY).expect("load driverlet");
    replayer
}

/// Run every constraint case of one template, streaming results over `tx`.
fn template_worker(
    dev: ExploreDevice,
    bundle: Driverlet,
    tmpl_index: usize,
    tx: mpsc::Sender<CaseMsg>,
) {
    let template = &bundle.templates[tmpl_index];
    let name = template.name.clone();
    let entry = bundle.entry.clone();
    let prog = match compile(template) {
        Ok(p) => p,
        Err(e) => {
            let _ = tx.send(CaseMsg::Fatal(format!("{name}: compile failed: {e}")));
            return;
        }
    };
    let base = template.meta.recorded_with.clone();
    let sites = prog.constraint_sites();
    let total: usize = sites.iter().map(|s| s.cons.bounds().len()).sum();
    if tx.send(CaseMsg::Plan(total)).is_err() {
        return;
    }
    // Bind the recorded arguments — guaranteed in coverage — so symbolic
    // constraints solve against the exact register file the replay will run
    // with.
    let mut regs = vec![0u64; prog.num_slots()];
    let mut bound = vec![false; prog.num_slots()];
    prog.bind_args(&base, &mut regs, &mut bound);
    let mut scratch = EvalScratch::default();
    // The trustlet buffer: large enough for any block template; exactly the
    // recorded size for the camera (whose `buf_size` is itself a parameter).
    let buf_len = base.get("buf_size").map(|v| *v as usize).unwrap_or(0).max(2 << 20);
    let mut replayer = build_rig(dev, &bundle);

    for site in &sites {
        for index in site.cons.bounds() {
            let desc = format!("{name}: {} site at cons[{index}] ({})", site.kind.tag(), site.desc);
            let result = catch_unwind(AssertUnwindSafe(|| match site.kind {
                SiteKind::Param { slot, .. } => run_param_case(
                    &mut replayer,
                    &bundle,
                    &prog,
                    &entry,
                    &base,
                    site.cons,
                    index,
                    slot,
                    &regs,
                    &bound,
                    &mut scratch,
                    buf_len,
                ),
                SiteKind::Read { op, .. } | SiteKind::Poll { op, .. } => {
                    run_response_case(&mut replayer, &name, &entry, &base, op, index, buf_len)
                }
            }));
            let outcome = match result {
                Ok(o) => o,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_string());
                    // The rig may be mid-transaction after a panic; rebuild
                    // it so one bad case cannot poison the rest.
                    replayer = build_rig(dev, &bundle);
                    CaseOutcome::Panicked(msg)
                }
            };
            if tx.send(CaseMsg::Case { desc, outcome }).is_err() {
                return; // the driver gave up on us (deadline)
            }
        }
    }
}

/// A parameter-check case: solve for a violating *invoke argument* and
/// demand a typed `OutOfCoverage` from the real entry point.
#[allow(clippy::too_many_arguments)]
fn run_param_case(
    replayer: &mut Replayer,
    bundle: &Driverlet,
    prog: &dlt_template::ReplayProgram,
    entry: &str,
    base: &HashMap<String, u64>,
    cons: dlt_template::program::OpRange,
    index: usize,
    slot: dlt_template::program::Slot,
    regs: &[u64],
    bound: &[bool],
    scratch: &mut EvalScratch,
    buf_len: usize,
) -> CaseOutcome {
    match prog.solve_violation(cons, index, regs, bound, scratch) {
        Violation::Unfalsifiable => CaseOutcome::Unfalsifiable,
        Violation::Shadowed { .. } => CaseOutcome::Shadowed,
        Violation::Violates { value } => {
            let pname = prog.param_names[slot as usize].clone();
            let mut crafted = base.clone();
            crafted.insert(pname, value);
            // The violating value falsifies *this template's* check, but a
            // sibling template may legitimately cover it (e.g. a different
            // recorded granularity): that is shadowing, not a hole.
            if bundle.select(&crafted).is_some() {
                return CaseOutcome::Shadowed;
            }
            let pairs: Vec<(&str, u64)> = crafted.iter().map(|(k, v)| (k.as_str(), *v)).collect();
            let mut buf = vec![0u8; buf_len];
            match replayer.invoke_args(entry, &pairs, &mut buf) {
                Err(ReplayError::OutOfCoverage { .. }) => CaseOutcome::Confirmed,
                Ok(_) => CaseOutcome::Anomaly {
                    injected: true,
                    msg: "violating arguments replayed successfully".to_string(),
                },
                Err(e) => CaseOutcome::Anomaly {
                    injected: true,
                    msg: format!("expected OutOfCoverage, got: {e}"),
                },
            }
        }
    }
}

/// A device-response case (`Read` op or `Poll` iteration): install a
/// [`ConstraintFlipper`] pinned to exactly this op and `ConsOp`, replay with
/// the recorded arguments, and demand a typed `Diverged`.
fn run_response_case(
    replayer: &mut Replayer,
    name: &str,
    entry: &str,
    base: &HashMap<String, u64>,
    op: usize,
    index: usize,
    buf_len: usize,
) -> CaseOutcome {
    let plan = FaultPlan {
        template: Some(name.to_string()),
        op_index: Some(op),
        cons_index: Some(index),
        skip_invocations: 0,
        sticky: true,
    };
    let (flipper, outcome) = ConstraintFlipper::new(plan);
    replayer.set_response_mutator(Box::new(flipper));
    let pairs: Vec<(&str, u64)> = base.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let mut buf = vec![0u8; buf_len];
    let result = replayer.invoke_args(entry, &pairs, &mut buf);
    replayer.clear_response_mutator();
    let o = outcome.lock().unwrap_or_else(|e| e.into_inner()).clone();
    match result {
        Err(ReplayError::Diverged(_)) if o.mutated_reads > 0 && !o.last_shadowed => {
            CaseOutcome::Confirmed
        }
        Err(ReplayError::Diverged(_)) => CaseOutcome::Anomaly {
            injected: o.mutated_reads > 0,
            msg: "diverged without a non-shadowed mutation".to_string(),
        },
        Ok(_) if o.mutated_reads > 0 && o.last_shadowed => CaseOutcome::Shadowed,
        Ok(_) if o.mutated_reads == 0 && o.unsolved > 0 => CaseOutcome::Unfalsifiable,
        Ok(_) if o.mutated_reads == 0 => CaseOutcome::Anomaly {
            injected: false,
            msg: "mutator never reached the target observation".to_string(),
        },
        Ok(_) => CaseOutcome::Anomaly {
            injected: true,
            msg: "mutated a live constraint yet the replay succeeded".to_string(),
        },
        Err(e) => CaseOutcome::Anomaly {
            injected: o.mutated_reads > 0,
            msg: format!("expected Diverged, got: {e}"),
        },
    }
}

/// Explore every template of one recorded bundle: enumerate, solve, drive,
/// classify. Each template runs on its own worker thread so the driver can
/// enforce the per-case deadline without trusting the replayer to
/// terminate.
pub fn explore_device(dev: ExploreDevice, bundle: &Driverlet) -> DeviceLedger {
    let mut ledger = DeviceLedger::new(dev.name());
    ledger.templates = bundle.templates.len();
    for (i, template) in bundle.templates.iter().enumerate() {
        let tname = template.name.clone();
        let (tx, rx) = mpsc::channel();
        let worker_bundle = bundle.clone();
        let handle = thread::Builder::new()
            .name(format!("explore-{tname}"))
            .spawn(move || template_worker(dev, worker_bundle, i, tx))
            .expect("spawn explore worker");
        let mut expected: Option<usize> = None;
        let mut received = 0usize;
        let mut abandoned = false;
        loop {
            match rx.recv_timeout(CASE_DEADLINE) {
                Ok(CaseMsg::Plan(cases)) => {
                    ledger.constraints_total += cases;
                    expected = Some(cases);
                    if cases == 0 {
                        break;
                    }
                }
                Ok(CaseMsg::Case { desc, outcome }) => {
                    received += 1;
                    match outcome {
                        CaseOutcome::Confirmed => {
                            ledger.flipped += 1;
                            ledger.confirmed_rejected += 1;
                        }
                        CaseOutcome::Shadowed => ledger.shadowed += 1,
                        CaseOutcome::Unfalsifiable => ledger.unfalsifiable += 1,
                        CaseOutcome::Anomaly { injected, msg } => {
                            if injected {
                                ledger.flipped += 1;
                            }
                            ledger.anomalies += 1;
                            ledger.notes.push(format!("{desc}: {msg}"));
                        }
                        CaseOutcome::Panicked(msg) => {
                            ledger.panics += 1;
                            ledger.notes.push(format!("{desc}: panicked: {msg}"));
                        }
                    }
                    if Some(received) == expected {
                        break;
                    }
                }
                Ok(CaseMsg::Fatal(msg)) => {
                    ledger.anomalies += 1;
                    ledger.notes.push(msg);
                    break;
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    ledger.hangs += 1;
                    ledger.notes.push(format!(
                        "{tname}: case deadline ({CASE_DEADLINE:?}) exceeded after {received} cases"
                    ));
                    abandoned = true;
                    break;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    // Worker died outside a case (rig construction etc.).
                    ledger.panics += 1;
                    ledger.notes.push(format!(
                        "{tname}: worker died after {received} cases without reporting"
                    ));
                    abandoned = true;
                    break;
                }
            }
        }
        if !abandoned {
            let _ = handle.join();
        }
        // An abandoned handle leaks a detached thread; the process-level
        // gate already failed, so correctness is preserved.
    }
    ledger
}

/// Per-(request,block) pattern data so stale bytes are detectable.
fn pattern(tag: u64, blocks: usize) -> Vec<u8> {
    let mut data = vec![0u8; blocks * dlt_serve::BLOCK];
    for (i, b) in data.iter_mut().enumerate() {
        *b = ((tag as usize).wrapping_mul(131) ^ i.wrapping_mul(7)) as u8;
    }
    data
}

/// One serve-layer gauntlet case: inject a sticky read fault mid-batch
/// (skipping the first read invocation), assert exactly the faulted reads
/// surface as typed CQ errors, then prove the lane recovered: health probe
/// passes and an untouched session's seeded bytes read back unchanged.
fn run_serve_case(
    device: Device,
    mode: SubmitMode,
    bundle: Driverlet,
    grans: Vec<u32>,
) -> Result<usize, String> {
    let config = ServeConfig {
        submit_mode: mode,
        coalesce: false,
        hold_budget_ns: 0,
        block_granularities: grans,
        ..ServeConfig::default()
    };
    let mut service = DriverletService::with_driverlets(&[(device, bundle)], config)
        .map_err(|e| format!("build service: {e}"))?;
    let untouched = service.open_session().map_err(|e| format!("open session: {e}"))?;
    let victim = service.open_session().map_err(|e| format!("open session: {e}"))?;

    // Seed: the untouched session writes a recognisable pattern.
    let seed = pattern(0xE5, 16);
    service
        .submit(untouched, Request::Write { device, blkid: 300, data: seed.clone() })
        .map_err(|e| format!("seed write: {e}"))?;
    service.drain_all();

    // Mid-batch: the first read invocation passes, every later one is hit.
    let fault = service
        .inject_fault(
            device,
            FaultPlan {
                template: Some("_rd_".to_string()),
                skip_invocations: 1,
                sticky: true,
                ..FaultPlan::default()
            },
        )
        .map_err(|e| format!("inject fault: {e}"))?;
    for i in 0..3u32 {
        service
            .submit(victim, Request::Read { device, blkid: 600 + 8 * i, blkcnt: 8 })
            .map_err(|e| format!("victim submit: {e}"))?;
    }
    let completions = service.drain_all();
    if completions.len() != 3 {
        return Err(format!("expected 3 victim completions, got {}", completions.len()));
    }
    let mut ok = 0usize;
    let mut cq = 0usize;
    for c in &completions {
        match &c.result {
            Ok(_) => ok += 1,
            Err(ServeError::Replay(ReplayError::Diverged(_))) => cq += 1,
            Err(e) => return Err(format!("untyped completion error: {e}")),
        }
        if c.completed_ns < c.submitted_ns {
            return Err(format!("request {} completed before submission", c.id));
        }
    }
    if ok != 1 || cq != 2 {
        return Err(format!(
            "mid-batch fault: expected 1 ok + 2 diverged, got {ok} ok + {cq} diverged"
        ));
    }
    let engaged = fault.lock().map(|o| o.engaged_invocations).unwrap_or(0);
    if engaged < 2 {
        return Err(format!("fault engaged only {engaged} invocations"));
    }

    // Recovery: fault cleared, lane healthy, untouched bytes intact. The
    // structured report must corroborate what this harness observed from
    // the completions: a drained queue, the seed write plus the lone
    // surviving read completed, both divergences counted, and a
    // last-activity stamp proving the probe itself registered.
    service.clear_fault(device).map_err(|e| format!("clear fault: {e}"))?;
    let health = service
        .lane_health_check(device)
        .map_err(|e| format!("lane unhealthy after divergence: {e}"))?;
    if health.device != device {
        return Err(format!("health report for {} from a {device} probe", health.device));
    }
    if health.queued != 0 || health.inflight != 0 {
        return Err(format!(
            "lane not quiescent after drain: {} queued, {} in flight",
            health.queued, health.inflight
        ));
    }
    if health.completed < 2 {
        return Err(format!("health reports {} completions, expected >= 2", health.completed));
    }
    if health.diverged != cq as u64 {
        return Err(format!(
            "health reports {} divergences, the CQ surfaced {cq}",
            health.diverged
        ));
    }
    if health.last_event_host_ns == 0 {
        return Err("health probe left no last-activity stamp".to_string());
    }
    let id = service
        .submit(untouched, Request::Read { device, blkid: 300, blkcnt: 16 })
        .map_err(|e| format!("readback submit: {e}"))?;
    let c = service
        .drain_all()
        .into_iter()
        .find(|c| c.id == id)
        .ok_or_else(|| "missing readback completion".to_string())?;
    match c.result {
        Ok(Payload::Read(bytes)) if bytes == seed => Ok(cq),
        Ok(Payload::Read(_)) => {
            Err("untouched session's bytes changed after divergence".to_string())
        }
        Ok(_) => Err("readback returned a non-read payload".to_string()),
        Err(e) => Err(format!("readback failed: {e}")),
    }
}

/// Run the serve gauntlet over the given bundles: each (device, bundle)
/// pair runs once per submission path, deadline- and panic-wrapped.
pub fn serve_gauntlet(bundles: &[(Device, Driverlet)], grans: &[u32]) -> ServeLedger {
    let mut ledger = ServeLedger::new();
    for (device, bundle) in bundles {
        for mode in [SubmitMode::PerCall, SubmitMode::Ring] {
            ledger.cases += 1;
            let desc = format!("{device} via {mode:?}");
            let (tx, rx) = mpsc::channel();
            let case_bundle = bundle.clone();
            let case_grans = grans.to_vec();
            let dev = *device;
            let handle = thread::Builder::new()
                .name(format!("gauntlet-{desc}"))
                .spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        run_serve_case(dev, mode, case_bundle, case_grans)
                    }));
                    let _ = tx.send(result);
                })
                .expect("spawn gauntlet worker");
            match rx.recv_timeout(SERVE_DEADLINE) {
                Ok(Ok(Ok(cq))) => {
                    ledger.cq_errors += cq;
                    ledger.healthy_lanes += 1;
                    let _ = handle.join();
                }
                Ok(Ok(Err(msg))) => {
                    ledger.anomalies += 1;
                    ledger.notes.push(format!("{desc}: {msg}"));
                    let _ = handle.join();
                }
                Ok(Err(_panic)) => {
                    ledger.panics += 1;
                    ledger.notes.push(format!("{desc}: panicked"));
                    let _ = handle.join();
                }
                Err(_) => {
                    ledger.hangs += 1;
                    ledger.notes.push(format!("{desc}: deadline ({SERVE_DEADLINE:?}) exceeded"));
                }
            }
        }
    }
    ledger
}

/// Run the whole campaign: record the three gold-driver bundles, explore
/// every compiled constraint, then run the serve gauntlet. `quick` trims
/// the recorded granularities/bursts (CI-sized); the full campaign records
/// the paper's complete Table 3 granularity set.
pub fn run_explore(quick: bool) -> ExploreReport {
    let grans: Vec<u32> = if quick { vec![1, 8] } else { vec![1, 8, 32, 128, 256] };
    let bursts: Vec<u32> = if quick { vec![1] } else { vec![1, 10] };

    let mmc = record_mmc_driverlet_subset(&grans).expect("record mmc bundle");
    let usb = record_usb_driverlet_subset(&grans).expect("record usb bundle");
    let cam = record_camera_driverlet_subset(&bursts).expect("record camera bundle");

    let devices = vec![
        explore_device(ExploreDevice::Mmc, &mmc),
        explore_device(ExploreDevice::Usb, &usb),
        explore_device(ExploreDevice::Cam, &cam),
    ];

    let mut gauntlet: Vec<(Device, Driverlet)> = vec![(Device::Mmc, mmc)];
    if !quick {
        gauntlet.push((Device::Usb, usb));
    }
    let serve = serve_gauntlet(&gauntlet, &grans);

    ExploreReport { quick, devices, serve }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_block_mmc_exploration_flips_every_falsifiable_constraint() {
        let bundle = record_mmc_driverlet_subset(&[1]).expect("record mmc");
        let ledger = explore_device(ExploreDevice::Mmc, &bundle);
        assert!(ledger.constraints_total > 0, "mmc programs must expose constraints");
        assert_eq!(
            ledger.flipped,
            ledger.constraints_total - ledger.shadowed - ledger.unfalsifiable,
            "every falsifiable constraint must be flipped; notes: {:?}",
            ledger.notes
        );
        assert_eq!(
            ledger.confirmed_rejected, ledger.flipped,
            "every flip must be rejected typed; notes: {:?}",
            ledger.notes
        );
        assert_eq!(
            ledger.panics + ledger.hangs + ledger.anomalies,
            0,
            "no case may panic, hang or misbehave; notes: {:?}",
            ledger.notes
        );
        assert!(ledger.flipped > 0, "at least one constraint must actually flip");
    }

    #[test]
    fn serve_gauntlet_confirms_typed_cq_errors_and_lane_health() {
        let grans = [1u32, 8];
        let bundle = record_mmc_driverlet_subset(&grans).expect("record mmc");
        let ledger = serve_gauntlet(&[(Device::Mmc, bundle)], &grans);
        assert_eq!(ledger.cases, 2, "per-call and ring paths");
        assert_eq!(
            ledger.healthy_lanes, ledger.cases,
            "every lane must recover; notes: {:?}",
            ledger.notes
        );
        assert_eq!(ledger.cq_errors, 4, "two typed CQ errors per case; notes: {:?}", ledger.notes);
        assert_eq!(ledger.panics + ledger.hangs + ledger.anomalies, 0, "{:?}", ledger.notes);
    }

    #[test]
    fn ledger_json_roundtrips_and_gates() {
        let mut report = ExploreReport {
            quick: true,
            devices: vec![DeviceLedger {
                templates: 2,
                constraints_total: 10,
                flipped: 7,
                confirmed_rejected: 7,
                shadowed: 2,
                unfalsifiable: 1,
                ..DeviceLedger::new("mmc")
            }],
            serve: ServeLedger { cases: 2, cq_errors: 4, healthy_lanes: 2, ..ServeLedger::new() },
        };
        report.gate().expect("a complete ledger passes the gate");
        let parsed = parse_report(&to_json(&report)).expect("roundtrip");
        assert_eq!(parsed.devices[0].flipped, 7);
        parsed.gate().expect("parsed ledger still passes");

        report.devices[0].confirmed_rejected = 6;
        let err = report.gate().expect_err("an unconfirmed flip must fail the gate");
        assert!(err.contains("6 of 7"), "gate names the shortfall: {err}");
        report.devices[0].confirmed_rejected = 7;
        report.serve.healthy_lanes = 1;
        assert!(report.gate().is_err(), "an unhealthy lane must fail the gate");
        assert!(parse_report("not json").is_err(), "malformed ledgers are typed errors");
    }
}
