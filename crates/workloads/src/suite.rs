//! The SQLite-derived benchmark suite (Table 9) and the Figure 5 harness.

use std::collections::HashMap;

use crate::block::{make_storage, BlockDev, StorageKind, StoragePath};
use crate::microdb::MicroDb;

/// The six benchmarks the paper picks from the SQLite test suite "to
/// diversify read/write ratios" (Table 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqliteBenchmark {
    /// Read-only point queries (R:W 10:0).
    Select3,
    /// Mostly reads with occasional deletes (9:1).
    Delete,
    /// Index-style lookups with occasional updates (9:1).
    Idxby,
    /// Mixed IO (8:2).
    Io,
    /// Grouped selects with updates (6:4).
    SelectG,
    /// Insert-heavy (5:5).
    Insert3,
}

impl SqliteBenchmark {
    /// All six benchmarks in the paper's order.
    pub fn all() -> [SqliteBenchmark; 6] {
        [
            SqliteBenchmark::Select3,
            SqliteBenchmark::Delete,
            SqliteBenchmark::Idxby,
            SqliteBenchmark::Io,
            SqliteBenchmark::SelectG,
            SqliteBenchmark::Insert3,
        ]
    }

    /// Benchmark name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            SqliteBenchmark::Select3 => "select3",
            SqliteBenchmark::Delete => "delete",
            SqliteBenchmark::Idxby => "idxby",
            SqliteBenchmark::Io => "io",
            SqliteBenchmark::SelectG => "selectG",
            SqliteBenchmark::Insert3 => "insert3",
        }
    }

    /// Approximate read:write ratio (Table 9's R:W column).
    pub fn rw_ratio(&self) -> (u32, u32) {
        match self {
            SqliteBenchmark::Select3 => (10, 0),
            SqliteBenchmark::Delete => (9, 1),
            SqliteBenchmark::Idxby => (9, 1),
            SqliteBenchmark::Io => (8, 2),
            SqliteBenchmark::SelectG => (6, 4),
            SqliteBenchmark::Insert3 => (5, 5),
        }
    }

    /// Execute one logical query of this benchmark against the database.
    pub fn step<D: BlockDev>(&self, db: &mut MicroDb<D>, i: u64) -> Result<(), String> {
        let key = |j: u64| (i * 31 + j) % 4096;
        let val = i.to_le_bytes();
        let map_err = |e: crate::microdb::DbError| e.to_string();
        let (reads, writes) = self.rw_ratio();
        // Issue `reads` point lookups and `writes` mutations per ten logical
        // steps, interleaved deterministically.
        let slot = i % 10;
        if slot < u64::from(writes) {
            match self {
                SqliteBenchmark::Delete => {
                    db.delete(key(0)).map_err(map_err)?;
                }
                SqliteBenchmark::Insert3
                | SqliteBenchmark::Io
                | SqliteBenchmark::SelectG
                | SqliteBenchmark::Idxby => {
                    db.put(key(0), &val).map_err(map_err)?;
                }
                SqliteBenchmark::Select3 => {}
            }
        }
        for j in 0..u64::from(reads).max(1) / 3 + 1 {
            db.get(key(j)).map_err(map_err)?;
        }
        Ok(())
    }
}

/// Result of one benchmark on one storage configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    /// Which benchmark ran.
    pub benchmark: SqliteBenchmark,
    /// Storage device.
    pub kind: StorageKind,
    /// Execution path.
    pub path: StoragePath,
    /// Logical queries executed.
    pub queries: u64,
    /// Database page IOs issued (reads, writes).
    pub page_io: (u64, u64),
    /// Elapsed virtual time in nanoseconds.
    pub elapsed_ns: u64,
    /// IO operations per second of virtual time (the Figure 5 metric).
    pub iops: f64,
    /// Queries per second of virtual time.
    pub qps: f64,
    /// Driverlet template-invocation breakdown (Table 9), empty for native.
    pub breakdown: HashMap<u32, u64>,
}

/// Run one benchmark for `queries` logical queries on a fresh database over
/// the given storage configuration.
pub fn run_benchmark(
    benchmark: SqliteBenchmark,
    kind: StorageKind,
    path: StoragePath,
    queries: u64,
) -> Result<BenchmarkResult, String> {
    run_benchmark_on(make_storage(kind, path), benchmark, kind, path, queries)
}

/// Run one benchmark on a caller-supplied block device — the hook that
/// lets alternative execution paths (e.g. `dlt-serve`'s session-routed
/// device) reuse the whole Figure-5 suite unchanged.
pub fn run_benchmark_on<D: BlockDev>(
    dev: D,
    benchmark: SqliteBenchmark,
    kind: StorageKind,
    path: StoragePath,
    queries: u64,
) -> Result<BenchmarkResult, String> {
    let mut db = MicroDb::format(dev, 0, 64).map_err(|e| e.to_string())?;
    // Pre-populate so reads hit real records.
    for k in 0..512u64 {
        db.put(k % 4096, &k.to_le_bytes()).map_err(|e| e.to_string())?;
    }
    db.flush().map_err(|e| e.to_string())?;
    let (r0, w0) = db.io_counts();
    let start = db.dev().now_ns();

    for i in 0..queries {
        benchmark.step(&mut db, i)?;
    }
    db.flush().map_err(|e| e.to_string())?;

    let elapsed_ns = db.dev().now_ns() - start;
    let (r1, w1) = db.io_counts();
    let page_io = (r1 - r0, w1 - w0);
    let total_io = page_io.0 + page_io.1;
    let secs = elapsed_ns as f64 / 1e9;
    Ok(BenchmarkResult {
        benchmark,
        kind,
        path,
        queries,
        page_io,
        elapsed_ns,
        iops: total_io as f64 / secs,
        qps: queries as f64 / secs,
        breakdown: db.dev().invocation_breakdown(),
    })
}

/// Run the whole suite (six benchmarks × the given paths) for one device.
/// This regenerates one panel of Figure 5.
pub fn run_sqlite_suite(
    kind: StorageKind,
    paths: &[StoragePath],
    queries: u64,
) -> Result<Vec<BenchmarkResult>, String> {
    let mut out = Vec::new();
    for bench in SqliteBenchmark::all() {
        for &path in paths {
            out.push(run_benchmark(bench, kind, path, queries)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_table9() {
        assert_eq!(SqliteBenchmark::Select3.rw_ratio(), (10, 0));
        assert_eq!(SqliteBenchmark::Insert3.rw_ratio(), (5, 5));
        assert_eq!(SqliteBenchmark::all().len(), 6);
        assert_eq!(SqliteBenchmark::Io.name(), "io");
    }

    #[test]
    fn figure5_shape_native_beats_driverlet_beats_native_sync_on_writes() {
        // A reduced-size run of the insert3 (write-heavy) benchmark on MMC:
        // the paper's ordering is native > driverlet > native-sync.
        let queries = 40;
        let native =
            run_benchmark(SqliteBenchmark::Insert3, StorageKind::Mmc, StoragePath::Native, queries)
                .unwrap();
        let sync = run_benchmark(
            SqliteBenchmark::Insert3,
            StorageKind::Mmc,
            StoragePath::NativeSync,
            queries,
        )
        .unwrap();
        let ours = run_benchmark(
            SqliteBenchmark::Insert3,
            StorageKind::Mmc,
            StoragePath::Driverlet,
            queries,
        )
        .unwrap();
        assert!(
            native.qps > ours.qps,
            "native ({:.0} qps) must beat the driverlet ({:.0} qps)",
            native.qps,
            ours.qps
        );
        assert!(
            ours.qps > sync.qps,
            "the driverlet ({:.0} qps) must beat native-sync ({:.0} qps)",
            ours.qps,
            sync.qps
        );
        assert!(!ours.breakdown.is_empty(), "driverlet runs report a template breakdown");
        assert!(native.breakdown.is_empty());
    }

    #[test]
    fn driverlets_are_slower_than_native_across_the_read_write_spectrum() {
        // Figure 5's calibrated sign: the driverlet path is slower than
        // native on *every* benchmark (paper: 1.8x on average for MMC).
        // Native reads ride the kernel page cache and native writes are
        // queued behind write-behind — both benefits the in-TEE replayer
        // forgoes (§8.3.2) — so the overhead is largest on the read-heavy
        // end and the average lands near the paper's headline number.
        let queries = 30;
        let mut overheads = Vec::new();
        for bench in [SqliteBenchmark::Select3, SqliteBenchmark::Insert3] {
            let native =
                run_benchmark(bench, StorageKind::Mmc, StoragePath::Native, queries).unwrap();
            let ours =
                run_benchmark(bench, StorageKind::Mmc, StoragePath::Driverlet, queries).unwrap();
            let overhead = native.qps / ours.qps;
            assert!(
                overhead > 1.0,
                "{}: driverlet ({:.0} qps) must be slower than native ({:.0} qps)",
                bench.name(),
                ours.qps,
                native.qps
            );
            overheads.push(overhead);
        }
        let avg = overheads.iter().sum::<f64>() / overheads.len() as f64;
        assert!(
            (1.2..=2.6).contains(&avg),
            "average driverlet slowdown {avg:.2}x strayed from the paper's 1.8x ballpark"
        );
    }
}
