//! SDHOST host-controller driver (the `bcm2835-sdhost` analogue).
//!
//! This is the driver the record campaign exercises: `do_io` is the record
//! entry (`replay_mmc` in the paper's terms). It implements:
//!
//! * full card initialisation (CMD0/8/55+ACMD41/2/3/9/7/55+ACMD6/16),
//! * command issue with the standard `readl_poll` completion loop,
//! * a DMA data path that chains one control block and one 4 KiB page per
//!   eight blocks (Figure 4), uses CMD23 on the read path only, and fetches
//!   the last three words of every read by PIO (the SoC quirk of §7.1.3),
//! * a PIO (`O_DIRECT`) data path with an ad-hoc status polling loop,
//! * periodic bus re-tuning (disabled in record mode, §3.2).

use dlt_dev_mmc::card::cmd;
use dlt_dev_mmc::regs::{self, dmacb, dmacs, dmareg, dmati, sdcmd, sdhcfg, sdhsts};
use dlt_dev_mmc::{BLOCK_SIZE, DMA_BASE, SDHOST_BASE, SDHOST_DATA_BUS_ADDR};
use dlt_hw::irq::lines;
use dlt_hw::DmaRegion;

use crate::kenv::{DriverError, HwIo, IoFlags, Rw};

/// Blocks carried by one DMA descriptor / data page.
pub const BLOCKS_PER_PAGE: u32 = 8;
/// Bytes the DMA engine cannot move at the end of a read (the quirk).
pub const READ_TAIL_BYTES: usize = 12;
/// Bus re-tune period in nanoseconds (1 second, the Linux default).
const RETUNE_PERIOD_NS: u64 = 1_000_000_000;

const fn reg(offset: u64) -> u64 {
    SDHOST_BASE + offset
}

const fn dmareg_addr(offset: u64) -> u64 {
    DMA_BASE + offset
}

/// Cumulative statistics, used by tests and the Table 8 effort analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostStats {
    /// Commands issued to the card.
    pub commands: u64,
    /// DMA transfers performed.
    pub dma_transfers: u64,
    /// PIO transfers performed.
    pub pio_transfers: u64,
    /// Bus re-tune operations.
    pub retunes: u64,
    /// Requests that failed and were retried by the error-recovery FSM.
    pub recoveries: u64,
}

/// The SDHOST host-controller driver.
pub struct MmcHost<I: HwIo> {
    io: I,
    initialized: bool,
    rca: u32,
    record_mode: bool,
    last_tune_ns: u64,
    stats: HostStats,
}

impl<I: HwIo> MmcHost<I> {
    /// Wrap an IO environment. The card is not initialised until
    /// [`MmcHost::probe`] runs.
    pub fn new(io: I) -> Self {
        MmcHost {
            io,
            initialized: false,
            rca: 0,
            record_mode: false,
            last_tune_ns: 0,
            stats: HostStats::default(),
        }
    }

    /// Enable record mode: constrains the device state space by disabling
    /// periodic re-tuning and other background behaviours (§3.2).
    pub fn set_record_mode(&mut self, on: bool) {
        self.record_mode = on;
    }

    /// Driver statistics.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// Access the underlying IO environment (used by the block layer to
    /// charge kernel-path costs and by tests).
    pub fn io_mut(&mut self) -> &mut I {
        &mut self.io
    }

    /// Consume the host and return the IO environment.
    pub fn into_io(self) -> I {
        self.io
    }

    /// Whether probe has completed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    fn send_command(&mut self, index: u8, arg: u32, flags: u32) -> Result<u32, DriverError> {
        self.stats.commands += 1;
        self.io.writel(reg(regs::SDARG), arg);
        self.io.writel(reg(regs::SDCMD), sdcmd::NEW_FLAG | flags | u32::from(index));
        // Standard polling loop: wait for NEW_FLAG to clear.
        self.io.readl_poll(reg(regs::SDCMD), sdcmd::NEW_FLAG, 0, 10, 500_000)?;
        let cmdreg = self.io.readl(reg(regs::SDCMD));
        if cmdreg & sdcmd::FAIL_FLAG != 0 {
            let sts = self.io.readl(reg(regs::SDHSTS));
            self.io.writel(reg(regs::SDHSTS), sts & sdhsts::ERROR_MASK);
            return Err(DriverError::Device(format!(
                "CMD{index} failed, SDHSTS={sts:#x} (cmd timeout: {})",
                sts & sdhsts::CMD_TIME_OUT != 0
            )));
        }
        Ok(self.io.readl(reg(regs::SDRSP0)))
    }

    fn send_app_command(&mut self, index: u8, arg: u32, flags: u32) -> Result<u32, DriverError> {
        self.send_command(cmd::APP_CMD, self.rca << 16, 0)?;
        self.send_command(index, arg, flags)
    }

    /// Power up the controller and run the full card-initialisation sequence.
    pub fn probe(&mut self) -> Result<(), DriverError> {
        // Controller bring-up.
        self.io.writel(reg(regs::SDVDD), 1);
        self.io.writel(reg(regs::SDCDIV), 0x148);
        self.io.writel(reg(regs::SDTOUT), 0x00f0_0000);
        self.io.writel(
            reg(regs::SDHCFG),
            sdhcfg::BLOCK_IRPT_EN | sdhcfg::BUSY_IRPT_EN | sdhcfg::SLOW_CARD,
        );
        self.io.writel(reg(regs::SDHBCT), BLOCK_SIZE as u32);
        self.io.delay_us(100);

        // Card identification.
        self.send_command(cmd::GO_IDLE, 0, sdcmd::NO_RESPONSE)?;
        self.send_command(cmd::SEND_IF_COND, 0x1aa, 0)?;
        let mut ready = false;
        for _ in 0..5 {
            let ocr = self.send_app_command(cmd::ACMD_SEND_OP_COND, 0x4000_0000, 0)?;
            if ocr & 0x8000_0000 != 0 {
                ready = true;
                break;
            }
            self.io.delay_us(1_000);
        }
        if !ready {
            return Err(DriverError::Device("card never reported power-up".into()));
        }
        self.send_command(cmd::ALL_SEND_CID, 0, sdcmd::LONG_RESPONSE)?;
        let r6 = self.send_command(cmd::SEND_RELATIVE_ADDR, 0, 0)?;
        self.rca = r6 >> 16;
        self.send_command(cmd::SEND_CSD, self.rca << 16, sdcmd::LONG_RESPONSE)?;
        self.send_command(cmd::SELECT_CARD, self.rca << 16, sdcmd::BUSYWAIT)?;
        // 4-bit bus.
        self.send_app_command(cmd::ACMD_SET_BUS_WIDTH, 2, 0)?;
        let cfg = self.io.readl(reg(regs::SDHCFG));
        self.io.writel(
            reg(regs::SDHCFG),
            (cfg | sdhcfg::WIDE_EXT_BUS | sdhcfg::WIDE_INT_BUS) & !sdhcfg::SLOW_CARD,
        );
        self.io.writel(reg(regs::SDCDIV), 0x4);
        self.send_command(cmd::SET_BLOCKLEN, BLOCK_SIZE as u32, 0)?;
        self.initialized = true;
        self.last_tune_ns = self.io.get_ts();
        Ok(())
    }

    /// Periodic bus tuning: the full driver "tunes bus parameters
    /// periodically (by default every second)" (§2.2). Skipped in record
    /// mode.
    fn maybe_retune(&mut self) {
        if self.record_mode {
            return;
        }
        let now = self.io.get_ts();
        if now.saturating_sub(self.last_tune_ns) >= RETUNE_PERIOD_NS {
            self.last_tune_ns = now;
            self.stats.retunes += 1;
            // Probe the bus with a status command and nudge the divider.
            let div = self.io.readl(reg(regs::SDCDIV));
            let _ = self.send_command(cmd::SEND_STATUS, self.rca << 16, 0);
            self.io.writel(reg(regs::SDCDIV), div);
        }
    }

    /// The record entry: perform one block IO job (the paper's
    /// `replay_mmc(rw, blkcnt, blkid, flag, buf)` signature).
    pub fn do_io(
        &mut self,
        rw: Rw,
        blkcnt: u32,
        blkid: u32,
        flags: IoFlags,
        buf: &mut [u8],
    ) -> Result<(), DriverError> {
        if !self.initialized {
            return Err(DriverError::Invalid("probe has not run".into()));
        }
        if blkcnt == 0 || blkcnt > 1024 {
            return Err(DriverError::Invalid(format!("unsupported block count {blkcnt}")));
        }
        let total = blkcnt as usize * BLOCK_SIZE;
        if buf.len() < total {
            return Err(DriverError::Invalid("buffer smaller than the request".into()));
        }
        self.maybe_retune();
        // (Re)program the controller configuration for this request. The Linux
        // driver performs an equivalent set_ios on every request; recording it
        // makes each template self-contained, so the replayer's soft reset
        // (which clears the host configuration) is sufficient preparation.
        self.io.writel(reg(regs::SDVDD), 1);
        self.io.writel(reg(regs::SDCDIV), 0x4);
        self.io.writel(reg(regs::SDTOUT), 0x00f0_0000);
        self.io.writel(
            reg(regs::SDHCFG),
            sdhcfg::BLOCK_IRPT_EN
                | sdhcfg::BUSY_IRPT_EN
                | sdhcfg::WIDE_EXT_BUS
                | sdhcfg::WIDE_INT_BUS,
        );

        let result = if flags.direct {
            self.stats.pio_transfers += 1;
            match rw {
                Rw::Read => self.pio_read(blkcnt, blkid, &mut buf[..total]),
                Rw::Write => self.pio_write(blkcnt, blkid, &buf[..total]),
            }
        } else {
            self.stats.dma_transfers += 1;
            match rw {
                Rw::Read => self.dma_read(blkcnt, blkid, &mut buf[..total]),
                Rw::Write => self.dma_write(blkcnt, blkid, &buf[..total]),
            }
        };

        if result.is_err() {
            // Error-recovery FSM: clear status, stop any open transmission and
            // retry once — the corner-case handling a full driver carries.
            self.stats.recoveries += 1;
            let sts = self.io.readl(reg(regs::SDHSTS));
            self.io.writel(reg(regs::SDHSTS), sts);
            let _ = self.send_command(cmd::STOP_TRANSMISSION, 0, sdcmd::BUSYWAIT);
        }
        self.io.dma_release_all();
        result
    }

    fn configure_block_counts(&mut self, blkcnt: u32) {
        self.io.writel(reg(regs::SDHBCT), BLOCK_SIZE as u32);
        self.io.writel(reg(regs::SDHBLC), blkcnt);
    }

    /// Build the Figure-4 descriptor chain: one control block and one 4 KiB
    /// page per [`BLOCKS_PER_PAGE`] blocks. Returns (descriptors, pages).
    fn build_dma_chain(
        &mut self,
        blkcnt: u32,
        to_device: bool,
    ) -> Result<(Vec<DmaRegion>, Vec<DmaRegion>), DriverError> {
        let total = blkcnt as usize * BLOCK_SIZE;
        let pages = blkcnt.div_ceil(BLOCKS_PER_PAGE) as usize;
        let mut descs = Vec::with_capacity(pages);
        let mut data_pages = Vec::with_capacity(pages);
        for _ in 0..pages {
            descs.push(self.io.dma_alloc(dmacb::SIZE)?);
            data_pages.push(self.io.dma_alloc(4096)?);
        }
        let dma_total = if to_device { total } else { total - READ_TAIL_BYTES };
        let mut remaining = dma_total;
        for i in 0..pages {
            let chunk = remaining.min(4096);
            remaining -= chunk;
            let last = i == pages - 1;
            let ti = if to_device {
                dmati::DEST_DREQ | dmati::SRC_INC | dmati::WAIT_RESP | dmati::PERMAP_SDHOST
            } else {
                dmati::SRC_DREQ | dmati::DEST_INC | dmati::WAIT_RESP | dmati::PERMAP_SDHOST
            } | if last { dmati::INTEN } else { 0 };
            let (src, dst) = if to_device {
                (data_pages[i].base as u32, SDHOST_DATA_BUS_ADDR as u32)
            } else {
                (SDHOST_DATA_BUS_ADDR as u32, data_pages[i].base as u32)
            };
            let next = if last { 0 } else { descs[i + 1].base as u32 };
            self.io.shm_write32(descs[i], dmacb::TI, ti);
            self.io.shm_write32(descs[i], dmacb::SOURCE_AD, src);
            self.io.shm_write32(descs[i], dmacb::DEST_AD, dst);
            self.io.shm_write32(descs[i], dmacb::TXFR_LEN, chunk as u32);
            self.io.shm_write32(descs[i], dmacb::STRIDE, 0);
            self.io.shm_write32(descs[i], dmacb::NEXTCONBK, next);
        }
        Ok((descs, data_pages))
    }

    fn kick_dma(&mut self, head: DmaRegion) {
        self.io.writel(dmareg_addr(dmareg::CS), dmacs::END | dmacs::INT);
        self.io.writel(dmareg_addr(dmareg::CONBLK_AD), head.base as u32);
        self.io.writel(dmareg_addr(dmareg::CS), dmacs::ACTIVE);
    }

    fn wait_dma_done(&mut self) -> Result<(), DriverError> {
        self.io.readl_poll(dmareg_addr(dmareg::CS), dmacs::END, dmacs::END, 10, 1_000_000)?;
        let cs = self.io.readl(dmareg_addr(dmareg::CS));
        self.io.writel(dmareg_addr(dmareg::CS), dmacs::END | dmacs::INT);
        if cs & dmacs::ERROR != 0 {
            return Err(DriverError::Device("DMA engine reported an error".into()));
        }
        Ok(())
    }

    fn enable_dma_mode(&mut self, on: bool) {
        let cfg = self.io.readl(reg(regs::SDHCFG));
        let cfg = if on { cfg | sdhcfg::DMA_EN } else { cfg & !sdhcfg::DMA_EN };
        self.io.writel(reg(regs::SDHCFG), cfg);
    }

    fn wait_transfer_irq(&mut self, expect: u32) -> Result<(), DriverError> {
        self.io.wait_for_irq(lines::MMC, 2_000_000)?;
        let sts = self.io.readl(reg(regs::SDHSTS));
        if sts & sdhsts::ERROR_MASK != 0 {
            self.io.writel(reg(regs::SDHSTS), sts);
            return Err(DriverError::Device(format!("transfer error, SDHSTS={sts:#x}")));
        }
        if sts & expect == 0 {
            return Err(DriverError::Device(format!(
                "unexpected SDHSTS={sts:#x}, wanted {expect:#x}"
            )));
        }
        self.io.writel(reg(regs::SDHSTS), expect | sdhsts::DATA_FLAG);
        Ok(())
    }

    fn dma_read(&mut self, blkcnt: u32, blkid: u32, buf: &mut [u8]) -> Result<(), DriverError> {
        let total = blkcnt as usize * BLOCK_SIZE;
        let (descs, pages) = self.build_dma_chain(blkcnt, false)?;
        self.configure_block_counts(blkcnt);
        self.enable_dma_mode(true);
        self.kick_dma(descs[0]);
        // CMD23 (set block count) is used on the read path only (§7.1.3).
        if blkcnt > 1 {
            self.send_command(cmd::SET_BLOCK_COUNT, blkcnt, 0)?;
            self.send_command(cmd::READ_MULTIPLE, blkid, sdcmd::READ_CMD)?;
        } else {
            self.send_command(cmd::READ_SINGLE, blkid, sdcmd::READ_CMD)?;
        }
        self.wait_transfer_irq(sdhsts::BLOCK_IRPT)?;
        self.wait_dma_done()?;
        // The DMA engine cannot move the final three words; fetch them from
        // the FIFO by PIO (the undocumented SoC quirk, §7.1.3).
        let dma_bytes = total - READ_TAIL_BYTES;
        for w in 0..READ_TAIL_BYTES / 4 {
            let word = self.io.readl(reg(regs::SDDATA));
            buf[dma_bytes + w * 4..dma_bytes + w * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        // Copy the DMA'd portion out of the data pages.
        let mut copied = 0usize;
        for page in &pages {
            if copied >= dma_bytes {
                break;
            }
            let chunk = (dma_bytes - copied).min(4096);
            self.io.copy_from_dma(*page, 0, &mut buf[copied..copied + chunk]);
            copied += chunk;
        }
        self.enable_dma_mode(false);
        Ok(())
    }

    fn dma_write(&mut self, blkcnt: u32, blkid: u32, buf: &[u8]) -> Result<(), DriverError> {
        let total = blkcnt as usize * BLOCK_SIZE;
        let (descs, pages) = self.build_dma_chain(blkcnt, true)?;
        // Stage the payload into the DMA pages.
        let mut copied = 0usize;
        for page in &pages {
            if copied >= total {
                break;
            }
            let chunk = (total - copied).min(4096);
            self.io.copy_to_dma(*page, 0, &buf[copied..copied + chunk]);
            copied += chunk;
        }
        self.configure_block_counts(blkcnt);
        self.enable_dma_mode(true);
        // No CMD23 on the write path (§7.1.3). The command opens the card's
        // receive window; only then is the DMA engine kicked, mirroring the
        // DREQ-gated ordering of the real controller.
        if blkcnt > 1 {
            self.send_command(cmd::WRITE_MULTIPLE, blkid, sdcmd::WRITE_CMD | sdcmd::BUSYWAIT)?;
        } else {
            self.send_command(cmd::WRITE_SINGLE, blkid, sdcmd::WRITE_CMD | sdcmd::BUSYWAIT)?;
        }
        self.kick_dma(descs[0]);
        self.wait_transfer_irq(sdhsts::BUSY_IRPT)?;
        self.wait_dma_done()?;
        self.enable_dma_mode(false);
        Ok(())
    }

    fn pio_read(&mut self, blkcnt: u32, blkid: u32, buf: &mut [u8]) -> Result<(), DriverError> {
        self.configure_block_counts(blkcnt);
        self.enable_dma_mode(false);
        if blkcnt > 1 {
            self.send_command(cmd::READ_MULTIPLE, blkid, sdcmd::READ_CMD)?;
        } else {
            self.send_command(cmd::READ_SINGLE, blkid, sdcmd::READ_CMD)?;
        }
        // Ad-hoc polling loop (a "short while loop" in the original driver):
        // wait for the FIFO to signal readable data.
        let mut spins = 0u32;
        while self.io.readl(reg(regs::SDHSTS)) & sdhsts::DATA_FLAG == 0 {
            self.io.delay_us(10);
            spins += 1;
            if spins > 1_000_000 {
                return Err(DriverError::Timeout("PIO read data flag".into()));
            }
        }
        for w in 0..buf.len() / 4 {
            let word = self.io.readl(reg(regs::SDDATA));
            buf[w * 4..w * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        let sts = self.io.readl(reg(regs::SDHSTS));
        self.io.writel(reg(regs::SDHSTS), sts & (sdhsts::BLOCK_IRPT | sdhsts::DATA_FLAG));
        Ok(())
    }

    fn pio_write(&mut self, blkcnt: u32, blkid: u32, buf: &[u8]) -> Result<(), DriverError> {
        self.configure_block_counts(blkcnt);
        self.enable_dma_mode(false);
        if blkcnt > 1 {
            self.send_command(cmd::WRITE_MULTIPLE, blkid, sdcmd::WRITE_CMD | sdcmd::BUSYWAIT)?;
        } else {
            self.send_command(cmd::WRITE_SINGLE, blkid, sdcmd::WRITE_CMD | sdcmd::BUSYWAIT)?;
        }
        for w in 0..buf.len() / 4 {
            let word =
                u32::from_le_bytes([buf[w * 4], buf[w * 4 + 1], buf[w * 4 + 2], buf[w * 4 + 3]]);
            self.io.writel(reg(regs::SDDATA), word);
        }
        self.wait_transfer_irq(sdhsts::BUSY_IRPT)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kenv::BusIo;
    use dlt_dev_mmc::MmcSubsystem;
    use dlt_hw::{Platform, Shared};

    fn rig() -> (Platform, dlt_dev_mmc::MmcSubsystem, MmcHost<BusIo>) {
        let p = Platform::new();
        let sys = MmcSubsystem::attach(&p).unwrap();
        let io = BusIo::normal_world(p.bus.clone(), DmaRegion::new(0x200_0000, 0x100_0000));
        let mut host = MmcHost::new(io);
        host.probe().unwrap();
        (p, sys, host)
    }

    fn card_blocks(sys: &dlt_dev_mmc::MmcSubsystem, lba: u64, n: usize) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            out.extend_from_slice(&sys.sdhost.lock().card().peek_block(lba + i as u64));
        }
        out
    }

    fn sys_sdhost(sys: &dlt_dev_mmc::MmcSubsystem) -> Shared<dlt_dev_mmc::SdHost> {
        sys.sdhost.clone()
    }

    #[test]
    fn probe_initialises_the_card() {
        let (_p, sys, host) = rig();
        assert!(host.is_initialized());
        assert!(host.stats().commands >= 10);
        assert!(sys.sdhost.lock().commands_issued() >= 10);
    }

    #[test]
    fn dma_write_then_read_round_trip_multiple_sizes() {
        let (_p, sys, mut host) = rig();
        host.set_record_mode(true);
        for &blkcnt in &[1u32, 8, 32] {
            let total = blkcnt as usize * BLOCK_SIZE;
            let payload: Vec<u8> =
                (0..total).map(|i| ((i * 7 + blkcnt as usize) % 251) as u8).collect();
            let mut buf = payload.clone();
            host.do_io(Rw::Write, blkcnt, 100, IoFlags::none(), &mut buf).unwrap();
            assert_eq!(card_blocks(&sys, 100, blkcnt as usize), payload, "blkcnt={blkcnt}");
            let mut back = vec![0u8; total];
            host.do_io(Rw::Read, blkcnt, 100, IoFlags::none(), &mut back).unwrap();
            assert_eq!(back, payload, "blkcnt={blkcnt}");
        }
        assert!(host.stats().dma_transfers >= 6);
    }

    #[test]
    fn pio_path_round_trip() {
        let (_p, _sys, mut host) = rig();
        let payload: Vec<u8> = (0..BLOCK_SIZE).map(|i| (i % 199) as u8).collect();
        let mut buf = payload.clone();
        host.do_io(Rw::Write, 1, 7, IoFlags::direct(), &mut buf).unwrap();
        let mut back = vec![0u8; BLOCK_SIZE];
        host.do_io(Rw::Read, 1, 7, IoFlags::direct(), &mut back).unwrap();
        assert_eq!(back, payload);
        assert!(host.stats().pio_transfers == 2);
    }

    #[test]
    fn read_of_unwritten_blocks_is_zero() {
        let (_p, _sys, mut host) = rig();
        let mut buf = vec![0xaau8; 4 * BLOCK_SIZE];
        host.do_io(Rw::Read, 4, 5000, IoFlags::none(), &mut buf).unwrap();
        assert!(buf.iter().all(|b| *b == 0));
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let (_p, _sys, mut host) = rig();
        let mut buf = vec![0u8; 512];
        assert!(matches!(
            host.do_io(Rw::Read, 0, 0, IoFlags::none(), &mut buf),
            Err(DriverError::Invalid(_))
        ));
        assert!(matches!(
            host.do_io(Rw::Read, 4, 0, IoFlags::none(), &mut buf),
            Err(DriverError::Invalid(_))
        ));
        let mut small = vec![0u8; 16];
        assert!(host.do_io(Rw::Read, 1, 0, IoFlags::none(), &mut small).is_err());
    }

    #[test]
    fn card_removal_surfaces_as_a_device_error_and_recovery_attempt() {
        let (_p, sys, mut host) = rig();
        sys_sdhost(&sys).lock().card_mut().remove();
        let mut buf = vec![0u8; 512];
        let err = host.do_io(Rw::Read, 1, 0, IoFlags::none(), &mut buf).unwrap_err();
        assert!(matches!(err, DriverError::Device(_) | DriverError::Timeout(_)));
        assert!(host.stats().recoveries >= 1);
    }

    #[test]
    fn retune_runs_outside_record_mode_only() {
        let (p, _sys, mut host) = rig();
        host.set_record_mode(true);
        p.clock.lock().advance_ns(2 * RETUNE_PERIOD_NS);
        let mut buf = vec![0u8; 512];
        host.do_io(Rw::Read, 1, 0, IoFlags::none(), &mut buf).unwrap();
        assert_eq!(host.stats().retunes, 0);
        host.set_record_mode(false);
        p.clock.lock().advance_ns(2 * RETUNE_PERIOD_NS);
        host.do_io(Rw::Read, 1, 0, IoFlags::none(), &mut buf).unwrap();
        assert_eq!(host.stats().retunes, 1);
    }

    #[test]
    fn large_transfers_use_one_descriptor_pair_per_eight_blocks() {
        let (_p, sys, mut host) = rig();
        let mut buf = vec![0u8; 256 * BLOCK_SIZE];
        host.do_io(Rw::Read, 256, 0, IoFlags::none(), &mut buf).unwrap();
        // 256 blocks -> 32 pages -> 32 control blocks chained on the engine.
        assert!(sys.dma.lock().chains_executed() >= 1);
        assert!(sys.dma.lock().bytes_transferred() >= (256 * BLOCK_SIZE - READ_TAIL_BYTES) as u64);
    }
}
