//! Register layout and bit definitions for the SDHOST controller and the
//! system DMA engine channel used by the MMC path.
//!
//! The layout follows the BCM2835 SDHOST block (`bcm2835-sdhost.c` in the
//! Raspberry Pi kernel tree) closely enough that the recorded templates have
//! the same register vocabulary the paper reports in §7.1 (SDCMD, SDARG,
//! SDHBLC, SDDATA, SDEDM, ...), while remaining a simulation-only model.

/// SDCMD — command register (also carries the NEW/FAIL flags).
pub const SDCMD: u64 = 0x00;
/// SDARG — 32-bit command argument.
pub const SDARG: u64 = 0x04;
/// SDTOUT — data timeout in core clocks.
pub const SDTOUT: u64 = 0x08;
/// SDCDIV — clock divider.
pub const SDCDIV: u64 = 0x0c;
/// SDRSP0 — response word 0.
pub const SDRSP0: u64 = 0x10;
/// SDRSP1 — response word 1.
pub const SDRSP1: u64 = 0x14;
/// SDRSP2 — response word 2.
pub const SDRSP2: u64 = 0x18;
/// SDRSP3 — response word 3.
pub const SDRSP3: u64 = 0x1c;
/// SDHSTS — host status (write-1-to-clear).
pub const SDHSTS: u64 = 0x20;
/// SDVDD — card power control.
pub const SDVDD: u64 = 0x30;
/// SDEDM — "emergency debug mode": FSM state and FIFO occupancy.
pub const SDEDM: u64 = 0x34;
/// SDHCFG — host configuration (IRQ enables, wide bus, DMA enable).
pub const SDHCFG: u64 = 0x38;
/// SDHBCT — block size in bytes.
pub const SDHBCT: u64 = 0x3c;
/// SDDATA — data FIFO port.
pub const SDDATA: u64 = 0x40;
/// SDHBLC — block count for the next data command.
pub const SDHBLC: u64 = 0x50;

// Additional architected registers (not normally touched by the data path;
// they exist so the "total registers" population for the Table 7 analysis is
// realistic and so record campaigns can show untouched registers).

/// SDARG1 — alternate argument (reserved on this SoC).
pub const SDARG1: u64 = 0x54;
/// SDDBG0 — debug scratch 0.
pub const SDDBG0: u64 = 0x58;
/// SDDBG1 — debug scratch 1.
pub const SDDBG1: u64 = 0x5c;
/// SDFIFOCFG — FIFO thresholds.
pub const SDFIFOCFG: u64 = 0x60;
/// SDCRC — last CRC seen on the bus.
pub const SDCRC: u64 = 0x64;
/// SDPWR — power state latch.
pub const SDPWR: u64 = 0x68;
/// SDCLKSTP — clock-stop control.
pub const SDCLKSTP: u64 = 0x6c;
/// SDVER — hardware version.
pub const SDVER: u64 = 0x70;
/// SDBUSCFG — bus drive strength / slew.
pub const SDBUSCFG: u64 = 0x74;

/// All architected SDHOST register offsets with their names.
pub const SDHOST_REGISTERS: &[(u64, &str)] = &[
    (SDCMD, "SDCMD"),
    (SDARG, "SDARG"),
    (SDTOUT, "SDTOUT"),
    (SDCDIV, "SDCDIV"),
    (SDRSP0, "SDRSP0"),
    (SDRSP1, "SDRSP1"),
    (SDRSP2, "SDRSP2"),
    (SDRSP3, "SDRSP3"),
    (SDHSTS, "SDHSTS"),
    (SDVDD, "SDVDD"),
    (SDEDM, "SDEDM"),
    (SDHCFG, "SDHCFG"),
    (SDHBCT, "SDHBCT"),
    (SDDATA, "SDDATA"),
    (SDHBLC, "SDHBLC"),
    (SDARG1, "SDARG1"),
    (SDDBG0, "SDDBG0"),
    (SDDBG1, "SDDBG1"),
    (SDFIFOCFG, "SDFIFOCFG"),
    (SDCRC, "SDCRC"),
    (SDPWR, "SDPWR"),
    (SDCLKSTP, "SDCLKSTP"),
    (SDVER, "SDVER"),
    (SDBUSCFG, "SDBUSCFG"),
];

/// SDCMD bits.
pub mod sdcmd {
    /// Start executing the command written to the index field.
    pub const NEW_FLAG: u32 = 0x8000;
    /// The previous command failed.
    pub const FAIL_FLAG: u32 = 0x4000;
    /// Wait for the card to leave the busy state after the command.
    pub const BUSYWAIT: u32 = 0x0800;
    /// The command carries no response.
    pub const NO_RESPONSE: u32 = 0x0400;
    /// The command carries a long (136-bit) response.
    pub const LONG_RESPONSE: u32 = 0x0200;
    /// The command writes data to the card.
    pub const WRITE_CMD: u32 = 0x0080;
    /// The command reads data from the card.
    pub const READ_CMD: u32 = 0x0040;
    /// Mask of the command index field.
    pub const INDEX_MASK: u32 = 0x003f;
}

/// SDHSTS bits (write 1 to clear).
pub mod sdhsts {
    /// Data flag: the FIFO holds readable data / accepts writable data.
    pub const DATA_FLAG: u32 = 0x01;
    /// FIFO error (overrun/underrun).
    pub const FIFO_ERROR: u32 = 0x08;
    /// CRC7 error on the command line.
    pub const CRC7_ERROR: u32 = 0x10;
    /// CRC16 error on the data lines.
    pub const CRC16_ERROR: u32 = 0x20;
    /// Command timeout (no response from the card).
    pub const CMD_TIME_OUT: u32 = 0x40;
    /// Read/erase/write timeout.
    pub const REW_TIME_OUT: u32 = 0x80;
    /// SDIO interrupt from the card.
    pub const SDIO_IRPT: u32 = 0x100;
    /// Block transfer complete.
    pub const BLOCK_IRPT: u32 = 0x200;
    /// Busy de-asserted after a write/erase.
    pub const BUSY_IRPT: u32 = 0x400;
    /// All error bits.
    pub const ERROR_MASK: u32 = FIFO_ERROR | CRC7_ERROR | CRC16_ERROR | CMD_TIME_OUT | REW_TIME_OUT;
}

/// SDHCFG bits.
pub mod sdhcfg {
    /// Release the command line between commands.
    pub const REL_CMD_LINE: u32 = 0x01;
    /// Generate an interrupt on BUSY_IRPT.
    pub const BUSY_IRPT_EN: u32 = 0x02;
    /// Generate an interrupt on BLOCK_IRPT.
    pub const BLOCK_IRPT_EN: u32 = 0x04;
    /// Generate an interrupt on SDIO_IRPT.
    pub const SDIO_IRPT_EN: u32 = 0x08;
    /// Card clock runs slow (identification mode).
    pub const SLOW_CARD: u32 = 0x10;
    /// Use the 4-bit bus width (external pads).
    pub const WIDE_EXT_BUS: u32 = 0x100;
    /// Use the 4-bit bus width (internal mux).
    pub const WIDE_INT_BUS: u32 = 0x200;
    /// Route data movement through the system DMA engine.
    pub const DMA_EN: u32 = 0x400;
}

/// SDEDM fields.
pub mod sdedm {
    /// FSM state field mask (bits 0..3).
    pub const FSM_MASK: u32 = 0xf;
    /// FSM: identification mode.
    pub const FSM_IDENTMODE: u32 = 0x0;
    /// FSM: data mode, idle.
    pub const FSM_DATAMODE: u32 = 0x1;
    /// FSM: reading data.
    pub const FSM_READDATA: u32 = 0x2;
    /// FSM: writing data.
    pub const FSM_WRITEDATA: u32 = 0x3;
    /// FSM: waiting for write-busy to end.
    pub const FSM_WRITEWAIT1: u32 = 0xa;
    /// Shift of the FIFO word count field.
    pub const FIFO_LEVEL_SHIFT: u32 = 4;
    /// Width mask of the FIFO word count field.
    pub const FIFO_LEVEL_MASK: u32 = 0x1f;
}

/// DMA engine (one channel) register offsets.
pub mod dmareg {
    /// CS — control and status.
    pub const CS: u64 = 0x00;
    /// CONBLK_AD — physical address of the first control block.
    pub const CONBLK_AD: u64 = 0x04;
    /// TI — transfer information of the active control block (read-only copy).
    pub const TI: u64 = 0x08;
    /// SOURCE_AD — source address of the active control block.
    pub const SOURCE_AD: u64 = 0x0c;
    /// DEST_AD — destination address of the active control block.
    pub const DEST_AD: u64 = 0x10;
    /// TXFR_LEN — remaining transfer length.
    pub const TXFR_LEN: u64 = 0x14;
    /// NEXTCONBK — next control block address.
    pub const NEXTCONBK: u64 = 0x1c;
    /// DEBUG — error/debug flags.
    pub const DEBUG: u64 = 0x20;

    /// All architected DMA channel registers with their names.
    pub const DMA_REGISTERS: &[(u64, &str)] = &[
        (CS, "DMA_CS"),
        (CONBLK_AD, "DMA_CONBLK_AD"),
        (TI, "DMA_TI"),
        (SOURCE_AD, "DMA_SOURCE_AD"),
        (DEST_AD, "DMA_DEST_AD"),
        (TXFR_LEN, "DMA_TXFR_LEN"),
        (NEXTCONBK, "DMA_NEXTCONBK"),
        (DEBUG, "DMA_DEBUG"),
    ];
}

/// DMA CS bits.
pub mod dmacs {
    /// Activate the channel.
    pub const ACTIVE: u32 = 0x01;
    /// Transfer ended (write 1 to clear).
    pub const END: u32 = 0x02;
    /// Interrupt status (write 1 to clear).
    pub const INT: u32 = 0x04;
    /// Abort the current control block.
    pub const ABORT: u32 = 0x4000_0000;
    /// Channel reset.
    pub const RESET: u32 = 0x8000_0000;
    /// Error flag mirrored from DEBUG.
    pub const ERROR: u32 = 0x100;
}

/// DMA control-block TI (transfer information) bits.
pub mod dmati {
    /// Generate an interrupt when this control block completes.
    pub const INTEN: u32 = 0x01;
    /// Wait for DREQ signals from the peripheral.
    pub const WAIT_RESP: u32 = 0x08;
    /// Destination address increments.
    pub const DEST_INC: u32 = 0x10;
    /// Destination is a peripheral DREQ (no increment).
    pub const DEST_DREQ: u32 = 0x40;
    /// Source address increments.
    pub const SRC_INC: u32 = 0x100;
    /// Source is a peripheral DREQ (no increment).
    pub const SRC_DREQ: u32 = 0x400;
    /// Peripheral map: SDHOST.
    pub const PERMAP_SDHOST: u32 = 13 << 16;
}

/// Layout of one DMA control block ("descriptor") in physical memory.
///
/// This is the Figure 4 descriptor the MMC driver chains: 32 bytes, with a
/// physical pointer to the next control block at +0x14 (the paper's example
/// shows the chaining field written at descriptor offset +0x4; the exact
/// offset is a property of the descriptor layout the driver and device agree
/// on — what matters for the driverlet is that it is reconstructed verbatim).
pub mod dmacb {
    /// Transfer information word.
    pub const TI: u64 = 0x00;
    /// Source physical address.
    pub const SOURCE_AD: u64 = 0x04;
    /// Destination physical address.
    pub const DEST_AD: u64 = 0x08;
    /// Transfer length in bytes.
    pub const TXFR_LEN: u64 = 0x0c;
    /// 2D stride (unused by the MMC path).
    pub const STRIDE: u64 = 0x10;
    /// Physical address of the next control block (0 terminates the chain).
    pub const NEXTCONBK: u64 = 0x14;
    /// Size of one control block in bytes (with the two reserved words).
    pub const SIZE: usize = 0x20;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_population_matches_paper_scale() {
        // §7.1: "15 different registers out of 24 total registers of MMC
        // controller and a system-wide DMA engine".
        assert_eq!(SDHOST_REGISTERS.len(), 24);
        assert_eq!(dmareg::DMA_REGISTERS.len(), 8);
    }

    #[test]
    fn offsets_are_unique_and_word_aligned() {
        let mut seen = std::collections::HashSet::new();
        for (off, name) in SDHOST_REGISTERS {
            assert_eq!(off % 4, 0, "{name} must be word aligned");
            assert!(seen.insert(*off), "duplicate offset for {name}");
        }
    }

    #[test]
    fn cmd_flag_bits_do_not_overlap_index() {
        assert_eq!(sdcmd::NEW_FLAG & sdcmd::INDEX_MASK, 0);
        assert_eq!(sdcmd::READ_CMD & sdcmd::INDEX_MASK, 0);
        assert_eq!(sdcmd::WRITE_CMD & sdcmd::INDEX_MASK, 0);
        assert_eq!(sdcmd::BUSYWAIT & sdcmd::INDEX_MASK, 0);
    }

    #[test]
    fn control_block_fields_fit_in_its_size() {
        assert!(dmacb::NEXTCONBK + 4 <= dmacb::SIZE as u64);
    }

    #[test]
    fn error_mask_covers_all_error_bits() {
        assert_ne!(sdhsts::ERROR_MASK & sdhsts::CMD_TIME_OUT, 0);
        assert_ne!(sdhsts::ERROR_MASK & sdhsts::FIFO_ERROR, 0);
        assert_eq!(sdhsts::ERROR_MASK & sdhsts::BLOCK_IRPT, 0);
    }
}
