//! # dlt-tee — TrustZone / OP-TEE environment model
//!
//! Models the TEE half of the paper's system (§5, §6.2, §8.3.1):
//!
//! * **World partitioning**: devices and the TEE's reserved RAM pool are
//!   assigned to the secure world through the platform bus's TZASC emulation,
//!   so the untrusted normal world faults when it touches them.
//! * **Secure services** ([`SecureIo`]): uncached MMIO, interrupt waits,
//!   shared-memory access, a CMA-style contiguous DMA pool carved out of the
//!   3 MB the paper reserves, a hardware RNG, timestamps obtained via an RPC
//!   to the normal world (each RPC pays a world switch), and delays. These
//!   are exactly the environment dependencies the replayer needs — nothing
//!   more.
//! * **Trustlet framework** ([`Trustlet`], [`TeeKernel`]): a minimal trusted
//!   application model with sessions and command invocation, used by
//!   `dlt-trustlets` for the end-to-end use cases (§8.4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::Arc;

use dlt_hw::bus::MmioAttr;
use dlt_hw::mem::BumpDmaAllocator;
use dlt_hw::{DmaRegion, HwError, Platform, Shared, SystemBus, World};
use dlt_obs::metrics::SmcMetrics;
use dlt_obs::trace::{EventKind, SmcKind, TraceHandle};

/// Size of the TEE's reserved DMA pool (the paper reserves 3 MB, §8.3.1).
pub const TEE_DMA_POOL_BYTES: usize = 3 * 1024 * 1024;
/// Physical base of the TEE's reserved RAM window.
pub const TEE_DMA_POOL_BASE: u64 = 0x3c0_0000;
/// Largest single hardware-RNG request the TEE services (the SoC RNG FIFO;
/// see [`SecureIo::fill_rand_bytes`]).
pub const RNG_MAX_REQUEST: usize = 4096;

/// Errors raised by the TEE layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TeeError {
    /// A hardware access failed (fault, timeout); the wrapped [`HwError`]
    /// is preserved as the [`std::error::Error::source`].
    Hw(HwError),
    /// The requested device is not assigned to the secure world.
    NotSecured(String),
    /// The secure DMA pool is exhausted.
    OutOfSecureMemory,
    /// Trustlet/session errors.
    Trustlet(String),
}

impl std::fmt::Display for TeeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TeeError::Hw(e) => write!(f, "hardware: {e}"),
            TeeError::NotSecured(d) => write!(f, "device {d} is not assigned to the TEE"),
            TeeError::OutOfSecureMemory => write!(f, "secure DMA pool exhausted"),
            TeeError::Trustlet(s) => write!(f, "trustlet: {s}"),
        }
    }
}

impl std::error::Error for TeeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TeeError::Hw(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HwError> for TeeError {
    fn from(e: HwError) -> Self {
        TeeError::Hw(e)
    }
}

/// Secure-world IO services available to the replayer.
///
/// This is deliberately *not* the gold drivers' kernel-environment trait: the
/// replayer's dependencies are the short list of primitives in §6.2 (uncached
/// register access, poll/delay loops, contiguous DMA from the reserved pool,
/// the platform RNG, and normal-world RPC for timestamps).
pub struct SecureIo {
    bus: Shared<SystemBus>,
    /// Direct clock handle: time accounting (`charge_ns`, cost lookups,
    /// timestamp RPCs) is on the replay hot path and must not take the bus
    /// lock or clone the shared handle per event.
    clock: Shared<dlt_hw::VirtualClock>,
    pool: BumpDmaAllocator,
    rng_state: u64,
    world_switches: u64,
    rpc_calls: u64,
}

impl SecureIo {
    /// Build the secure IO services over the platform bus.
    pub fn new(bus: Shared<SystemBus>) -> Self {
        let clock = bus.lock().clock();
        SecureIo {
            bus,
            clock,
            pool: BumpDmaAllocator::new(DmaRegion::new(TEE_DMA_POOL_BASE, TEE_DMA_POOL_BYTES)),
            rng_state: 0x9e37_79b9_7f4a_7c15,
            world_switches: 0,
            rpc_calls: 0,
        }
    }

    /// Uncached 32-bit register read.
    pub fn readl(&mut self, addr: u64) -> Result<u32, TeeError> {
        Ok(self.bus.lock().mmio_read32(addr, World::Secure, MmioAttr::Uncached)?)
    }

    /// Uncached 32-bit register write.
    pub fn writel(&mut self, addr: u64, val: u32) -> Result<(), TeeError> {
        Ok(self.bus.lock().mmio_write32(addr, val, World::Secure, MmioAttr::Uncached)?)
    }

    /// Wait for an interrupt (the replayer's interrupt context trigger).
    pub fn wait_for_irq(&mut self, line: u32, timeout_us: u64) -> Result<u64, TeeError> {
        Ok(self.bus.lock().wait_for_irq(line, timeout_us, World::Secure)?)
    }

    /// Read a word from secure DMA memory.
    pub fn shm_read32(&mut self, region: DmaRegion, offset: u64) -> Result<u32, TeeError> {
        Ok(self.bus.lock().ram_read32(region.base + offset, World::Secure)?)
    }

    /// Write a word to secure DMA memory.
    pub fn shm_write32(
        &mut self,
        region: DmaRegion,
        offset: u64,
        val: u32,
    ) -> Result<(), TeeError> {
        Ok(self.bus.lock().ram_write32(region.base + offset, val, World::Secure)?)
    }

    /// Copy payload into secure DMA memory.
    pub fn copy_to_dma(
        &mut self,
        region: DmaRegion,
        offset: u64,
        data: &[u8],
    ) -> Result<(), TeeError> {
        Ok(self.bus.lock().ram_write(region.base + offset, data, World::Secure)?)
    }

    /// Copy payload out of secure DMA memory.
    ///
    /// This is the zero-copy path for device→trustlet payload: the replayer
    /// hands a sub-slice of the trustlet buffer directly, so DMA contents
    /// land in place without an intermediate heap buffer.
    pub fn copy_from_dma(
        &mut self,
        region: DmaRegion,
        offset: u64,
        out: &mut [u8],
    ) -> Result<(), TeeError> {
        Ok(self.bus.lock().ram_read(region.base + offset, out, World::Secure)?)
    }

    /// Allocate from the TEE's contiguous pool (the stock OP-TEE allocator
    /// already hands out contiguous pages, §6.2).
    pub fn dma_alloc(&mut self, len: usize) -> Result<DmaRegion, TeeError> {
        self.pool.alloc(len).map_err(|_| TeeError::OutOfSecureMemory)
    }

    /// Release all pool allocations (between template executions).
    pub fn dma_release_all(&mut self) {
        self.pool.release_all();
    }

    /// Peak pool usage in bytes.
    pub fn dma_high_water(&self) -> u64 {
        self.pool.high_water()
    }

    /// The secure pool window (needed to program the TZASC RAM protection).
    pub fn pool_region(&self) -> DmaRegion {
        self.pool.region()
    }

    /// Hardware RNG (OP-TEE exposes the SoC RNG to the TEE, §6.2).
    ///
    /// Allocates and transparently splits oversized requests into FIFO-sized
    /// reads; replay hot paths use [`SecureIo::fill_rand_bytes`] (one FIFO
    /// request, fallible, no allocation) with a reusable scratch buffer.
    pub fn get_rand_bytes(&mut self, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        for chunk in out.chunks_mut(RNG_MAX_REQUEST) {
            self.fill_rand_bytes(chunk).expect("chunks are FIFO-sized");
        }
        out
    }

    /// Fill `out` from the hardware RNG without allocating.
    ///
    /// Fails when the request exceeds [`RNG_MAX_REQUEST`]: the SoC RNG FIFO
    /// is small and OP-TEE's RNG PTA rejects oversized reads rather than
    /// blocking the TEE for the refill time. Replay consumers must propagate
    /// this instead of discarding it.
    pub fn fill_rand_bytes(&mut self, out: &mut [u8]) -> Result<(), TeeError> {
        if out.len() > RNG_MAX_REQUEST {
            return Err(TeeError::Hw(HwError::DeviceError {
                device: "rng".into(),
                reason: format!(
                    "request of {} bytes exceeds the {RNG_MAX_REQUEST}-byte FIFO",
                    out.len()
                ),
            }));
        }
        for chunk in out.chunks_mut(8) {
            self.rng_state ^= self.rng_state >> 12;
            self.rng_state ^= self.rng_state << 25;
            self.rng_state ^= self.rng_state >> 27;
            let word = self.rng_state.wrapping_mul(0x2545_f491_4f6c_dd1d).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Ok(())
    }

    /// Timestamp via RPC to the normal world (OP-TEE obtains wall-clock time
    /// through an RPC, which costs a world switch each way).
    pub fn get_ts_rpc(&mut self) -> u64 {
        self.rpc_calls += 1;
        self.world_switches += 2;
        let mut c = self.clock.lock();
        c.charge_world_switch();
        c.charge_world_switch();
        c.now_ns()
    }

    /// Busy-wait, advancing virtual time and ticking devices.
    pub fn delay_us(&mut self, us: u64) {
        self.bus.lock().delay_us(us);
    }

    /// Charge CPU time spent inside the TEE (e.g. the replayer's per-event
    /// dispatch cost) without ticking devices.
    pub fn charge_ns(&mut self, ns: u64) {
        self.clock.lock().advance_ns(ns);
    }

    /// The per-event dispatch cost from the platform cost model.
    pub fn replay_dispatch_cost_ns(&self) -> u64 {
        self.clock.lock().cost().replay_event_dispatch_ns
    }

    /// The per-IRQ wait overhead from the platform cost model (read without
    /// cloning the whole model — it sits on the replay hot path).
    pub fn irq_wait_overhead_ns(&self) -> u64 {
        self.clock.lock().cost().irq_wait_overhead_ns
    }

    /// The software overhead of one full GP command invocation beyond the
    /// raw world switch (marshalling, session lookup, TA scheduling) —
    /// charged by gate-style trustlets on the per-call submit path.
    pub fn smc_invoke_overhead_ns(&self) -> u64 {
        self.clock.lock().cost().smc_invoke_ns
    }

    /// The gate's per-entry cost for validating one shared-memory
    /// submission-ring slot while draining a rung ring.
    pub fn ring_entry_validate_ns(&self) -> u64 {
        self.clock.lock().cost().ring_entry_validate_ns
    }

    /// A copy of the platform cost model (for replayer accounting).
    pub fn cost_model(&self) -> dlt_hw::CostModel {
        self.clock.lock().cost().clone()
    }

    /// Acknowledge an interrupt line.
    pub fn ack_irq(&mut self, line: u32) {
        self.bus.lock().ack_irq(line);
    }

    /// Soft-reset a device by bus name.
    pub fn soft_reset_device(&mut self, name: &str) -> Result<(), TeeError> {
        Ok(self.bus.lock().soft_reset_device(name)?)
    }

    /// Register window of a device (for the replayer's bounds hardening).
    pub fn device_window(&self, name: &str) -> Result<DmaRegion, TeeError> {
        Ok(self.bus.lock().device_window(name)?)
    }

    /// Whether a device is assigned to the secure world.
    pub fn is_device_secure(&self, name: &str) -> bool {
        self.bus.lock().is_device_secure(name)
    }

    /// The secure device whose register window contains `addr..addr+len`,
    /// if any (the replayer's generalised second-window hardening check).
    pub fn secure_device_containing(&self, addr: u64, len: u64) -> Option<&'static str> {
        self.bus.lock().secure_device_containing(addr, len)
    }

    /// Number of world switches performed by RPCs.
    pub fn world_switches(&self) -> u64 {
        self.world_switches
    }

    /// Current virtual time.
    pub fn now_ns(&self) -> u64 {
        self.clock.lock().now_ns()
    }
}

/// Program one platform's TZASC for the TEE — assign `secure_devices` to
/// the secure world, protect the TEE's DMA pool window — and return the
/// core's [`SecureIo`] services.
///
/// This is the per-core half of [`TeeKernel::install`]: a multi-core
/// deployment (the `dlt-serve` lane-per-device model) calls it once per
/// lane platform so each replayer core gets its own secure services and
/// its own clock, while a single control-plane [`TeeKernel`] keeps owning
/// sessions and SMC accounting.
pub fn secure_core(platform: &Platform, secure_devices: &[&str]) -> Result<SecureIo, TeeError> {
    let io = SecureIo::new(platform.bus.clone());
    {
        let mut bus = platform.bus.lock();
        for dev in secure_devices {
            bus.set_device_secure(dev, true)?;
        }
        bus.protect_ram(io.pool_region());
    }
    Ok(io)
}

/// A trusted application.
pub trait Trustlet {
    /// Stable UUID-like name.
    fn name(&self) -> &'static str;
    /// Handle one command invocation. `params` are the four OP-TEE style
    /// value parameters; `buf` is the shared memory parameter.
    fn invoke(
        &mut self,
        command: u32,
        params: &[u64; 4],
        buf: &mut [u8],
        tee: &mut SecureIo,
    ) -> Result<u64, TeeError>;
}

/// The secure-world kernel: owns the secure services and the installed
/// trustlets, and models the SMC entry path from the normal world.
pub struct TeeKernel {
    io: SecureIo,
    trustlets: Vec<Box<dyn Trustlet>>,
    sessions: HashMap<u32, usize>,
    next_session: u32,
    smc_calls: u64,
    doorbell_calls: u64,
    /// Optional flight-recorder handle: every world switch is bracketed by
    /// `SmcEnter`/`SmcExit` events carrying the SMC kind in `arg`.
    tracer: Option<TraceHandle>,
    /// Optional SMC-kind counters shared with the serving layer's metrics
    /// registry.
    smc_metrics: Option<Arc<SmcMetrics>>,
}

impl TeeKernel {
    /// Create the secure kernel on a platform, assigning `secure_devices` to
    /// the TEE (TZASC programming via Arm trusted firmware in the paper) and
    /// protecting the TEE's DMA pool from the normal world.
    pub fn install(platform: &Platform, secure_devices: &[&str]) -> Result<Self, TeeError> {
        let io = secure_core(platform, secure_devices)?;
        Ok(TeeKernel {
            io,
            trustlets: Vec::new(),
            sessions: HashMap::new(),
            next_session: 1,
            smc_calls: 0,
            doorbell_calls: 0,
            tracer: None,
            smc_metrics: None,
        })
    }

    /// Install (or remove) a flight-recorder handle for SMC entry/exit
    /// events. `None` restores the untraced fast path.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.tracer = tracer;
    }

    /// Share an SMC-kind counter set with this kernel; every subsequent
    /// world switch bumps the counter for its kind.
    pub fn set_smc_metrics(&mut self, metrics: Arc<SmcMetrics>) {
        self.smc_metrics = Some(metrics);
    }

    /// Record one world switch of `kind` against the metrics plane and, when
    /// tracing, emit the `SmcEnter` instant. Pairs with [`Self::smc_exit`].
    fn smc_enter(&mut self, kind: SmcKind, session: u32) {
        if let Some(m) = &self.smc_metrics {
            m.record(kind);
        }
        if let Some(t) = self.tracer.as_mut() {
            let now = self.io.now_ns();
            t.emit(EventKind::SmcEnter, now, session, 0, kind as u64);
        }
    }

    /// Emit the `SmcExit` instant closing an [`Self::smc_enter`] bracket.
    fn smc_exit(&mut self, kind: SmcKind, session: u32) {
        if let Some(t) = self.tracer.as_mut() {
            let now = self.io.now_ns();
            t.emit(EventKind::SmcExit, now, session, 0, kind as u64);
        }
    }

    /// Install a trustlet.
    pub fn load_trustlet(&mut self, ta: Box<dyn Trustlet>) {
        self.trustlets.push(ta);
    }

    /// Open a session to a trustlet by name (one SMC).
    pub fn open_session(&mut self, name: &str) -> Result<u32, TeeError> {
        self.smc_enter(SmcKind::OpenSession, 0);
        self.smc();
        let idx = match self.trustlets.iter().position(|t| t.name() == name) {
            Some(idx) => idx,
            None => {
                self.smc_exit(SmcKind::OpenSession, 0);
                return Err(TeeError::Trustlet(format!("no trustlet named {name}")));
            }
        };
        let id = self.next_session;
        self.next_session += 1;
        self.sessions.insert(id, idx);
        self.smc_exit(SmcKind::OpenSession, id);
        Ok(id)
    }

    /// Invoke a command in an open session (one SMC round trip).
    pub fn invoke(
        &mut self,
        session: u32,
        command: u32,
        params: &[u64; 4],
        buf: &mut [u8],
    ) -> Result<u64, TeeError> {
        self.smc_enter(SmcKind::Invoke, session);
        self.smc();
        let idx = match self.sessions.get(&session) {
            Some(idx) => *idx,
            None => {
                self.smc_exit(SmcKind::Invoke, session);
                return Err(TeeError::Trustlet("invalid session".into()));
            }
        };
        let out = self.trustlets[idx].invoke(command, params, buf, &mut self.io);
        self.smc_exit(SmcKind::Invoke, session);
        out
    }

    /// Invoke a trustlet **by name, once for a whole batch** — the
    /// doorbell entry of the shared-memory submission-ring protocol. The
    /// normal world stages any number of requests in pre-registered shared
    /// memory (Göttel et al.'s OP-TEE pattern), then rings the doorbell:
    /// exactly **one** world switch (charged at the cheaper
    /// [`dlt_hw::CostModel::ring_doorbell_ns`], since no per-call message
    /// marshalling happens) admits them all. The trustlet is addressed by
    /// name rather than session because one doorbell admits entries from
    /// many sessions. Accounted separately from per-call SMCs — see
    /// [`TeeKernel::smc_doorbells`].
    pub fn invoke_batch(
        &mut self,
        name: &str,
        command: u32,
        params: &[u64; 4],
        buf: &mut [u8],
    ) -> Result<u64, TeeError> {
        self.smc_enter(SmcKind::Doorbell, 0);
        self.smc_calls += 1;
        self.doorbell_calls += 1;
        {
            let mut clock = self.io.clock.lock();
            let ns = clock.cost().ring_doorbell_ns;
            clock.advance_ns(ns);
        }
        let idx = match self.trustlets.iter().position(|t| t.name() == name) {
            Some(idx) => idx,
            None => {
                self.smc_exit(SmcKind::Doorbell, 0);
                return Err(TeeError::Trustlet(format!("no trustlet named {name}")));
            }
        };
        let out = self.trustlets[idx].invoke(command, params, buf, &mut self.io);
        self.smc_exit(SmcKind::Doorbell, 0);
        out
    }

    /// One world switch that invokes nothing: the normal world blocking in
    /// the TEE for an event (an empty completion ring, an overflow flush).
    /// Counted in [`TeeKernel::smc_calls`] as a legacy (non-doorbell) SMC.
    pub fn smc_yield(&mut self) {
        self.smc_enter(SmcKind::Yield, 0);
        self.smc();
        self.smc_exit(SmcKind::Yield, 0);
    }

    /// Close a session.
    pub fn close_session(&mut self, session: u32) {
        self.smc_enter(SmcKind::CloseSession, session);
        self.smc();
        self.sessions.remove(&session);
        self.smc_exit(SmcKind::CloseSession, session);
    }

    /// Direct access to the secure services (used by the replayer, which
    /// lives inside the TEE and therefore does not cross worlds, §8.3.1).
    pub fn io_mut(&mut self) -> &mut SecureIo {
        &mut self.io
    }

    /// Number of SMCs (world switches into the TEE) performed, doorbells
    /// included.
    pub fn smc_calls(&self) -> u64 {
        self.smc_calls
    }

    /// World switches that were ring doorbells ([`TeeKernel::invoke_batch`]).
    pub fn smc_doorbells(&self) -> u64 {
        self.doorbell_calls
    }

    /// World switches on the legacy per-call path (open/invoke/close/yield).
    pub fn smc_legacy(&self) -> u64 {
        self.smc_calls - self.doorbell_calls
    }

    fn smc(&mut self) {
        self.smc_calls += 1;
        self.io.clock.lock().charge_world_switch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlt_hw::device::{MmioDevice, SharedDevice};
    use dlt_hw::{shared, IrqController, Platform};

    struct StubDev {
        irqs: Shared<IrqController>,
        reg: u32,
    }
    impl MmioDevice for StubDev {
        fn name(&self) -> &'static str {
            "stub"
        }
        fn mmio_base(&self) -> u64 {
            0x3f30_0000
        }
        fn mmio_len(&self) -> u64 {
            0x100
        }
        fn read32(&mut self, offset: u64, _now: u64) -> u32 {
            if offset == 0 {
                self.reg
            } else {
                0
            }
        }
        fn write32(&mut self, offset: u64, val: u32, now: u64) {
            if offset == 0 {
                self.reg = val;
            } else if offset == 4 {
                self.irqs.lock().assert_at(7, now + 50_000);
            }
        }
        fn tick(&mut self, _now: u64) {}
        fn soft_reset(&mut self, _now: u64) {
            self.reg = 0;
        }
        fn irq_line(&self) -> Option<u32> {
            Some(7)
        }
    }

    fn rig() -> (Platform, TeeKernel) {
        let p = Platform::new();
        let dev = shared(StubDev { irqs: p.irqs.clone(), reg: 0 });
        p.bus.lock().attach(SharedDevice::boxed(dev)).unwrap();
        let tee = TeeKernel::install(&p, &["stub"]).unwrap();
        (p, tee)
    }

    #[test]
    fn tzasc_isolation_blocks_the_normal_world() {
        let (p, mut tee) = rig();
        // Normal world faults on the secured device and the protected pool.
        assert!(p.bus.lock().mmio_read32(0x3f30_0000, World::NonSecure, MmioAttr::Cached).is_err());
        assert!(p.bus.lock().ram_write32(TEE_DMA_POOL_BASE + 64, 1, World::NonSecure).is_err());
        // The TEE does not.
        tee.io_mut().writel(0x3f30_0000, 0xabcd).unwrap();
        assert_eq!(tee.io_mut().readl(0x3f30_0000).unwrap(), 0xabcd);
        let r = tee.io_mut().dma_alloc(128).unwrap();
        tee.io_mut().shm_write32(r, 0, 7).unwrap();
        assert_eq!(tee.io_mut().shm_read32(r, 0).unwrap(), 7);
    }

    #[test]
    fn secure_pool_is_bounded_to_three_megabytes() {
        let (_p, mut tee) = rig();
        assert!(tee.io_mut().dma_alloc(2 << 20).is_ok());
        assert!(matches!(tee.io_mut().dma_alloc(2 << 20), Err(TeeError::OutOfSecureMemory)));
        tee.io_mut().dma_release_all();
        assert!(tee.io_mut().dma_alloc(2 << 20).is_ok());
        assert!(tee.io_mut().dma_high_water() >= (2 << 20));
    }

    #[test]
    fn irq_wait_and_rng_and_rpc_timestamp() {
        let (_p, mut tee) = rig();
        tee.io_mut().writel(0x3f30_0004, 1).unwrap();
        let waited = tee.io_mut().wait_for_irq(7, 1_000_000).unwrap();
        assert!(waited >= 49);
        tee.io_mut().ack_irq(7);
        let r1 = tee.io_mut().get_rand_bytes(8);
        let r2 = tee.io_mut().get_rand_bytes(8);
        assert_ne!(r1, r2);
        let t1 = tee.io_mut().get_ts_rpc();
        let t2 = tee.io_mut().get_ts_rpc();
        assert!(t2 > t1, "each RPC pays world switches");
        assert_eq!(tee.io_mut().world_switches(), 4);
    }

    #[test]
    fn trustlet_sessions_and_invocation() {
        struct Echo;
        impl Trustlet for Echo {
            fn name(&self) -> &'static str {
                "echo"
            }
            fn invoke(
                &mut self,
                command: u32,
                params: &[u64; 4],
                buf: &mut [u8],
                _tee: &mut SecureIo,
            ) -> Result<u64, TeeError> {
                if !buf.is_empty() {
                    buf[0] = command as u8;
                }
                Ok(params[0] + params[1])
            }
        }
        let (_p, mut tee) = rig();
        tee.load_trustlet(Box::new(Echo));
        let s = tee.open_session("echo").unwrap();
        let mut buf = [0u8; 4];
        let r = tee.invoke(s, 9, &[2, 3, 0, 0], &mut buf).unwrap();
        assert_eq!(r, 5);
        assert_eq!(buf[0], 9);
        tee.close_session(s);
        assert!(tee.invoke(s, 9, &[0; 4], &mut buf).is_err());
        assert!(tee.open_session("missing").is_err());
        assert!(tee.smc_calls() >= 3);
    }

    #[test]
    fn doorbell_smcs_are_split_from_legacy_smcs_and_cost_one_switch() {
        struct Counter(u64);
        impl Trustlet for Counter {
            fn name(&self) -> &'static str {
                "counter"
            }
            fn invoke(
                &mut self,
                _command: u32,
                params: &[u64; 4],
                _buf: &mut [u8],
                _tee: &mut SecureIo,
            ) -> Result<u64, TeeError> {
                self.0 += params[0];
                Ok(self.0)
            }
        }
        let (_p, mut tee) = rig();
        tee.load_trustlet(Box::new(Counter(0)));
        let s = tee.open_session("counter").unwrap();
        tee.invoke(s, 0, &[1, 0, 0, 0], &mut []).unwrap();
        let t0 = tee.io_mut().now_ns();
        // A 16-entry doorbell: one batch invoke, one (doorbell-priced)
        // world switch, accounted in its own bucket.
        let r = tee.invoke_batch("counter", 1, &[16, 0, 0, 0], &mut []).unwrap();
        assert_eq!(r, 17);
        let doorbell_ns = tee.io_mut().now_ns() - t0;
        assert_eq!(doorbell_ns, dlt_hw::CostModel::default().ring_doorbell_ns);
        assert_eq!(tee.smc_doorbells(), 1);
        assert_eq!(tee.smc_legacy(), 2, "open + invoke stay in the legacy bucket");
        assert_eq!(tee.smc_calls(), 3);
        tee.smc_yield();
        assert_eq!(tee.smc_legacy(), 3, "a blocking yield is a legacy world switch");
        assert!(tee.invoke_batch("missing", 1, &[0; 4], &mut []).is_err());
    }

    #[test]
    fn soft_reset_and_device_window_queries() {
        let (_p, mut tee) = rig();
        tee.io_mut().writel(0x3f30_0000, 5).unwrap();
        tee.io_mut().soft_reset_device("stub").unwrap();
        assert_eq!(tee.io_mut().readl(0x3f30_0000).unwrap(), 0);
        let w = tee.io_mut().device_window("stub").unwrap();
        assert_eq!(w.base, 0x3f30_0000);
        assert!(tee.io_mut().is_device_secure("stub"));
        assert!(tee.io_mut().device_window("nope").is_err());
    }
}
