//! The paper's Figure 8 end-to-end use case: a trusted-perception trustlet
//! that periodically captures camera frames and stores them on the secure SD
//! card — with both devices owned by the TEE and the OS completely out of the
//! IO path.
//!
//! Run with `cargo run --example secure_surveillance --release` (recording
//! the two driverlets takes a few seconds in debug builds).

use dlt_dev_mmc::MmcSubsystem;
use dlt_dev_vchiq::VchiqSubsystem;
use dlt_hw::Platform;
use dlt_recorder::campaign::{
    record_camera_driverlet_subset, record_mmc_driverlet_subset, DEV_KEY,
};
use dlt_tee::{SecureIo, TeeKernel};
use dlt_trustlets::SurveillanceTrustlet;

fn main() {
    println!("[record] recording camera (OneShot) and MMC (256-block write) driverlets...");
    let camera_driverlet = record_camera_driverlet_subset(&[1]).expect("record camera");
    let mmc_driverlet = record_mmc_driverlet_subset(&[256]).expect("record mmc");

    // Target platform: camera + SD card assigned to the TEE.
    let platform = Platform::new();
    let mmc = MmcSubsystem::attach(&platform).expect("attach mmc");
    VchiqSubsystem::attach(&platform).expect("attach vchiq");
    TeeKernel::install(&platform, &["sdhost", "dma", "vchiq"]).expect("install tee");
    let mut replayer = dlt_core::Replayer::new(SecureIo::new(platform.bus.clone()));
    replayer.load_driverlet(camera_driverlet, DEV_KEY).expect("load camera driverlet");
    replayer.load_driverlet(mmc_driverlet, DEV_KEY).expect("load mmc driverlet");

    // The ~50-line trustlet: capture a frame, store it in 256-block chunks.
    let mut trustlet = SurveillanceTrustlet::new(1080, 4096);
    for i in 0..3 {
        let t0 = platform.now_ns();
        let frame = trustlet.capture_and_store(&mut replayer).expect("capture and store");
        let elapsed_ms = (platform.now_ns() - t0) / 1_000_000;
        println!(
            "[frame {i}] {} bytes captured at 1080p, stored at block {} ({} blocks), {} ms of device time",
            frame.img_size, frame.first_block, frame.blocks, elapsed_ms
        );
        // Verify the stored image straight off the card.
        let jpeg = trustlet.verify_stored(&mut replayer, frame).expect("verify stored frame");
        assert!(dlt_dev_vchiq::msg::is_valid_jpeg(&jpeg));
    }
    println!(
        "[done] {} frames stored; card now holds {} written blocks; OS saw none of it",
        trustlet.frames_stored(),
        mmc.sdhost.lock().card().blocks_written()
    );
}
