//! Workspace-local minimal stand-in for the `serde` crate.
//!
//! This repository builds in an offline container, so the real `serde` is
//! unavailable. The workspace only needs one serialisation shape — JSON
//! round-trips of plain data structs and externally-tagged enums — so this
//! crate models values as a concrete [`Value`] tree and exposes two simple
//! traits plus `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` crate) that mirror serde's derive behaviour for the type
//! shapes used in this workspace: named-field structs and enums with unit,
//! newtype, tuple and struct variants.
//!
//! The wire format produced by the sibling `serde_json` stand-in matches
//! real `serde_json` for these shapes (externally-tagged enums, `null` for
//! `Option::None`), so documents stay compatible if the real crates are ever
//! swapped back in.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;

/// A JSON-like value tree: the intermediate representation both traits
/// serialise through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object, as ordered key/value pairs (insertion order is preserved,
    /// map-typed fields are emitted key-sorted for determinism).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn obj_get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialisation error: a human-readable message, matching what the code
/// in this workspace needs (`e.to_string()` diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// "expected X while deserialising Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        DeError(format!("expected {what} while deserialising {ty}"))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while deserialising {ty}"))
    }

    /// An enum tag did not name a known variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{tag}` for enum {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Produce the value-tree encoding of `self`.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by derived code: view a value as an object slice.
pub fn expect_obj<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
    match v {
        Value::Obj(fields) => Ok(fields),
        _ => Err(DeError::expected("object", ty)),
    }
}

/// Helper used by derived code: view a value as an array of exactly `len`.
pub fn expect_arr<'a>(v: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], DeError> {
    match v {
        Value::Arr(items) if items.len() == len => Ok(items),
        Value::Arr(items) => Err(DeError::custom(format!(
            "expected array of {len} elements, got {} while deserialising {ty}",
            items.len()
        ))),
        _ => Err(DeError::expected("array", ty)),
    }
}

/// Helper used by derived code: fetch a required object field.
pub fn field<'a>(obj: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, DeError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::missing_field(name, ty))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("unsigned integer", stringify!($t))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range for {}", stringify!($t)))),
                    _ => Err(DeError::expected("integer", stringify!($t))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("boolean", "bool")),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            _ => Err(DeError::expected("number", "f64")),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(DeError::expected("array", "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        T::deserialize(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Key-sorted for a deterministic encoding: driverlet signing hashes
        // the serialised bytes, so iteration order must not leak through.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Obj(keys.into_iter().map(|k| (k.clone(), self[k].serialize())).collect())
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => {
                fields.iter().map(|(k, v)| Ok((k.clone(), V::deserialize(v)?))).collect()
            }
            _ => Err(DeError::expected("object", "HashMap")),
        }
    }
}
