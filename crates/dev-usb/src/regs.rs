//! DWC2-style register layout for the USB host controller.
//!
//! Offsets follow the Synopsys DWC2 OTG core that the Raspberry Pi 3 uses.
//! Only one host channel (channel 1) is modelled in detail — the paper's
//! record campaign reserves "the 1st transmission channel" (§7.2.2).

/// OTG control and status.
pub const GOTGCTL: u64 = 0x000;
/// AHB configuration (global interrupt enable, DMA enable).
pub const GAHBCFG: u64 = 0x008;
/// USB configuration.
pub const GUSBCFG: u64 = 0x00c;
/// Reset control (core soft reset is self-clearing).
pub const GRSTCTL: u64 = 0x010;
/// Core interrupt status (write 1 to clear).
pub const GINTSTS: u64 = 0x014;
/// Core interrupt mask.
pub const GINTMSK: u64 = 0x018;
/// Receive FIFO size.
pub const GRXFSIZ: u64 = 0x024;
/// Non-periodic transmit FIFO size.
pub const GNPTXFSIZ: u64 = 0x028;
/// Hardware configuration 2 (number of channels etc.).
pub const GHWCFG2: u64 = 0x048;
/// Hardware configuration 3.
pub const GHWCFG3: u64 = 0x04c;
/// Host configuration.
pub const HCFG: u64 = 0x400;
/// Host frame interval.
pub const HFIR: u64 = 0x404;
/// Host frame number / remaining time — the time-dependent, non-state-
/// changing input the paper calls out (§7.2.3).
pub const HFNUM: u64 = 0x408;
/// Host all-channels interrupt.
pub const HAINT: u64 = 0x414;
/// Host all-channels interrupt mask.
pub const HAINTMSK: u64 = 0x418;
/// Host port control and status.
pub const HPRT: u64 = 0x440;

/// Host channel register block stride.
pub const HC_STRIDE: u64 = 0x20;
/// Base of host channel 0's register block.
pub const HC_BASE: u64 = 0x500;

/// Characteristics register of channel `n`.
pub const fn hcchar(n: u64) -> u64 {
    HC_BASE + n * HC_STRIDE
}
/// Split control register of channel `n`.
pub const fn hcsplt(n: u64) -> u64 {
    HC_BASE + n * HC_STRIDE + 0x04
}
/// Interrupt register of channel `n` (write 1 to clear).
pub const fn hcint(n: u64) -> u64 {
    HC_BASE + n * HC_STRIDE + 0x08
}
/// Interrupt mask register of channel `n`.
pub const fn hcintmsk(n: u64) -> u64 {
    HC_BASE + n * HC_STRIDE + 0x0c
}
/// Transfer size register of channel `n`.
pub const fn hctsiz(n: u64) -> u64 {
    HC_BASE + n * HC_STRIDE + 0x10
}
/// DMA address register of channel `n`.
pub const fn hcdma(n: u64) -> u64 {
    HC_BASE + n * HC_STRIDE + 0x14
}

/// The channel the gold driver (and hence every template) uses.
pub const CHANNEL: u64 = 1;

/// Number of host channels the core advertises.
pub const NUM_CHANNELS: u64 = 8;

/// GAHBCFG bits.
pub mod gahbcfg {
    /// Global interrupt enable.
    pub const GLBL_INTR_EN: u32 = 1 << 0;
    /// Core operates in DMA mode.
    pub const DMA_EN: u32 = 1 << 5;
}

/// GRSTCTL bits.
pub mod grstctl {
    /// Core soft reset (self-clearing).
    pub const CSFT_RST: u32 = 1 << 0;
    /// AHB idle (read-only, always set in the model).
    pub const AHB_IDLE: u32 = 1 << 31;
}

/// GINTSTS bits.
pub mod gintsts {
    /// Start of frame.
    pub const SOF: u32 = 1 << 3;
    /// Host port interrupt (connect / enable change).
    pub const PRTINT: u32 = 1 << 24;
    /// Host channel interrupt (some HAINT bit set).
    pub const HCHINT: u32 = 1 << 25;
    /// Disconnect detected.
    pub const DISCINT: u32 = 1 << 29;
    /// Current mode: host.
    pub const CURMOD_HOST: u32 = 1 << 0;
}

/// HPRT bits.
pub mod hprt {
    /// Device connected to the port.
    pub const CONN_STS: u32 = 1 << 0;
    /// Connect detected (write 1 to clear).
    pub const CONN_DET: u32 = 1 << 1;
    /// Port enabled.
    pub const ENA: u32 = 1 << 2;
    /// Port reset asserted by software.
    pub const RST: u32 = 1 << 8;
    /// Port power.
    pub const PWR: u32 = 1 << 12;
    /// Port speed field: high speed.
    pub const SPD_HIGH: u32 = 0 << 17;
}

/// HCCHAR bits/fields.
pub mod hcchar {
    /// Maximum packet size mask (bits 0..10).
    pub const MPS_MASK: u32 = 0x7ff;
    /// Endpoint number shift (bits 11..14).
    pub const EPNUM_SHIFT: u32 = 11;
    /// Endpoint direction: IN (device to host).
    pub const EPDIR_IN: u32 = 1 << 15;
    /// Endpoint type shift (bits 18..19): 0 control, 2 bulk.
    pub const EPTYPE_SHIFT: u32 = 18;
    /// Endpoint type: control.
    pub const EPTYPE_CONTROL: u32 = 0 << EPTYPE_SHIFT;
    /// Endpoint type: bulk.
    pub const EPTYPE_BULK: u32 = 2 << EPTYPE_SHIFT;
    /// Device address shift (bits 22..28).
    pub const DEVADDR_SHIFT: u32 = 22;
    /// Channel disable request.
    pub const CHDIS: u32 = 1 << 30;
    /// Channel enable.
    pub const CHENA: u32 = 1 << 31;
}

/// HCINT bits.
pub mod hcint {
    /// Transfer complete.
    pub const XFERCOMPL: u32 = 1 << 0;
    /// Channel halted.
    pub const CHHLTD: u32 = 1 << 1;
    /// STALL response received.
    pub const STALL: u32 = 1 << 3;
    /// NAK response received.
    pub const NAK: u32 = 1 << 4;
    /// Transaction error.
    pub const XACTERR: u32 = 1 << 7;
}

/// HCTSIZ fields.
pub mod hctsiz {
    /// Transfer size mask (bits 0..18).
    pub const XFERSIZE_MASK: u32 = 0x7ffff;
    /// Packet count shift (bits 19..28).
    pub const PKTCNT_SHIFT: u32 = 19;
    /// Packet count mask.
    pub const PKTCNT_MASK: u32 = 0x3ff;
    /// PID field shift (bits 29..30).
    pub const PID_SHIFT: u32 = 29;
    /// PID: SETUP token.
    pub const PID_SETUP: u32 = 3 << PID_SHIFT;
    /// PID: DATA1.
    pub const PID_DATA1: u32 = 2 << PID_SHIFT;
}

/// Registers the Table 7 analysis counts for the USB controller, with the
/// three categories the paper describes (§7.2.3): peripheral state, controller
/// management, transmission channels.
pub const USB_REGISTERS: &[(u64, &str)] = &[
    (GOTGCTL, "GOTGCTL"),
    (GAHBCFG, "GAHBCFG"),
    (GUSBCFG, "GUSBCFG"),
    (GRSTCTL, "GRSTCTL"),
    (GINTSTS, "GINTSTS"),
    (GINTMSK, "GINTMSK"),
    (GRXFSIZ, "GRXFSIZ"),
    (GNPTXFSIZ, "GNPTXFSIZ"),
    (GHWCFG2, "GHWCFG2"),
    (GHWCFG3, "GHWCFG3"),
    (HCFG, "HCFG"),
    (HFIR, "HFIR"),
    (HFNUM, "HFNUM"),
    (HAINT, "HAINT"),
    (HAINTMSK, "HAINTMSK"),
    (HPRT, "HPRT"),
    (hcchar(CHANNEL), "HCCHAR1"),
    (hcsplt(CHANNEL), "HCSPLT1"),
    (hcint(CHANNEL), "HCINT1"),
    (hcintmsk(CHANNEL), "HCINTMSK1"),
    (hctsiz(CHANNEL), "HCTSIZ1"),
    (hcdma(CHANNEL), "HCDMA1"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_register_addressing() {
        assert_eq!(hcchar(0), 0x500);
        assert_eq!(hcchar(1), 0x520);
        assert_eq!(hcdma(1), 0x534);
        assert_eq!(hcint(2), 0x548);
    }

    #[test]
    fn register_table_is_unique_and_aligned() {
        let mut seen = std::collections::HashSet::new();
        for (off, name) in USB_REGISTERS {
            assert_eq!(off % 4, 0, "{name} not aligned");
            assert!(seen.insert(*off), "{name} duplicated");
        }
        assert!(USB_REGISTERS.len() >= 20);
    }

    #[test]
    fn field_encoding_helpers_do_not_collide() {
        let char_val = (64 & hcchar::MPS_MASK)
            | (2 << hcchar::EPNUM_SHIFT)
            | hcchar::EPTYPE_BULK
            | (1 << hcchar::DEVADDR_SHIFT)
            | hcchar::CHENA;
        assert_eq!(char_val & hcchar::MPS_MASK, 64);
        assert_eq!((char_val >> hcchar::EPNUM_SHIFT) & 0xf, 2);
        assert!(char_val & hcchar::CHENA != 0);
        assert_eq!(char_val & hcchar::EPDIR_IN, 0);
    }
}
